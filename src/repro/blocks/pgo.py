"""Block-level profile-guided optimization: layout + branch inversion.

Two classical transformations, both purely layout-level (they never change
what a program computes, only the order blocks appear in memory — which the
VM's fall-through metric makes observable):

1. **Hot-path block chaining** (Pettis–Hansen-style, simplified): starting
   from the entry block, repeatedly place the hottest not-yet-placed
   successor next, so the dynamically common path becomes a straight line
   of fall-throughs.
2. **Conditional branch inversion**: after layout, a two-way branch whose
   *taken* target ended up lexically next is inverted
   (``BRANCH_FALSE`` ↔ ``BRANCH_TRUE``, swapping target and fall-through)
   so the common case falls through — the block-level cousin of the
   paper's §6.1 source-level branch reordering.

These are exactly the optimizations whose profile data the Section-4.3
three-pass protocol protects from invalidation by source-level PGMP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocks.bytecode import BasicBlock, BlockFunction, Instr, Module, Opcode
from repro.blocks.vm import BlockProfile

__all__ = [
    "LayoutReport",
    "optimize_layout",
    "layout_function",
    "eliminate_unreachable",
]


@dataclass
class LayoutReport:
    """What the layout pass did, per function."""

    reordered_functions: list[str] = field(default_factory=list)
    inverted_branches: int = 0
    moved_blocks: int = 0
    removed_blocks: int = 0

    def __str__(self) -> str:
        return (
            f"reordered {len(self.reordered_functions)} function(s), "
            f"moved {self.moved_blocks} block(s), "
            f"inverted {self.inverted_branches} branch(es), "
            f"removed {self.removed_blocks} dead block(s)"
        )


def _edge_weight(profile: BlockProfile, fn_index: int, src: str, dst: str) -> int:
    return profile.edge_counts.get((fn_index, src, dst), 0)


def _block_weight(profile: BlockProfile, fn_index: int, label: str) -> int:
    return profile.block_counts.get((fn_index, label), 0)


def layout_function(fn: BlockFunction, profile: BlockProfile) -> tuple[BlockFunction, int, int]:
    """Lay out one function; returns (new function, moved blocks, inversions)."""
    if len(fn.blocks) <= 1:
        return fn, 0, 0

    by_label = {block.label: block for block in fn.blocks}
    placed: list[BasicBlock] = []
    placed_labels: set[str] = set()

    def place(block: BasicBlock) -> None:
        placed.append(block)
        placed_labels.add(block.label)

    # 1. Greedy hot-path chaining from the entry block.
    place(fn.blocks[0])
    while len(placed) < len(fn.blocks):
        tail = placed[-1]
        candidates = [
            (
                _edge_weight(profile, fn.index, tail.label, succ),
                -fn.block_position(succ),  # tie-break: original order
                succ,
            )
            for succ in tail.successors()
            if succ not in placed_labels
        ]
        if candidates:
            weight, _, best = max(candidates)
            if weight > 0:
                place(by_label[best])
                continue
        # Chain broken: start a new chain at the hottest unplaced block
        # (falling back to original order among cold blocks).
        remaining = [b for b in fn.blocks if b.label not in placed_labels]
        remaining.sort(
            key=lambda b: (
                -_block_weight(profile, fn.index, b.label),
                fn.block_position(b.label),
            )
        )
        place(remaining[0])

    moved = sum(
        1 for old, new in zip(fn.blocks, placed) if old.label != new.label
    )

    # 2. Branch inversion against the new layout.
    inversions = 0
    new_blocks: list[BasicBlock] = []
    for i, block in enumerate(placed):
        term = block.instrs[-1]
        if term.op in (Opcode.BRANCH_FALSE, Opcode.BRANCH_TRUE) and i + 1 < len(placed):
            next_label = placed[i + 1].label
            if term.arg == next_label and term.fallthrough != next_label:
                flipped = (
                    Opcode.BRANCH_TRUE
                    if term.op is Opcode.BRANCH_FALSE
                    else Opcode.BRANCH_FALSE
                )
                term = Instr(flipped, term.fallthrough, fallthrough=term.arg)
                block = BasicBlock(block.label, block.instrs[:-1] + [term])
                inversions += 1
        new_blocks.append(block)

    new_fn = BlockFunction(fn.name, fn.params, fn.rest, new_blocks, index=fn.index)
    return new_fn, moved, inversions


def eliminate_unreachable(module: Module) -> tuple[Module, int]:
    """Drop blocks unreachable from each function's entry block.

    The compiler never emits such blocks for plain programs, but layout
    passes and hand-constructed modules can; removing them keeps the
    fall-through metric honest (a dead block between two hot blocks would
    turn their transition into a taken jump).
    """
    from repro.blocks.cfg import reachable_blocks

    removed = 0
    new_module = Module()
    for fn in module.functions:
        live = reachable_blocks(fn)
        kept = [block for block in fn.blocks if block.label in live]
        removed += len(fn.blocks) - len(kept)
        new_module.functions.append(
            BlockFunction(fn.name, fn.params, fn.rest, kept, index=fn.index)
        )
    return new_module, removed


def optimize_layout(module: Module, profile: BlockProfile) -> tuple[Module, LayoutReport]:
    """Dead-block elimination, then hot-path layout + branch inversion."""
    report = LayoutReport()
    module, report.removed_blocks = eliminate_unreachable(module)
    new_module = Module()
    for fn in module.functions:
        new_fn, moved, inversions = layout_function(fn, profile)
        new_module.functions.append(new_fn)
        if moved or inversions:
            report.reordered_functions.append(fn.name)
        report.moved_blocks += moved
        report.inverted_branches += inversions
    return new_module, report
