"""Compiler from expanded core forms to basic-block bytecode.

Consumes the same :mod:`repro.scheme.core_forms` AST the interpreter runs,
so the block-level substrate sits *after* macro expansion — exactly the
paper's architecture, where meta-programs fire first and the block-level
compiler (and its PGO) sees only their output. This ordering is what makes
the Section-4.3 consistency protocol necessary and is verified by
:mod:`repro.blocks.workflow`.

``syntax-case``/template core forms are expansion-time constructs; they
never survive into run-time programs and the block compiler rejects them.
"""

from __future__ import annotations

from repro.core.errors import CompileError
from repro.scheme.core_forms import (
    App,
    Begin,
    Const,
    CoreExpr,
    Define,
    If,
    Lambda,
    Program,
    Ref,
    SetBang,
    SyntaxCaseExpr,
    TemplateExpr,
)
from repro.scheme.datum import UNSPECIFIED, Symbol

from repro.blocks.bytecode import BasicBlock, BlockFunction, Instr, Module, Opcode

__all__ = ["BlockCompiler", "compile_program"]


class _FunctionBuilder:
    """Accumulates blocks for one function under construction."""

    def __init__(self, compiler: "BlockCompiler", name: str) -> None:
        self.compiler = compiler
        self.name = name
        self.blocks: list[BasicBlock] = []
        self.current: BasicBlock | None = None
        self._label_counter = 0

    def new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def start_block(self, label: str) -> BasicBlock:
        block = BasicBlock(label)
        self.blocks.append(block)
        self.current = block
        return block

    def emit(self, op: Opcode, arg: object = None, fallthrough: str | None = None) -> None:
        assert self.current is not None, "emit outside a block"
        self.current.instrs.append(Instr(op, arg, fallthrough))

    def terminated(self) -> bool:
        return bool(
            self.current is not None
            and self.current.instrs
            and self.current.instrs[-1].op.is_terminator()
        )


class BlockCompiler:
    """Compiles a core :class:`Program` into a :class:`Module`."""

    def __init__(self) -> None:
        self.module = Module()

    def compile_program(self, program: Program) -> Module:
        top = _FunctionBuilder(self, "toplevel")
        self.module.add_function(BlockFunction("toplevel", [], None, top.blocks))
        top.start_block("entry")
        if not program.forms:
            top.emit(Opcode.CONST, UNSPECIFIED)
            top.emit(Opcode.RETURN)
            return self.module
        for form in program.forms[:-1]:
            self._compile_top_form(top, form)
        last = program.forms[-1]
        if isinstance(last, Define):
            self._compile_top_form(top, last)
            top.emit(Opcode.CONST, UNSPECIFIED)
        else:
            self._compile_expr(top, last, tail=False)
        top.emit(Opcode.RETURN)
        return self.module

    def _compile_top_form(self, fb: _FunctionBuilder, form: CoreExpr) -> None:
        if isinstance(form, Define):
            self._compile_expr(fb, form.expr, tail=False)
            fb.emit(Opcode.DEFINE, form.unique)
        else:
            self._compile_expr(fb, form, tail=False)
            fb.emit(Opcode.POP)

    # -- expressions -------------------------------------------------------------

    def _compile_expr(self, fb: _FunctionBuilder, expr: CoreExpr, tail: bool) -> None:
        if isinstance(expr, Const):
            fb.emit(Opcode.CONST, expr.value)
            self._maybe_return(fb, tail)
            return
        if isinstance(expr, Ref):
            fb.emit(Opcode.LOAD, expr.unique)
            self._maybe_return(fb, tail)
            return
        if isinstance(expr, SetBang):
            self._compile_expr(fb, expr.expr, tail=False)
            fb.emit(Opcode.STORE, expr.unique)
            fb.emit(Opcode.CONST, UNSPECIFIED)
            self._maybe_return(fb, tail)
            return
        if isinstance(expr, If):
            self._compile_if(fb, expr, tail)
            return
        if isinstance(expr, Begin):
            if not expr.exprs:
                fb.emit(Opcode.CONST, UNSPECIFIED)
                self._maybe_return(fb, tail)
                return
            for sub in expr.exprs[:-1]:
                self._compile_expr(fb, sub, tail=False)
                fb.emit(Opcode.POP)
            self._compile_expr(fb, expr.exprs[-1], tail)
            return
        if isinstance(expr, Lambda):
            index = self._compile_lambda(expr)
            fb.emit(Opcode.CLOSURE, index)
            self._maybe_return(fb, tail)
            return
        if isinstance(expr, App):
            self._compile_expr(fb, expr.fn, tail=False)
            for arg in expr.args:
                self._compile_expr(fb, arg, tail=False)
            if tail:
                fb.emit(Opcode.TAILCALL, len(expr.args))
            else:
                fb.emit(Opcode.CALL, len(expr.args))
            return
        if isinstance(expr, Define):
            raise CompileError("define is only legal at top level")
        if isinstance(expr, (SyntaxCaseExpr, TemplateExpr)):
            raise CompileError(
                "syntax-case/templates are expand-time forms; they cannot "
                "appear in a run-time program compiled to blocks"
            )
        raise CompileError(f"cannot compile {type(expr).__name__} to blocks")

    @staticmethod
    def _maybe_return(fb: _FunctionBuilder, tail: bool) -> None:
        if tail:
            fb.emit(Opcode.RETURN)

    def _compile_if(self, fb: _FunctionBuilder, expr: If, tail: bool) -> None:
        then_label = fb.new_label("then")
        else_label = fb.new_label("else")
        join_label = fb.new_label("join")
        self._compile_expr(fb, expr.test, tail=False)
        fb.emit(Opcode.BRANCH_FALSE, else_label, fallthrough=then_label)

        fb.start_block(then_label)
        self._compile_expr(fb, expr.then, tail)
        if not fb.terminated():
            fb.emit(Opcode.JUMP, join_label)

        fb.start_block(else_label)
        self._compile_expr(fb, expr.otherwise, tail)
        if not fb.terminated():
            fb.emit(Opcode.JUMP, join_label)

        if not tail:
            fb.start_block(join_label)
        # In tail position both arms returned/tail-called; no join block.

    def _compile_lambda(self, expr: Lambda) -> int:
        fb = _FunctionBuilder(self, expr.name)
        index = self.module.add_function(
            BlockFunction(expr.name, list(expr.params), expr.rest, fb.blocks)
        )
        fb.start_block("entry")
        for sub in expr.body[:-1]:
            self._compile_expr(fb, sub, tail=False)
            fb.emit(Opcode.POP)
        self._compile_expr(fb, expr.body[-1], tail=True)
        return index


def compile_program(program: Program) -> Module:
    """Compile a fully-expanded program into basic-block bytecode."""
    return BlockCompiler().compile_program(program)
