"""Peephole optimizations over basic-block bytecode.

Small, semantics-preserving rewrites that run after (or independently of)
the profile-guided layout pass:

* **push/pop elimination** — a ``CONST``/``LOAD`` immediately followed by
  ``POP`` computes nothing (loads of defined variables cannot fault in a
  meaningful way for pure programs; to stay conservative we only drop
  ``CONST``+``POP`` pairs, since a ``LOAD`` of an unbound top-level name
  legitimately raises);
* **jump threading** — a ``JUMP`` to a block that consists solely of
  another ``JUMP`` retargets to the final destination (and likewise for
  branch targets/fallthroughs);
* **branch-to-same collapsing** — a conditional branch whose taken and
  fall-through targets are equal becomes ``POP`` + ``JUMP``.

These interact with the PGO layout pass: threading removes trampoline
blocks that would otherwise pollute the fall-through metric, and the
layout pass benefits from the smaller CFG. The pass never changes what a
program computes (checked by the differential tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocks.bytecode import BasicBlock, BlockFunction, Instr, Module, Opcode

__all__ = ["PeepholeReport", "peephole"]


@dataclass
class PeepholeReport:
    dropped_pairs: int = 0
    threaded_jumps: int = 0
    collapsed_branches: int = 0

    @property
    def total(self) -> int:
        return self.dropped_pairs + self.threaded_jumps + self.collapsed_branches

    def __str__(self) -> str:
        return (
            f"dropped {self.dropped_pairs} push/pop pair(s), "
            f"threaded {self.threaded_jumps} jump(s), "
            f"collapsed {self.collapsed_branches} branch(es)"
        )


def peephole(module: Module) -> tuple[Module, PeepholeReport]:
    """Apply all peephole rewrites to every function."""
    report = PeepholeReport()
    out = Module()
    for fn in module.functions:
        out.functions.append(_optimize_function(fn, report))
    return out, report


def _optimize_function(fn: BlockFunction, report: PeepholeReport) -> BlockFunction:
    trampolines = _trampoline_targets(fn)
    new_blocks: list[BasicBlock] = []
    for block in fn.blocks:
        instrs = _drop_push_pop(block.instrs, report)
        instrs = _rewrite_terminator(instrs, trampolines, report)
        new_blocks.append(BasicBlock(block.label, instrs))
    return BlockFunction(fn.name, fn.params, fn.rest, new_blocks, index=fn.index)


def _trampoline_targets(fn: BlockFunction) -> dict[str, str]:
    """label -> final destination for blocks that are just a single JUMP."""
    direct: dict[str, str] = {}
    for block in fn.blocks:
        if len(block.instrs) == 1 and block.instrs[0].op is Opcode.JUMP:
            direct[block.label] = block.instrs[0].arg  # type: ignore[assignment]
    # Follow chains (with a visited set to survive cycles).
    resolved: dict[str, str] = {}
    for label in direct:
        seen = {label}
        target = direct[label]
        while target in direct and target not in seen:
            seen.add(target)
            target = direct[target]
        resolved[label] = target
    return resolved


def _drop_push_pop(instrs: list[Instr], report: PeepholeReport) -> list[Instr]:
    out: list[Instr] = []
    for instr in instrs:
        if (
            instr.op is Opcode.POP
            and out
            and out[-1].op is Opcode.CONST
        ):
            out.pop()
            report.dropped_pairs += 1
            continue
        out.append(instr)
    return out


def _rewrite_terminator(
    instrs: list[Instr], trampolines: dict[str, str], report: PeepholeReport
) -> list[Instr]:
    if not instrs:
        return instrs
    term = instrs[-1]
    if term.op is Opcode.JUMP:
        target = trampolines.get(term.arg)  # type: ignore[arg-type]
        if target is not None and target != term.arg:
            report.threaded_jumps += 1
            return instrs[:-1] + [Instr(Opcode.JUMP, target)]
        return instrs
    if term.op in (Opcode.BRANCH_FALSE, Opcode.BRANCH_TRUE):
        arg = trampolines.get(term.arg, term.arg)  # type: ignore[arg-type]
        fallthrough = trampolines.get(term.fallthrough, term.fallthrough)  # type: ignore[arg-type]
        changed = arg != term.arg or fallthrough != term.fallthrough
        if arg == fallthrough:
            report.collapsed_branches += 1
            return instrs[:-1] + [Instr(Opcode.POP), Instr(Opcode.JUMP, arg)]
        if changed:
            report.threaded_jumps += 1
            return instrs[:-1] + [Instr(term.op, arg, fallthrough=fallthrough)]
    return instrs
