#!/usr/bin/env python3
"""A realistic integrated scenario: a calculator language on the substrate.

A tokenizer + recursive-descent evaluator for arithmetic expressions,
written *in the Scheme substrate* and using two profile-guided
meta-programs at once:

* the tokenizer classifies characters with §6.1's ``case`` (clauses get
  reordered toward the trained character distribution);
* the evaluator dispatches on operator symbols with ``exclusive-cond``
  (reordered toward the trained operator mix).

The workload is digit-heavy additions (the common case in the training
corpus), so after one profiled run both dispatchers put their hot clauses
first. The example verifies the optimized pipeline computes identical
results and reports the dynamic-work reduction.

Run with:  python examples/calculator.py
"""

from repro.casestudies.exclusive_cond import make_case_system
from repro.scheme.instrument import ProfileMode

CALCULATOR = r"""
;; ------------------------------------------------------------- tokenizer
(define (char-class c)
  (case c
    [(#\* ) 'times]
    [(#\/ ) 'divide]
    [(#\- ) 'minus]
    [(#\+ ) 'plus]
    [(#\space) 'space]
    [(#\0 #\1 #\2 #\3 #\4 #\5 #\6 #\7 #\8 #\9) 'digit]
    [else 'junk]))

(define (tokenize chars)
  ;; -> list of numbers and operator symbols
  (let loop ([cs chars] [current #f] [out '()])
    (cond
      [(null? cs)
       (reverse (if current (cons current out) out))]
      [else
       (let ([class (char-class (car cs))])
         (exclusive-cond
           [(eq? class 'digit)
            (loop (cdr cs)
                  (+ (* 10 (if current current 0))
                     (- (char->integer (car cs)) 48))
                  out)]
           [(eq? class 'space)
            (loop (cdr cs) #f (if current (cons current out) out))]
           [else
            (loop (cdr cs) #f
                  (cons class (if current (cons current out) out)))]))])))

;; ------------------------------------------------------------ evaluator
;; Left-to-right, no precedence: good enough to be a real workload.
(define (apply-op op a b)
  (exclusive-cond
    [(eq? op 'times) (* a b)]
    [(eq? op 'divide) (quotient a b)]
    [(eq? op 'minus) (- a b)]
    [(eq? op 'plus) (+ a b)]))

(define (evaluate tokens)
  (let loop ([acc (car tokens)] [rest (cdr tokens)])
    (if (null? rest)
        acc
        (loop (apply-op (car rest) acc (car (cdr rest)))
              (cdr (cdr rest))))))

(define (calc s) (evaluate (tokenize (string->list s))))
"""

#: Training corpus: addition-heavy, digit-heavy (like real calculator use).
CORPUS = [
    "1 + 2 + 3 + 4",
    "10 + 20 + 30",
    "100 + 250 + 7",
    "8 + 8 + 8 + 8 + 8",
    "12 + 34 - 5",
    "7 * 3 + 100",
    "1000 + 2000 + 3000 + 4000",
]

DRIVER = "(list " + " ".join(f'(calc "{s}")' for s in CORPUS) + ")"


def main() -> None:
    baseline = make_case_system()
    before = baseline.run_source(
        CALCULATOR + DRIVER, "calc.ss", instrument=ProfileMode.EXPR
    )
    print(f"results: {before.value}")

    system = make_case_system()
    system.profile_run(CALCULATOR + DRIVER, "calc.ss")
    optimized = system.compile(CALCULATOR + DRIVER, "calc.ss")
    after = system.run(optimized, instrument=ProfileMode.EXPR)
    assert str(after.value) == str(before.value), "optimization must not change results"

    from repro.scheme.core_forms import unparse_string

    text = unparse_string(optimized)
    char_class = next(l for l in text.splitlines() if l.startswith("(define char-class"))
    apply_op = next(l for l in text.splitlines() if l.startswith("(define apply-op"))
    print("\ntokenizer clause order after training (digit first):")
    print(" ", char_class[:120], "…")
    assert char_class.index("digit") < char_class.index("times")
    print("evaluator clause order after training (plus first):")
    print(" ", apply_op[:120], "…")
    assert apply_op.index("'plus") < apply_op.index("'times")

    b, a = before.counters.total(), after.counters.total()
    print(f"\ndynamic work (expression evaluations): {b} -> {a} "
          f"({b / a:.2f}x less on the trained mix)")


if __name__ == "__main__":
    main()
