#!/usr/bin/env python3
"""§6.2 scenario: receiver class prediction for an embedded object system.

Defines the paper's Square/Circle/Triangle classes (Figure 10), profiles a
skewed receiver mix, and shows the three stages of Figures 11–12:

* instrumented: one `instance-of?` clause per class, each with its own
  freshly manufactured profile point, all dispatching dynamically;
* optimized: a polymorphic inline cache — the hot classes' `area` bodies
  are inlined at the call site, hottest first;
* the cold class still works via the dynamic-dispatch fallback.

Run with:  python examples/shapes_oop.py
"""

from repro.casestudies.receiver_class import make_object_system
from repro.scheme.core_forms import unparse_string

PROGRAM = """
(class Square ((length 0))
  (define-method (area this) (sqr (field this length))))
(class Circle ((radius 0))
  (define-method (area this) (* pi (sqr (field this radius)))))
(class Triangle ((base 0) (height 0))
  (define-method (area this) (* 1/2 (field this base) (field this height))))

(define shapes (list (make-Circle 1) (make-Circle 2) (make-Circle 3) (make-Square 1)))
(map (lambda (s) (method s area)) shapes)
"""


def call_site_of(text: str) -> str:
    return next(line for line in text.splitlines() if line.startswith("(map"))


def main() -> None:
    system = make_object_system()

    result = system.profile_run(PROGRAM, "shapes.ss")
    print("Figure 11 (top) — instrumented call site:")
    print(call_site_of(result.expanded), "\n")
    print(f"areas: {result.value}\n")

    optimized = system.compile(PROGRAM, "shapes.ss")
    print("Figure 11/12 — optimized call site (Circle ran 3x, Square 1x,")
    print("Triangle 0x; hot bodies inlined hottest-first, Triangle dropped):")
    print(call_site_of(unparse_string(optimized)), "\n")

    rerun = system.run(optimized)
    assert str(rerun.value) == str(result.value)
    print(f"optimized areas: {rerun.value}  (identical ✓)")

    # A receiver class the profile never saw still dispatches correctly.
    cold = PROGRAM.replace(
        "(list (make-Circle 1) (make-Circle 2) (make-Circle 3) (make-Square 1))",
        "(list (make-Triangle 4 6))",
    )
    print(f"cold-class fallback: {system.run(system.compile(cold, 'shapes.ss')).value}")


if __name__ == "__main__":
    main()
