#!/usr/bin/env python3
"""§4.3 scenario: source-level PGMP coexisting with block-level PGO.

Compiles a `case`-using program three times, as the paper prescribes:

  pass 1: instrument source expressions -> source profile weights
  pass 2: meta-programs optimize with those weights; instrument basic
          blocks -> block profile
  pass 3: recompile with *both* profiles; verify the meta-program output is
          a fixed point (so the block profile is still valid) and apply
          block reordering + branch inversion.

Run with:  python examples/three_pass_workflow.py
"""

from repro.blocks.workflow import three_pass_compile
from repro.casestudies.exclusive_cond import CASE_LIBRARY, EXCLUSIVE_COND_LIBRARY

PROGRAM = """
(define (classify n)
  (case (modulo n 11)
    [(0) 'zero]
    [(1 2 3) 'small]
    [(4 5 6 7) 'medium]
    [(8 9 10) 'large]))
(define (run n acc)
  (if (= n 0) acc (run (- n 1) (cons (classify n) acc))))
(length (run 400 '()))
"""


def main() -> None:
    report = three_pass_compile(
        PROGRAM, "classify.ss", libraries=(EXCLUSIVE_COND_LIBRARY, CASE_LIBRARY)
    )
    print(f"final value:                  {report.value}")
    print(f"source profile points:        {report.source_points}")
    print()
    print("consistency checks (the paper's stability argument):")
    print(f"  pass-3 expansion == pass-2:      {report.expansion_stable}")
    print(f"  pass-3 block structure == pass-2: {report.block_structure_stable}")
    print(f"  all passes agree on the value:    {report.semantics_preserved}")
    print()
    print("block-level PGO effect (hot-path layout + branch inversion):")
    print(f"  taken jumps:   {report.taken_jumps_before:5d} -> {report.taken_jumps_after:5d}")
    print(f"  fall-throughs: {report.fallthroughs_before:5d} -> {report.fallthroughs_after:5d}")
    print(f"  taken ratio:   {report.taken_ratio_before:.3f} -> {report.taken_ratio_after:.3f}")
    print(f"  {report.layout}")


if __name__ == "__main__":
    main()
