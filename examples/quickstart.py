#!/usr/bin/env python3
"""Quickstart: the paper's running example (`if-r`, Figures 1–2).

Walks the complete profile-guided meta-programming loop:

1. define the `if-r` syntax extension (a profile-guided meta-program);
2. compile + run an instrumented build on representative input;
3. store the profile weights (Figure 3's normalization happens here);
4. recompile: `if-r` consults `profile-query` and reorders the branches;
5. show that the optimized program computes the same answers.

Run with:  python examples/quickstart.py
"""

from repro.casestudies.if_r import make_if_r_system
from repro.scheme.core_forms import unparse_string

PROGRAM = """
(define (subject-contains email keyword) (< email keyword))
(define (flag email label) label)

(define (classify email)
  (if-r (subject-contains email 5)
    (flag email 'important)
    (flag email 'spam)))

;; Representative input: 3 important emails, 9 spam.
(map classify (list 1 2 3 6 7 8 9 10 11 12 13 14))
"""


def show(title: str, text: str) -> None:
    print(f"--- {title} " + "-" * max(0, 60 - len(title)))
    print(text.strip())
    print()


def main() -> None:
    system = make_if_r_system()

    # Pass 1: instrumented compile + profiled run.
    result = system.profile_run(PROGRAM, "classify.ss")
    show("pass 1: expansion before profile data", result.expanded)
    print(f"pass 1 result: {result.value}")
    print(f"profiled {len(result.counters)} source expressions\n")

    # Persist and reload, as separate compiler invocations would (Figure 4).
    import tempfile, os

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "classify.profile")
        system.store_profile(path)
        system.load_profile(path)

        # Pass 2: if-r now sees the weights and reorders (Figure 2).
        optimized = system.compile(PROGRAM, "classify.ss")
        show("pass 2: expansion with profile data (branches reordered)",
             unparse_string(optimized))
        rerun = system.run(optimized)
        print(f"pass 2 result: {rerun.value}")
        assert str(rerun.value) == str(result.value), "semantics must not change"
        print("optimized program computes identical results ✓")


if __name__ == "__main__":
    main()
