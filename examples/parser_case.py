#!/usr/bin/env python3
"""§6.1 scenario: profile-guided `case` reordering on a character parser.

The paper's Figure 5 parser, driven by a stream with Figure 8's frequency
profile (white-space 55, start-paren 23, end-paren 23, digits 10). After
one profiled run, `case`'s clauses are re-emitted hottest-first — the same
optimization .NET performs on `switch` with value probes, here written as
an 80-line macro library.

Run with:  python examples/parser_case.py
"""

import time

from repro.casestudies.exclusive_cond import make_case_system
from repro.scheme.core_forms import unparse_string

PARSER = r"""
(define (parse-char c)
  (case c
    [(#\0 #\1 #\2 #\3 #\4 #\5 #\6 #\7 #\8 #\9) 'digit]
    [(#\() 'start-paren]
    [(#\)) 'end-paren]
    [(#\space #\tab) 'white-space]
    [else 'other]))
"""

STREAM = " " * 55 + "(" * 23 + ")" * 23 + "0123456789"
DRIVER = f'(for-each parse-char (string->list "{STREAM}"))'
TIMED = (
    "(define (reps n)\n"
    f'  (if (= n 0) (void) (begin (for-each parse-char (string->list "{STREAM}")) (reps (- n 1)))))\n'
    "(reps 40)"
)


def timed_run(system, program) -> float:
    compiled = system.compile(program, "parse.ss")
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        system.run(compiled)
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    print("unoptimized expansion (source clause order):")
    baseline = make_case_system()
    print(unparse_string(baseline.compile(PARSER, "parse.ss")), "\n")
    t_before = timed_run(baseline, PARSER + TIMED)

    system = make_case_system()
    system.profile_run(PARSER + DRIVER, "parse.ss")
    print("optimized expansion (clauses sorted by profile weight):")
    print(unparse_string(system.compile(PARSER, "parse.ss")), "\n")
    t_after = timed_run(system, PARSER + TIMED)

    print(f"40 streams, unoptimized: {t_before * 1000:7.1f} ms")
    print(f"40 streams, optimized:   {t_after * 1000:7.1f} ms")
    print(f"speedup: {t_before / t_after:.2f}x on the trained distribution")


if __name__ == "__main__":
    main()
