#!/usr/bin/env python3
"""Extension scenario: profile-guided short-circuit reordering (and-r).

A conjunction of two pure predicates written in the "wrong" order — the
nearly-always-true test first, the cheap rejector last. `and-r`:

1. with no profile data, instruments each operand with a freshly
   manufactured profile point counting how often it was *true*;
2. after one profiled run, recompiles with the operands sorted by
   P(true) ascending, so the common rejection happens on the first test.

Also shows the adaptive receiver-class extension: the coverage-driven
inline limit inlining exactly as many classes as the call site's receiver
distribution demands.

Run with:  python examples/short_circuit.py
"""

from repro.casestudies.boolean_reorder import make_boolean_system
from repro.casestudies.receiver_class import make_object_system
from repro.scheme.core_forms import unparse_string
from repro.scheme.instrument import ProfileMode

PROGRAM = """
(define (often-false x) (= (modulo x 10) 0))   ; true 10% of the time
(define (often-true x) (< x 1000))             ; true ~100% of the time
(define (check x) (and-r (often-true x) (often-false x)))
(define (run n acc)
  (if (= n 0) acc (run (- n 1) (+ acc (if (check n) 1 0)))))
(run 300 0)
"""


def check_line(system) -> str:
    text = unparse_string(system.compile(PROGRAM, "bool.ss"))
    return next(l for l in text.splitlines() if l.startswith("(define check"))


def work(system) -> int:
    return system.run_source(
        PROGRAM, "bool.ss", instrument=ProfileMode.EXPR
    ).counters.total()


def main() -> None:
    system = make_boolean_system()
    print("source order (often-true tested first):")
    print(" ", check_line(system), "\n")

    baseline_work = work(make_boolean_system())
    system.profile_db.clear()
    system.profile_run(PROGRAM, "bool.ss")
    print("after profiling (often-false fails fast, so it goes first):")
    print(" ", check_line(system), "\n")
    optimized_work = system.run(
        system.compile(PROGRAM, "bool.ss"), instrument=ProfileMode.EXPR
    ).counters.total()

    print(f"expression evaluations per run: {baseline_work} -> {optimized_work}")
    print(f"({baseline_work / optimized_work:.2f}x less dynamic work)\n")

    # --- adaptive inline limits on a flat receiver mix -------------------
    shapes = """
    (class A ((v 1)) (define-method (get this) (field this v)))
    (class B ((v 2)) (define-method (get this) (field this v)))
    (class C ((v 3)) (define-method (get this) (field this v)))
    (define (gets ss) (map (lambda (s) (method-adaptive s get)) ss))
    (define shapes (append (map make-A (iota 5)) (map make-B (iota 5)) (map make-C (iota 5))))
    (length (gets shapes))
    """
    oop = make_object_system()
    oop.profile_run(shapes, "flat.ss")
    line = next(
        l
        for l in unparse_string(oop.compile(shapes, "flat.ss")).splitlines()
        if l.startswith("(define gets")
    )
    inlined = line.count("instance-of?")
    print(f"method-adaptive on a flat 3-class mix inlined {inlined} classes")
    print("(the paper's fixed inline-limit of 2 would have left one class")
    print(" on the dynamic-dispatch path)")


if __name__ == "__main__":
    main()
