#!/usr/bin/env python3
"""§6.3 scenario: data-structure recommendation and auto-specialization.

Two halves, as in the paper:

1. the *profiled list* (Figure 13) only warns — a Perflint-style
   compile-time recommendation when random access dominates;
2. the *profiled sequence* (Figure 14) goes further and rewrites itself:
   the constructor re-expands into a vector-backed representation, turning
   every `seq-ref` from O(n) into O(1).

Run with:  python examples/sequence_specialization.py
"""

import time

from repro.casestudies.datastructs import make_datastructs_system
from repro.scheme.core_forms import unparse_string


def list_program(n: int, accesses: int) -> str:
    elements = " ".join(str(i) for i in range(n))
    return f"""
(define pl (profiled-list {elements}))
(define (go i acc)
  (if (= i 0) acc (go (- i 1) (+ acc (p-list-ref pl (modulo i {n}))))))
(go {accesses} 0)
"""


def seq_program(n: int, accesses: int) -> str:
    elements = " ".join(str(i) for i in range(n))
    return f"""
(define s (profiled-seq {elements}))
(define (go i acc)
  (if (= i 0) acc (go (- i 1) (+ acc (seq-ref s (modulo i {n}))))))
(go {accesses} 0)
"""


def timed(system, source: str) -> float:
    program = system.compile(source, "seq.ss")
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        system.run(program)
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    # --- Half 1: the recommendation (Figure 13).
    system = make_datastructs_system()
    source = list_program(8, 200)
    system.profile_run(source, "report.ss")
    system.compile(source, "report.ss")
    print("Figure 13 — compile-time recommendation:")
    print(" ", system.last_compile_output.strip(), "\n")

    # --- Half 2: the automatic rewrite (Figure 14).
    n, accesses = 512, 3000
    source = seq_program(n, accesses)

    baseline = make_datastructs_system()
    t_list = timed(baseline, source)

    trained = make_datastructs_system()
    trained.profile_run(source, "seq.ss")
    optimized = trained.compile(source, "seq.ss")
    constructor = unparse_string(optimized).splitlines()[0]
    tag = "'vector" if "'vector" in constructor else "'list"
    print(f"Figure 14 — the constructor specialized to: {tag}")
    t_vector = timed(trained, source)

    print(f"\n{accesses} random accesses over {n} elements:")
    print(f"  list-backed sequence:   {t_list * 1000:7.1f} ms   (seq-ref is O(n))")
    print(f"  specialized to vector:  {t_vector * 1000:7.1f} ms   (seq-ref is O(1))")
    print(f"  speedup: {t_list / t_vector:.1f}x — and growing with n (asymptotic)")


if __name__ == "__main__":
    main()
