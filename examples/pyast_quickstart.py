#!/usr/bin/env python3
"""The second implementation: profile-guided meta-programming over Python
ASTs with an errortrace-style call profiler (paper Sections 4.2 and 5).

The same `case`/`if-r` meta-programs, but the "syntax objects" are `ast`
nodes, the profiler counts only calls, and `annotate-expr` therefore wraps
each counted expression in a generated function call — exactly the Racket
implementation strategy.

Run with:  python examples/pyast_quickstart.py
"""

import ast

from repro.pyast import PyAstSystem, if_r, pycase


def classify(c):
    return pycase(
        c,
        ((" ", "\t"), "white-space"),
        (("0", "1", "2", "3", "4", "5", "6", "7", "8", "9"), "digit"),
        (("(",), "start-paren"),
        ((")",), "end-paren"),
        default="other",
    )


def triage(n):
    return if_r(n < 3, "important", "spam")


def main() -> None:
    system = PyAstSystem()

    # Compile 1: no data -> instrumented (each branch body becomes a
    # profiled call through __pgmp_profile__).
    instrumented = system.expand(classify)
    print("instrumented expansion (call-level annotation):")
    print("  " + "\n  ".join(instrumented.__pgmp_source__.splitlines()[:4]), "\n")

    # Profile on a paren-heavy stream.
    stream = "((((((((((0 ))))))))))"
    system.profile(instrumented, [(c,) for c in stream])

    # Compile 2: branches reordered hottest-first.
    optimized = system.expand(classify)
    print("optimized expansion (clauses sorted by weight):")
    print("  " + "\n  ".join(optimized.__pgmp_source__.splitlines()[1:3]), "\n")
    for ch in "( 5)x":
        assert optimized(ch) == classify(ch)
    print("optimized classify agrees with the original on all inputs ✓\n")

    # if-r over Python ASTs.
    inst = system.expand(triage)
    system.profile(inst, [(i,) for i in range(50)])  # 'spam' dominates
    fast = system.expand(triage)
    negated = "not n < 3" in fast.__pgmp_source__
    print(f"if_r: false branch was hotter -> test negated: {negated}")
    assert fast(1) == "important" and fast(40) == "spam"


if __name__ == "__main__":
    main()
