"""Shared benchmark helpers and reporting.

Every benchmark module regenerates one figure/table/claim from the paper's
evaluation (see DESIGN.md's experiment index). Absolute numbers differ from
the paper's (their substrate was Chez Scheme on 2015 hardware; ours is a
Python interpreter), so each module asserts the *shape* — who wins, in
which direction, and roughly by how much — and prints a paper-vs-measured
row for EXPERIMENTS.md.
"""

from __future__ import annotations


def report(experiment: str, paper: str, measured: str) -> None:
    """Print one paper-vs-measured comparison row."""
    print(f"\n[{experiment}] paper: {paper}")
    print(f"[{experiment}] measured: {measured}")
