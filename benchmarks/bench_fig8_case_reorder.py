"""Experiment F5–F8 — §6.1: profile-guided `case` branch reordering.

Figure 8's claim, made measurable: on a skewed input distribution the
reordered `case` dispatches through *fewer membership tests* (the clause
tests are tried hottest-first), and the optimized parser runs faster than
the unoptimized one on the same stream.

Workload: the Figure-5 character parser over a stream whose distribution
matches Figure 8's annotations (white-space 55, start-paren 23, end-paren
23, digit 10 — per 111 characters).
"""

import pytest

from benchmarks.conftest import report
from repro.casestudies.exclusive_cond import make_case_system
from repro.core.profile_point import ProfilePoint
from repro.scheme.instrument import ProfileMode

PARSER = r"""
(define (parse-char c)
  (case c
    [(#\0 #\1 #\2 #\3 #\4 #\5 #\6 #\7 #\8 #\9) 'digit]
    [(#\() 'start-paren]
    [(#\)) 'end-paren]
    [(#\space #\tab) 'white-space]
    [else 'other]))
"""
# NOTE: source order puts the hot clause LAST, so the unoptimized parser
# pays maximally and the reordering is visible.

#: Figure 8's frequencies: ws 55, open 23, close 23, digit 10.
STREAM = " " * 55 + "(" * 23 + ")" * 23 + "0123456789"

DRIVER = f'(for-each parse-char (string->list "{STREAM}"))'
REPEAT_DRIVER = (
    "(define (reps n)\n"
    f'  (if (= n 0) (void) (begin (for-each parse-char (string->list "{STREAM}")) (reps (- n 1)))))\n'
    "(reps 20)"
)


def _key_in_tests(system, program) -> int:
    """Dynamic count of key-in? membership tests in one profiled run."""
    result = system.run_source(program, "parse.ss", instrument=ProfileMode.CALL)
    total = 0
    for point in result.counters.points():
        # key-in? calls originate from the case macro's template in case.ss.
        if point.location.filename == "case.ss":
            total += result.counters.count(point)
    return total


def _optimized_system():
    system = make_case_system()
    system.profile_run(PARSER + DRIVER, "parse.ss")
    return system


def test_reordering_reduces_membership_tests(benchmark):
    baseline = make_case_system()
    tests_before = _key_in_tests(baseline, PARSER + DRIVER)

    system = _optimized_system()
    tests_after = benchmark.pedantic(
        lambda: _key_in_tests(system, PARSER + DRIVER), rounds=1, iterations=1
    )

    assert tests_after < tests_before
    report(
        "F8 (tests executed)",
        ".NET-style switch reordering: hottest clause tried first",
        f"membership tests per stream: {tests_before} -> {tests_after} "
        f"({tests_before / tests_after:.2f}x fewer)",
    )


def test_unoptimized_case_dispatch(benchmark):
    system = make_case_system()
    program = system.compile(PARSER + REPEAT_DRIVER, "parse.ss")
    benchmark(lambda: system.run(program))


def test_optimized_case_dispatch(benchmark):
    system = _optimized_system()
    program = system.compile(PARSER + REPEAT_DRIVER, "parse.ss")
    benchmark(lambda: system.run(program))


def test_optimized_is_not_slower_end_to_end(benchmark):
    """Shape check by work proxy: total EXPR-mode counter bumps."""
    baseline = make_case_system()
    before = baseline.run_source(
        PARSER + DRIVER, "parse.ss", instrument=ProfileMode.EXPR
    ).counters.total()
    system = _optimized_system()
    after = benchmark.pedantic(
        lambda: system.run_source(
            PARSER + DRIVER, "parse.ss", instrument=ProfileMode.EXPR
        ).counters.total(),
        rounds=1,
        iterations=1,
    )
    assert after < before
    report(
        "F8 (work executed)",
        "reordered branches reduce dynamic work on the trained distribution",
        f"expression evaluations per stream: {before} -> {after}",
    )
