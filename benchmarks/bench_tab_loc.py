"""Experiment T-loc — §6's implementation-size claims.

The paper argues the case studies are *small* because the PGMP design does
the heavy lifting: case ≈ 50 lines (Racket) / 81 (Chez, incl.
exclusive-cond), exclusive-cond 31, receiver class prediction 44, the whole
object system 129, profiled list 80, vector 88, sequence 111.

This module counts our implementations the same way (non-blank, non-comment
Scheme lines) and prints the side-by-side table. The shape assertion: each
of our libraries stays within the same order of magnitude — i.e. the
meta-programs really are macro-library-sized, not compiler-sized. The
benchmark component measures the *expansion cost* each library adds to a
compile, which is the paper's "compile-time overhead ... depends on the
complexity of the meta-program".
"""

import pytest

from benchmarks.conftest import report
from repro.casestudies.datastructs import (
    PROFILED_LIST_LIBRARY,
    PROFILED_SEQUENCE_LIBRARY,
    PROFILED_VECTOR_LIBRARY,
)
from repro.casestudies.exclusive_cond import CASE_LIBRARY, EXCLUSIVE_COND_LIBRARY
from repro.casestudies.if_r import IF_R_LIBRARY
from repro.casestudies.receiver_class import (
    OBJECT_SYSTEM_LIBRARY,
    RECEIVER_CLASS_LIBRARY,
)
from repro.scheme.pipeline import SchemeSystem


def loc(source: str) -> int:
    """Non-blank, non-comment lines (the paper counts implementation lines)."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith(";"):
            count += 1
    return count


PAPER_LOC = {
    "exclusive-cond": 31,
    "case": 50,
    "receiver class prediction": 44,
    "object system (total)": 129,
    "profiled list": 80,
    "profiled vector": 88,
    "profiled sequence": 111,
}

OURS = {
    "exclusive-cond": EXCLUSIVE_COND_LIBRARY,
    "case": CASE_LIBRARY,
    "receiver class prediction": RECEIVER_CLASS_LIBRARY,
    "object system (total)": OBJECT_SYSTEM_LIBRARY + RECEIVER_CLASS_LIBRARY,
    "profiled list": PROFILED_LIST_LIBRARY,
    "profiled vector": PROFILED_VECTOR_LIBRARY,
    "profiled sequence": PROFILED_SEQUENCE_LIBRARY,
}


def test_loc_table(benchmark):
    rows = benchmark.pedantic(
        lambda: {name: loc(src) for name, src in OURS.items()}, rounds=1, iterations=1
    )
    print()
    print(f"{'case study':<32}{'paper LoC':>10}{'ours LoC':>10}")
    for name, ours in rows.items():
        print(f"{name:<32}{PAPER_LOC[name]:>10}{ours:>10}")
    for name, ours in rows.items():
        # Same order of magnitude: within 3x either way.
        assert ours <= PAPER_LOC[name] * 3, f"{name} ballooned: {ours} lines"
        assert ours >= PAPER_LOC[name] / 4, f"{name} suspiciously tiny: {ours}"
    report(
        "T-loc",
        "case studies are macro-library-sized (31-129 lines each)",
        ", ".join(f"{k}={v}" for k, v in rows.items()),
    )


@pytest.mark.parametrize(
    "name,libraries,program",
    [
        ("if-r", (IF_R_LIBRARY,), "(define (f x) (if-r (< x 1) 'a 'b)) (f 0)"),
        (
            "case",
            (EXCLUSIVE_COND_LIBRARY, CASE_LIBRARY),
            "(define (f x) (case x [(1) 'one] [else 'other])) (f 1)",
        ),
        (
            "sequence",
            (PROFILED_LIST_LIBRARY, PROFILED_VECTOR_LIBRARY, PROFILED_SEQUENCE_LIBRARY),
            "(seq-first (profiled-seq 1 2 3))",
        ),
    ],
)
def test_expansion_cost(benchmark, name, libraries, program):
    """Compile-time cost of expanding through each meta-program."""
    system = SchemeSystem()
    for lib in libraries:
        system.load_library(lib, f"{name}.ss")
    benchmark(lambda: system.compile(program, "user.ss"))
