"""Experiment T-1 — decision-provenance tracing overhead.

The tracing layer's contract (docs/observability.md): **off by default
with a zero-allocation fast path** — an untraced expansion pays one
``ContextVar.get`` per instrumentation site and constructs no trace
objects at all — and **cheap when on** — a traced expansion stays within
a 10% budget of the untraced one.

Wall-clock in shared containers is noisy, so the budget is asserted on a
deterministic proxy (Python call events during expansion, the same
technique as bench_sec44_overhead.py); best-of-N wall clock is reported
for the EXPERIMENTS.md row.
"""

import sys
import time

from benchmarks.conftest import report
from repro.core.api import reset_generated_points
from repro.obs.tracer import (
    Tracer,
    set_decision_record_hook,
    using_tracer,
)
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem
from repro.tools import cli

PROGRAM = """
(define (classify n)
  (case n
    ((1 2 3) 'small)
    ((4 5 6) 'medium)
    ((7 8 9) 'large)
    (else 'other)))
(define (f n) (if-r (< n 5) (classify n) 'hi))
(map f (list 1 6 7 8 9 2 7 7 7 3))
"""


def _system() -> SchemeSystem:
    system = SchemeSystem()
    for library in ("if-r", "case"):
        for source, filename in cli._resolve_library_sources([library]):
            system.load_library(source, filename)
    return system


def _profiled_system() -> SchemeSystem:
    system = _system()
    system.profile_run(PROGRAM, "bench.ss", mode=ProfileMode.EXPR)
    return system


def _compile(system: SchemeSystem, traced: bool):
    reset_generated_points()
    if traced:
        with using_tracer(Tracer()):
            return system.compile(PROGRAM, "bench.ss")
    return system.compile(PROGRAM, "bench.ss")


def _call_events(fn) -> int:
    """Python-level call events during fn() — exact and repeatable."""
    count = 0

    def tracer(frame, event, arg):
        nonlocal count
        if event == "call":
            count += 1

    sys.setprofile(tracer)
    try:
        fn()
    finally:
        sys.setprofile(None)
    return count


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    fn()  # warm up
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_tracing_constructs_nothing(benchmark):
    """~0% when disabled: not a single trace object is built."""
    system = _profiled_system()
    constructed = []
    previous = set_decision_record_hook(constructed.append)
    try:
        benchmark.pedantic(
            lambda: _compile(system, traced=False), rounds=3, iterations=1
        )
        assert constructed == []
    finally:
        set_decision_record_hook(previous)
    report(
        "T-1 disabled fast path",
        "tracing off by default; zero-allocation fast path",
        "0 DecisionRecord/Span objects constructed over 3 untraced compiles",
    )


def test_traced_expansion_within_budget(benchmark):
    """≤10% when enabled, on the deterministic call-event proxy."""
    system = _profiled_system()
    untraced = _call_events(lambda: _compile(system, traced=False))
    traced = benchmark.pedantic(
        lambda: _call_events(lambda: _compile(system, traced=True)),
        rounds=1,
        iterations=1,
    )
    overhead = traced / untraced - 1.0
    assert traced >= untraced, "tracing cannot remove work"
    assert overhead <= 0.10, (
        f"traced expansion exceeded the 10% budget: {traced} vs {untraced} "
        f"call events (+{overhead:.1%})"
    )

    wall_untraced = _best_of(lambda: _compile(system, traced=False))
    wall_traced = _best_of(lambda: _compile(system, traced=True))
    report(
        "T-1 traced expansion budget",
        "traced expansion within 10% of untraced",
        f"+{overhead:.2%} call events "
        f"(wall clock best-of-5: {wall_untraced * 1e3:.2f}ms untraced, "
        f"{wall_traced * 1e3:.2f}ms traced)",
    )
