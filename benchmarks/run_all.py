"""Run every ``benchmarks/bench_*.py`` module and emit machine-readable
results.

Each benchmark module prints ``[experiment] paper:`` / ``[experiment]
measured:`` rows through :func:`benchmarks.conftest.report`; this driver
runs the modules one pytest subprocess at a time (so one crashing module
cannot take down the rest), scrapes those rows, and writes everything —
per-module pass/fail, duration, and the paper-vs-measured comparisons —
to a versioned JSON document (default ``BENCH_results.json``).

Usage::

    PYTHONPATH=src:. python benchmarks/run_all.py [--out FILE] [--match SUBSTR]

Exit status is non-zero when any benchmark module fails, making this
suitable as a CI gate; the JSON is written either way so partial results
survive a red run.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

#: ``[experiment] paper: ...`` / ``[experiment] measured: ...`` rows as
#: printed by :func:`benchmarks.conftest.report`.
_ROW = re.compile(r"^\[(?P<experiment>[^\]]+)\] (?P<kind>paper|measured): (?P<text>.*)$")


def discover() -> list[Path]:
    return sorted(BENCH_DIR.glob("bench_*.py"))


def parse_rows(stdout: str) -> list[dict[str, str]]:
    """The paper-vs-measured comparison rows, paired up in print order."""
    rows: list[dict[str, str]] = []
    open_rows: dict[str, dict[str, str]] = {}
    for line in stdout.splitlines():
        match = _ROW.match(line.strip())
        if not match:
            continue
        experiment = match.group("experiment")
        kind = match.group("kind")
        if kind == "paper":
            entry = {"experiment": experiment, "paper": match.group("text")}
            rows.append(entry)
            open_rows[experiment] = entry
        else:
            entry = open_rows.pop(experiment, None)
            if entry is None:
                entry = {"experiment": experiment, "paper": ""}
                rows.append(entry)
            entry["measured"] = match.group("text")
    return rows


def run_module(path: Path) -> dict:
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(path), "-q", "-s", "--no-header", "-p", "no:cacheprovider"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    duration = time.perf_counter() - start
    return {
        "module": path.name,
        "passed": proc.returncode == 0,
        "returncode": proc.returncode,
        "duration_seconds": round(duration, 3),
        "comparisons": parse_rows(proc.stdout),
        # the pytest tail is the useful part of a failure; keep it bounded
        "tail": proc.stdout[-2000:] if proc.returncode != 0 else "",
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_results.json"),
        help="where to write the JSON results (default: BENCH_results.json)",
    )
    parser.add_argument(
        "--match",
        default=None,
        help="only run modules whose filename contains this substring",
    )
    args = parser.parse_args(argv)

    modules = discover()
    if args.match:
        modules = [path for path in modules if args.match in path.name]
    if not modules:
        print("run_all: no benchmark modules matched", file=sys.stderr)
        return 2

    results = []
    for path in modules:
        print(f"run_all: {path.name} ...", flush=True)
        outcome = run_module(path)
        status = "ok" if outcome["passed"] else f"FAILED (rc={outcome['returncode']})"
        print(f"run_all: {path.name} {status} in {outcome['duration_seconds']}s")
        for row in outcome["comparisons"]:
            print(f"  [{row['experiment']}] {row.get('measured', '')}")
        results.append(outcome)

    from repro.analysis.diagnostics import JSON_RENDER_VERSION

    failed = [r["module"] for r in results if not r["passed"]]
    payload = {
        "format": "pgmp-bench",
        "version": JSON_RENDER_VERSION,
        "python": sys.version.split()[0],
        "modules": results,
        "summary": {
            "total": len(results),
            "passed": len(results) - len(failed),
            "failed": failed,
        },
    }
    Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"run_all: wrote {args.out}")
    if failed:
        print(f"run_all: {len(failed)} module(s) failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
