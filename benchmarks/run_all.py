"""Run every ``benchmarks/bench_*.py`` module and emit machine-readable
results.

Each benchmark module prints ``[experiment] paper:`` / ``[experiment]
measured:`` rows through :func:`benchmarks.conftest.report`; this driver
runs the modules one pytest subprocess at a time (so one crashing module
cannot take down the rest), scrapes those rows, and writes everything —
per-module pass/fail, duration, and the paper-vs-measured comparisons —
to a versioned JSON document (default ``BENCH_results.json``).

Usage::

    PYTHONPATH=src:. python benchmarks/run_all.py [--out FILE] [--match SUBSTR]

Exit status is non-zero when any benchmark module fails, making this
suitable as a CI gate; the JSON is written either way so partial results
survive a red run.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

#: ``[experiment] paper: ...`` / ``[experiment] measured: ...`` rows as
#: printed by :func:`benchmarks.conftest.report`.
_ROW = re.compile(r"^\[(?P<experiment>[^\]]+)\] (?P<kind>paper|measured): (?P<text>.*)$")


def discover() -> list[Path]:
    return sorted(BENCH_DIR.glob("bench_*.py"))


def parse_rows(stdout: str) -> list[dict[str, str]]:
    """The paper-vs-measured comparison rows, paired up in print order."""
    rows: list[dict[str, str]] = []
    open_rows: dict[str, dict[str, str]] = {}
    for line in stdout.splitlines():
        match = _ROW.match(line.strip())
        if not match:
            continue
        experiment = match.group("experiment")
        kind = match.group("kind")
        if kind == "paper":
            entry = {"experiment": experiment, "paper": match.group("text")}
            rows.append(entry)
            open_rows[experiment] = entry
        else:
            entry = open_rows.pop(experiment, None)
            if entry is None:
                entry = {"experiment": experiment, "paper": ""}
                rows.append(entry)
            entry["measured"] = match.group("text")
    return rows


def run_module(path: Path, smoke: bool = False) -> dict:
    env = dict(os.environ)
    if smoke:
        env["PGMP_BENCH_SMOKE"] = "1"
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(path), "-q", "-s", "--no-header", "-p", "no:cacheprovider"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    duration = time.perf_counter() - start
    return {
        "module": path.name,
        "passed": proc.returncode == 0,
        "returncode": proc.returncode,
        "duration_seconds": round(duration, 3),
        "comparisons": parse_rows(proc.stdout),
        # the pytest tail is the useful part of a failure; keep it bounded
        "tail": proc.stdout[-2000:] if proc.returncode != 0 else "",
    }


#: ``NN.Nx (interp ...)`` — the leading ratio in a compile-backend row.
_RATIO = re.compile(r"^(?P<ratio>\d+(?:\.\d+)?)x\b")


def validate_smoke(payload: dict) -> list[str]:
    """The CI bench-smoke gate: schema shape plus the backend speedup.

    Returns a list of problems (empty = gate passes). The per-experiment
    thresholds already ran as assertions inside the benchmark module; this
    re-checks the *published document*, so a schema regression or a row
    that stopped being emitted fails CI even if pytest stayed green.
    """
    problems: list[str] = []
    for field in ("format", "version", "python", "modules", "summary"):
        if field not in payload:
            problems.append(f"schema: missing top-level field {field!r}")
    if payload.get("format") != "pgmp-bench":
        problems.append(f"schema: format is {payload.get('format')!r}")
    ratios: list[tuple[str, float]] = []
    for module in payload.get("modules", []):
        for field in ("module", "passed", "returncode", "duration_seconds", "comparisons"):
            if field not in module:
                problems.append(
                    f"schema: {module.get('module', '?')} missing {field!r}"
                )
        if module.get("module") != "bench_compile_backend.py":
            continue
        for row in module.get("comparisons", []):
            match = _RATIO.match(row.get("measured", ""))
            if match:
                ratios.append((row["experiment"], float(match.group("ratio"))))
    if not ratios:
        problems.append("no compile-backend speedup rows in the results")
    elif max(ratio for _, ratio in ratios) < 2.0:
        worst = ", ".join(f"{name}={ratio}x" for name, ratio in ratios)
        problems.append(f"compiled backend under 2x everywhere: {worst}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_results.json"),
        help="where to write the JSON results (default: BENCH_results.json)",
    )
    parser.add_argument(
        "--match",
        default=None,
        help="only run modules whose filename contains this substring",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: run with PGMP_BENCH_SMOKE=1 (shrunken "
        "workloads), then validate the result schema and that the "
        "compiled backend clears its smoke-floor speedup over the "
        "interpreter",
    )
    args = parser.parse_args(argv)

    modules = discover()
    if args.match:
        modules = [path for path in modules if args.match in path.name]
    if not modules:
        print("run_all: no benchmark modules matched", file=sys.stderr)
        return 2

    results = []
    for path in modules:
        print(f"run_all: {path.name} ...", flush=True)
        outcome = run_module(path, smoke=args.smoke)
        status = "ok" if outcome["passed"] else f"FAILED (rc={outcome['returncode']})"
        print(f"run_all: {path.name} {status} in {outcome['duration_seconds']}s")
        for row in outcome["comparisons"]:
            print(f"  [{row['experiment']}] {row.get('measured', '')}")
        results.append(outcome)

    from repro.analysis.diagnostics import JSON_RENDER_VERSION

    failed = [r["module"] for r in results if not r["passed"]]
    payload = {
        "format": "pgmp-bench",
        "version": JSON_RENDER_VERSION,
        "python": sys.version.split()[0],
        "modules": results,
        "summary": {
            "total": len(results),
            "passed": len(results) - len(failed),
            "failed": failed,
        },
    }
    Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"run_all: wrote {args.out}")
    if args.smoke:
        problems = validate_smoke(payload)
        for problem in problems:
            print(f"run_all: smoke gate: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("run_all: smoke gate ok (schema valid, backend speedup >= 2x)")
    if failed:
        print(f"run_all: {len(failed)} module(s) failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
