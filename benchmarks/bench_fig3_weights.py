"""Experiment F3 — Figure 3: profile weight computation and merging.

Verifies the paper's worked example exactly and benchmarks the two core
operations of the weights layer (normalization and multi-data-set merge) at
a realistic profile size.
"""

import pytest

from benchmarks.conftest import report
from repro.core.counters import CounterSet
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.core.weights import compute_weights, merge_weight_tables


def _point(n: int) -> ProfilePoint:
    return ProfilePoint.for_location(SourceLocation("w.ss", n, n + 1))


IMPORTANT = _point(1)
SPAM = _point(2)


def test_figure3_values_exact(benchmark):
    """The numbers in Figure 3, verbatim."""

    def figure3():
        one = compute_weights({IMPORTANT: 5, SPAM: 10})
        two = compute_weights({IMPORTANT: 100, SPAM: 10})
        merged = merge_weight_tables([one, two])
        return one, two, merged

    one, two, merged = benchmark(figure3)
    assert one.weight(IMPORTANT) == pytest.approx(0.5)
    assert one.weight(SPAM) == pytest.approx(1.0)
    assert two.weight(IMPORTANT) == pytest.approx(1.0)
    assert two.weight(SPAM) == pytest.approx(0.1)
    assert merged.weight(IMPORTANT) == pytest.approx(0.75)
    assert merged.weight(SPAM) == pytest.approx(0.55)
    report(
        "F3",
        "important: 5/10, 10/100 -> merged 0.75; spam: 10/10, 10/100 -> merged 0.55",
        f"important {merged.weight(IMPORTANT):.2f}, spam {merged.weight(SPAM):.2f}",
    )


def test_normalize_10k_points(benchmark):
    counters = CounterSet()
    for i in range(10_000):
        counters.increment(_point(i), by=(i * 7919) % 1000 + 1)
    table = benchmark(compute_weights, counters)
    assert len(table) == 10_000
    assert max(w for _, w in table.items()) == pytest.approx(1.0)


def test_merge_five_datasets_of_2k_points(benchmark):
    tables = []
    for d in range(5):
        counts = {_point(i): (i * (d + 3)) % 500 + 1 for i in range(2_000)}
        tables.append(compute_weights(counts))
    merged = benchmark(merge_weight_tables, tables)
    assert len(merged) == 2_000
    assert all(0.0 <= w <= 1.0 for _, w in merged.items())
