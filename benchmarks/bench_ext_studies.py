"""Benches for the extension case studies (beyond the paper's §6).

E-1  ``and-r`` short-circuit reordering: on a conjunction whose cheap-to-
     fail operand is written last, profiling + reordering reduces the
     dynamic work (operands evaluated per call).
E-2  ``method-adaptive`` coverage-driven inline limits: the adaptive site
     matches the fixed-limit site on skewed mixes and beats it (fewer
     dynamic dispatches) on flat mixes where the fixed limit under-inlines.
E-3  ``define-inlinable`` call-site inlining (the Arnold-et-al. motivation
     from the paper's introduction): hot call sites lose their call
     overhead entirely; cold sites keep the compact out-of-line call.
"""

import pytest

from benchmarks.conftest import report
from repro.casestudies.boolean_reorder import make_boolean_system
from repro.casestudies.receiver_class import make_object_system
from repro.scheme.instrument import ProfileMode

BOOL_PROGRAM = """
(define (often-false x) (= (modulo x 10) 0))
(define (often-true x) (< x 1000))
(define (check x) (and-r (often-true x) (often-false x)))
(define (run n acc)
  (if (= n 0) acc (run (- n 1) (+ acc (if (check n) 1 0)))))
(run 300 0)
"""


def test_and_r_reduces_operand_evaluations(benchmark):
    baseline = make_boolean_system()
    before = baseline.run_source(
        BOOL_PROGRAM, "bool.ss", instrument=ProfileMode.EXPR
    ).counters.total()

    system = make_boolean_system()
    system.profile_run(BOOL_PROGRAM, "bool.ss")
    program = system.compile(BOOL_PROGRAM, "bool.ss")
    after = benchmark.pedantic(
        lambda: system.run(program, instrument=ProfileMode.EXPR).counters.total(),
        rounds=1,
        iterations=1,
    )
    assert after < before
    report(
        "E-1",
        "reorder short-circuit operands: least-likely-true first (fail fast)",
        f"expression evaluations per run: {before} -> {after}",
    )


def test_and_r_optimized_run(benchmark):
    system = make_boolean_system()
    system.profile_run(BOOL_PROGRAM, "bool.ss")
    program = system.compile(BOOL_PROGRAM, "bool.ss")
    value = benchmark(lambda: system.run(program).value)
    assert str(value) == "30"


SHAPES = """
(class A ((v 0)) (define-method (get this) (field this v)))
(class B ((v 0)) (define-method (get this) (field this v)))
(class C ((v 0)) (define-method (get this) (field this v)))
"""


def _site(macro: str, mix: str) -> str:
    return SHAPES + f"""
(define raw-dispatch dynamic-dispatch)
(define dispatch-count 0)
(define (dynamic-dispatch x m . args)
  (set! dispatch-count (+ dispatch-count 1))
  (apply raw-dispatch x m args))
(define (gets ss) (map (lambda (s) ({macro} s get)) ss))
(define shapes (append {mix}))
(gets shapes)
dispatch-count
"""


FLAT_MIX = "(map make-A (iota 10)) (map make-B (iota 10)) (map make-C (iota 10))"


def _dispatches(macro: str) -> int:
    program = _site(macro, FLAT_MIX)
    system = make_object_system()
    system.profile_run(program, f"{macro}.ss")
    system.fresh_runtime()
    return int(system.run_source(program, f"{macro}.ss").value)  # type: ignore[arg-type]


INLINE_PROGRAM = """
(define-inlinable (weight x) (+ (* 3 x) 1))
(define (hot n acc)
  (if (= n 0) acc (hot (- n 1) (+ acc (weight n)))))
(hot 400 0)
"""


def test_inliner_removes_call_overhead(benchmark):
    """Inlining + beta contraction (the backend's job in Chez) removes the
    call and the parameter frame entirely at hot sites."""
    from repro.casestudies.inliner import make_inliner_system
    from repro.scheme.simplify import contract_betas

    baseline = make_inliner_system()
    before = baseline.run_source(
        INLINE_PROGRAM, "inl.ss", instrument=ProfileMode.EXPR
    ).counters.total()
    system = make_inliner_system()
    system.profile_run(INLINE_PROGRAM, "inl.ss")
    program, contraction = contract_betas(system.compile(INLINE_PROGRAM, "inl.ss"))
    assert contraction.contracted >= 1
    after = benchmark.pedantic(
        lambda: system.run(program, instrument=ProfileMode.EXPR).counters.total(),
        rounds=1,
        iterations=1,
    )
    assert after < before
    report(
        "E-3",
        "profile-guided inlining removes call overhead at hot sites",
        f"expression evaluations per run: {before} -> {after} "
        f"({contraction.contracted} redexes contracted)",
    )


def test_inliner_optimized_run(benchmark):
    from repro.casestudies.inliner import make_inliner_system
    from repro.scheme.simplify import contract_betas

    system = make_inliner_system()
    system.profile_run(INLINE_PROGRAM, "inl.ss")
    program, _ = contract_betas(system.compile(INLINE_PROGRAM, "inl.ss"))
    value = benchmark(lambda: system.run(program).value)
    assert value == 241000


def test_adaptive_inline_limit_beats_fixed_on_flat_mix(benchmark):
    fixed = _dispatches("method")
    adaptive = benchmark.pedantic(
        lambda: _dispatches("method-adaptive"), rounds=1, iterations=1
    )
    # Fixed inline-limit 2 leaves one class (10 receivers) on the dynamic
    # path; coverage-driven inlining covers all three.
    assert adaptive < fixed
    report(
        "E-2",
        "coverage-driven inline limit adapts to flat megamorphic sites",
        f"dynamic dispatches on a flat 3-class mix: fixed-limit {fixed}, "
        f"adaptive {adaptive}",
    )
