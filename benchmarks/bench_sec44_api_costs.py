"""Experiment O-1 — §4.4 compile-time costs of the API.

The paper: "loading profile information is linear in the number of profile
points, and querying the weight of a particular profile point is amortized
constant-time." We measure both scalings and assert the shape:

* `load` time grows roughly linearly with the number of points (the 8×
  input must not cost more than ~24×, i.e. super-linear blowup fails);
* `query` time is flat in the database size (the large database's query
  must stay within a small constant factor of the small one's).
"""

import io
import time

import pytest

from benchmarks.conftest import report
from repro.core.counters import CounterSet
from repro.core.database import ProfileDatabase
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation


def _point(n: int) -> ProfilePoint:
    return ProfilePoint.for_location(SourceLocation("big.ss", n, n + 1))


def _stored_profile(n_points: int) -> str:
    counters = CounterSet()
    for i in range(n_points):
        counters.increment(_point(i), by=i % 997 + 1)
    db = ProfileDatabase()
    db.record_counters(counters)
    buffer = io.StringIO()
    db.store(buffer)
    return buffer.getvalue()


def _load_time(payload: str, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        ProfileDatabase.load(io.StringIO(payload))
        best = min(best, time.perf_counter() - start)
    return best


def test_load_profile_small(benchmark):
    payload = _stored_profile(1_000)
    db = benchmark(lambda: ProfileDatabase.load(io.StringIO(payload)))
    assert db.point_count() == 1_000


def test_load_profile_large(benchmark):
    payload = _stored_profile(8_000)
    db = benchmark(lambda: ProfileDatabase.load(io.StringIO(payload)))
    assert db.point_count() == 8_000


def test_load_scales_linearly(benchmark):
    small = benchmark.pedantic(
        lambda: _load_time(_stored_profile(1_000)), rounds=1, iterations=1
    )
    large = _load_time(_stored_profile(8_000))
    ratio = large / small
    assert ratio < 24, f"load looks super-linear: 8x points cost {ratio:.1f}x"
    report(
        "O-1 (load)",
        "loading profile information is linear in the number of profile points",
        f"8x points -> {ratio:.1f}x load time",
    )


def test_query_is_amortized_constant(benchmark):
    def build(n):
        counters = CounterSet()
        for i in range(n):
            counters.increment(_point(i), by=i + 1)
        db = ProfileDatabase()
        db.record_counters(counters)
        db.merged()  # pay the lazy merge up front (the 'amortized' part)
        return db

    small_db = build(100)
    large_db = build(50_000)
    point = _point(50)

    def time_queries(db, repeats=20_000):
        start = time.perf_counter()
        for _ in range(repeats):
            db.query(point)
        return time.perf_counter() - start

    small_time = benchmark.pedantic(
        lambda: time_queries(small_db), rounds=1, iterations=1
    )
    large_time = time_queries(large_db)
    ratio = large_time / small_time
    assert ratio < 5, f"query not constant-time: 500x points cost {ratio:.1f}x"
    report(
        "O-1 (query)",
        "querying the weight of a profile point is amortized constant-time",
        f"500x database size -> {ratio:.2f}x query time",
    )


def test_query_hot_path(benchmark):
    counters = CounterSet()
    for i in range(10_000):
        counters.increment(_point(i), by=i + 1)
    db = ProfileDatabase()
    db.record_counters(counters)
    db.merged()
    point = _point(123)
    weight = benchmark(db.query, point)
    assert 0.0 < weight <= 1.0
