"""Experiment CB — the compiled backend vs the tree-walking interpreter.

The artifact backend's claim (and this PR sequence's reason to exist):
translating expanded core forms to Python eliminates the interpretive
overhead without changing a single observable — so on compute-bound
case-study workloads (inliner, boolean reordering) the compiled program
runs ≥10× faster, while dispatch workloads whose cost is dominated by
shared primitives (the Figure-5/8 `case` parser spends its time inside
`member`) still clear ≥2×.

Every workload is first checked for *value* agreement between backends;
a speedup over a wrong answer would not be a speedup.

``PGMP_BENCH_SMOKE=1`` shrinks the workloads for CI: thresholds drop to
the smoke floor (2× / 1.3×) because tiny runs amortize less startup.
"""

import os
import time

from benchmarks.conftest import report
from repro.casestudies.boolean_reorder import make_boolean_system
from repro.casestudies.exclusive_cond import make_case_system
from repro.casestudies.inliner import make_inliner_system

SMOKE = os.environ.get("PGMP_BENCH_SMOKE") == "1"

N = 8_000 if SMOKE else 100_000
PARSER_REPS = 15 if SMOKE else 150
COMPUTE_THRESHOLD = 2.0 if SMOKE else 10.0
DISPATCH_THRESHOLD = 1.3 if SMOKE else 2.0

INLINER = """
(define-inlinable (sq n) (* n n))
(define-inlinable (poly n) (+ (sq n) (+ (* 3 n) 1)))
(define (total i acc)
  (if (= i 0) acc (total (- i 1) (+ acc (poly i)))))
(total {n} 0)
"""

BOOLEAN = """
(define (keep? n) (and-r (> n 100) (< n 110) (= (modulo n 2) 0)))
(define (count i acc)
  (if (= i 0) acc (count (- i 1) (if (keep? i) (+ acc 1) acc))))
(count {n} 0)
"""

_PARSE = r"""
(define (parse-char c)
  (case c
    [(#\0 #\1 #\2 #\3 #\4 #\5 #\6 #\7 #\8 #\9) 'digit]
    [(#\() 'start-paren]
    [(#\)) 'end-paren]
    [(#\space #\tab) 'white-space]
    [else 'other]))
"""
_STREAM = " " * 55 + "(" * 23 + ")" * 23 + "0123456789"
PARSER = (
    _PARSE
    + "(define (count-stream cs acc)\n"
    "  (if (null? cs) acc\n"
    "      (count-stream (cdr cs)\n"
    "        (if (eq? (parse-char (car cs)) 'other) acc (+ acc 1)))))\n"
    f'(define stream (string->list "{_STREAM}"))\n'
    "(define (run n acc)\n"
    "  (if (= n 0) acc (run (- n 1) (count-stream stream acc))))\n"
    "(run {n} 0)"
)


def _measure(factory, template, n, backend):
    """Best-of-3 wall time for one backend, plus the computed value."""
    os.environ["PGMP_BACKEND"] = backend
    try:
        system = factory(policy="warn")
    finally:
        del os.environ["PGMP_BACKEND"]
    system.profile_run(template.replace("{n}", str(max(1, n // 20))), "bench.ss")
    program = system.compile(template.replace("{n}", str(n)), "bench.ss")
    value = str(system.run(program).value)  # also warms the artifact memo
    best = min(
        (lambda t0: (system.run(program), time.perf_counter() - t0)[1])(
            time.perf_counter()
        )
        for _ in range(3)
    )
    return best, value


def _ratio(name, factory, template, n, threshold):
    interp_time, interp_value = _measure(factory, template, n, "interp")
    compile_time, compile_value = _measure(factory, template, n, "compile")
    assert interp_value == compile_value, (
        f"{name}: backends disagree ({interp_value!r} vs {compile_value!r})"
    )
    ratio = interp_time / compile_time
    report(
        f"compile-backend/{name}",
        f"target: >={threshold:g}x over the interpreter"
        + (" (smoke floor)" if SMOKE else ""),
        f"{ratio:.1f}x (interp {interp_time * 1000:.1f} ms, "
        f"compiled {compile_time * 1000:.1f} ms, n={n})",
    )
    assert ratio >= threshold, f"{name}: only {ratio:.2f}x, need {threshold}x"


def test_inliner_case_study_speedup():
    _ratio("inliner", make_inliner_system, INLINER, N, COMPUTE_THRESHOLD)


def test_boolean_reorder_case_study_speedup():
    _ratio("boolean", make_boolean_system, BOOLEAN, N, COMPUTE_THRESHOLD)


def test_case_parser_dispatch_speedup():
    _ratio(
        "case-parser", make_case_system, PARSER, PARSER_REPS, DISPATCH_THRESHOLD
    )
