"""Ablation benches for the design decisions called out in DESIGN.md §5.

A-1  Weights vs raw counts at the API boundary.
     Figure 3's point: raw counts are incomparable across data sets — a
     long profiling run would simply outvote a short one. We replay the
     Figure-3 scenario where count-merging and weight-merging *disagree*
     and assert weight-merging produces the paper's answer.

A-2  Deterministic vs random fresh profile points.
     If `make-profile-point` were not deterministic, a recompile could not
     read back the profile data its own generated code produced. We
     simulate the broken design (a fresh random suffix per expansion) and
     show the optimization silently stops firing.

A-3  Stable vs unstable clause sorting in exclusive-cond.
     The stable sort preserves source order for untrained clauses, keeping
     expansion a fixed point — required by the §4.3 protocol.
"""

import pytest

from benchmarks.conftest import report
from repro.core.profile_point import ProfilePoint, ProfilePointFactory
from repro.core.srcloc import SourceLocation
from repro.core.weights import compute_weights, merge_weight_tables


def _point(n: int) -> ProfilePoint:
    return ProfilePoint.for_location(SourceLocation("a.ss", n, n + 1))


IMPORTANT, SPAM = _point(1), _point(2)


def test_a1_counts_vs_weights(benchmark):
    """Data set 1 (short run) says spam wins 10:5. Data set 2 (long run)
    says important wins 100:10. Raw-count merging is dominated by run
    length; weight merging is not."""

    def merge_both():
        counts = {
            IMPORTANT: 5 + 100,
            SPAM: 10 + 10,
        }
        weights = merge_weight_tables(
            [
                compute_weights({IMPORTANT: 5, SPAM: 10}),
                compute_weights({IMPORTANT: 100, SPAM: 10}),
            ]
        )
        return counts, weights

    counts, weights = benchmark(merge_both)
    # Both agree here that important wins — now flip the run lengths:
    counts2 = {IMPORTANT: 5 + 10, SPAM: 10 + 1}
    weights2 = merge_weight_tables(
        [
            compute_weights({IMPORTANT: 5, SPAM: 10}),    # spam 2x hotter
            compute_weights({IMPORTANT: 10, SPAM: 1}),    # important 10x hotter
        ]
    )
    # Raw counts say important (15 > 11); but the first data set is one
    # where spam dominated 2:1 and the second where important dominated
    # 10:1 — weights weigh the *shapes*, counts weigh the *run lengths*.
    assert counts2[IMPORTANT] > counts2[SPAM]
    assert weights2.weight(IMPORTANT) > weights2.weight(SPAM)
    # The pathology: scale data set 1 by 100x (a longer profiling session,
    # same behaviour). Counts flip their answer; weights do not.
    counts3 = {IMPORTANT: 500 + 10, SPAM: 1000 + 1}
    weights3 = merge_weight_tables(
        [
            compute_weights({IMPORTANT: 500, SPAM: 1000}),
            compute_weights({IMPORTANT: 10, SPAM: 1}),
        ]
    )
    assert counts3[SPAM] > counts3[IMPORTANT]  # counts now say spam
    assert weights3.weight(IMPORTANT) > weights3.weight(SPAM)  # weights stable
    report(
        "A-1",
        "weights make data sets comparable; raw counts depend on run length",
        "100x-longer run flips the raw-count decision but not the weight decision",
    )


def test_a2_deterministic_points(benchmark):
    """The broken design: fresh points that differ across compiles."""
    base = SourceLocation("prog.ss", 0, 10)

    def deterministic_round_trip():
        compile1 = ProfilePointFactory()
        recorded = {compile1.make(base): 17}
        table = compute_weights(recorded)
        compile2 = ProfilePointFactory()  # a fresh compiler invocation
        regenerated = compile2.make(base)
        return table.weight(regenerated)

    weight = benchmark(deterministic_round_trip)
    assert weight == 1.0  # the recompile sees its own data

    # Simulated broken design: suffix differs per invocation.
    import itertools

    class RandomishFactory:
        counter = itertools.count(1000)

        def make(self, base):
            n = next(self.counter)
            return ProfilePoint.for_location(
                SourceLocation(f"{base.filename}%r{n}", base.start, base.end)
            )

    recorded = {RandomishFactory().make(base): 17}
    table = compute_weights(recorded)
    regenerated = RandomishFactory().make(base)
    assert table.weight(regenerated) == 0.0  # data silently lost
    report(
        "A-2",
        "make-profile-point must be deterministic across compiles (Fig. 4)",
        "deterministic: weight 1.0 read back; randomized: weight 0.0 (lost)",
    )


def test_a3_stable_sort_keeps_expansion_fixed_point(benchmark):
    """Run the case meta-program twice with the same (empty, then fixed)
    profile: expansion must be byte-identical — unstable ordering of
    equal-weight clauses would break §4.3's stability requirement."""
    from repro.casestudies.exclusive_cond import make_case_system
    from repro.scheme.core_forms import unparse_string

    program = """
    (define (f x)
      (case x [(1) 'a] [(2) 'b] [(3) 'c] [(4) 'd] [else 'z]))
    (map f (list 1 2 3 4 5))
    """

    def expand_twice():
        system = make_case_system()
        system.profile_run(program, "st.ss")
        first = unparse_string(system.compile(program, "st.ss"))
        second = unparse_string(system.compile(program, "st.ss"))
        return first, second

    first, second = benchmark.pedantic(expand_twice, rounds=1, iterations=1)
    assert first == second
    report(
        "A-3",
        "meta-program output is a fixed point under fixed profile weights",
        "two consecutive expansions byte-identical",
    )
