"""Experiment W-1 — §4.3: source + block-level PGO coexistence.

Runs the full three-pass protocol on a program whose ``case`` expressions
the §6.1 meta-program reorders, then verifies and reports:

* the stability invariant (pass-3 expansion == pass-2 expansion, block
  structure unchanged — i.e. the block profile stays valid);
* the block-level win (taken jumps drop after layout + branch inversion);
* the cost of each compilation pass.
"""

import pytest

from benchmarks.conftest import report
from repro.blocks.workflow import three_pass_compile
from repro.casestudies.exclusive_cond import CASE_LIBRARY, EXCLUSIVE_COND_LIBRARY

PROGRAM = """
(define (classify n)
  (case (modulo n 11)
    [(0) 'zero]
    [(1 2 3) 'small]
    [(4 5 6 7) 'medium]
    [(8 9 10) 'large]))
(define (run n acc)
  (if (= n 0) acc (run (- n 1) (cons (classify n) acc))))
(length (run 400 '()))
"""

LIBS = (EXCLUSIVE_COND_LIBRARY, CASE_LIBRARY)


def test_three_pass_workflow(benchmark):
    rep = benchmark.pedantic(
        lambda: three_pass_compile(PROGRAM, libraries=LIBS), rounds=1, iterations=1
    )
    assert str(rep.value) == "400"
    assert rep.expansion_stable
    assert rep.block_structure_stable
    assert rep.semantics_preserved
    assert rep.taken_jumps_after < rep.taken_jumps_before
    report(
        "W-1 (stability)",
        "generated high-level code remains stable; block profiles stay valid",
        f"expansion stable={rep.expansion_stable}, "
        f"block structure stable={rep.block_structure_stable}",
    )
    report(
        "W-1 (block PGO)",
        "block reordering + branch inversion favor the hot path",
        f"taken jumps {rep.taken_jumps_before} -> {rep.taken_jumps_after}, "
        f"taken ratio {rep.taken_ratio_before:.2f} -> {rep.taken_ratio_after:.2f} "
        f"({rep.layout})",
    )


def test_baseline_layout_vm(benchmark):
    """VM run of the unoptimized layout (the pass-2 artifact)."""
    from repro.blocks.compiler import compile_program
    from repro.blocks.vm import VM
    from repro.scheme.pipeline import SchemeSystem
    from repro.scheme.primitives import make_global_env

    system = SchemeSystem()
    combined = "\n".join(LIBS) + "\n" + PROGRAM
    module = compile_program(system.compile(combined))
    value = benchmark(lambda: VM(module, make_global_env()).run())
    assert str(value) == "400"


def test_optimized_layout_vm(benchmark):
    """VM run of the block-reordered layout (the pass-3 artifact)."""
    from repro.blocks.compiler import compile_program
    from repro.blocks.pgo import optimize_layout
    from repro.blocks.vm import VM
    from repro.scheme.pipeline import SchemeSystem
    from repro.scheme.primitives import make_global_env

    system = SchemeSystem()
    combined = "\n".join(LIBS) + "\n" + PROGRAM
    module = compile_program(system.compile(combined))
    profiling_vm = VM(module, make_global_env(), profile=True)
    profiling_vm.run()
    optimized, _ = optimize_layout(module, profiling_vm.profile)
    value = benchmark(lambda: VM(optimized, make_global_env()).run())
    assert str(value) == "400"
