"""Experiment C-1 — concurrent profiling throughput.

The seed profiler mirrored the paper's single-threaded Scheme substrates:
one shared dict, one lock. Under concurrent traffic (the ROADMAP's north
star) every instrumented increment then serializes on that mutex. The
sharded design (per-thread shards, merge at snapshot — the PROMPT-style
low-overhead parallel profiling strategy) removes the lock from the hot
path entirely.

Claims verified here:

* **correctness** — N threads × M increments into a
  :class:`ShardedCounterSet` sum to exactly N×M: no counts are lost, which
  an unlocked shared dict cannot guarantee;
* **contention** — under a ``ThreadPoolExecutor(8)``, sharded counters
  sustain at least the throughput of the locked ``CounterSet`` (in
  practice, measurably more: no lock handoffs on the increment path);
* single-thread overhead of sharding stays within a small constant factor
  of the plain unlocked counter (the shard lookup is one attribute read).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from benchmarks.conftest import report
from repro.core.counters import CounterSet, ShardedCounterSet
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation

THREADS = 8
INCREMENTS = 25_000
POINTS = [
    ProfilePoint.for_location(SourceLocation("conc.ss", n, n + 1)) for n in range(8)
]


def _worker(counters, barrier):
    bumps = [counters.incrementer(point) for point in POINTS]
    barrier.wait()
    for _ in range(INCREMENTS):
        for bump in bumps:
            bump()


def _timed_pool_run(counters) -> float:
    barrier = threading.Barrier(THREADS + 1)
    with ThreadPoolExecutor(THREADS) as pool:
        futures = [pool.submit(_worker, counters, barrier) for _ in range(THREADS)]
        barrier.wait()
        start = time.perf_counter()
        for future in futures:
            future.result()
        elapsed = time.perf_counter() - start
    return elapsed


def _best_of(fn, rounds: int = 3) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(rounds):
        elapsed, value = fn()
        if elapsed < best:
            best, result = elapsed, value
    return best, result


def test_sharded_counters_lose_no_counts_under_thread_pool():
    counters = ShardedCounterSet(name="pool")
    _timed_pool_run(counters)
    expected = THREADS * INCREMENTS
    for point in POINTS:
        assert counters.count(point) == expected
    assert counters.total() == expected * len(POINTS)


def test_concurrent_throughput_sharded_vs_locked():
    def run_sharded():
        counters = ShardedCounterSet(name="sharded")
        elapsed = _timed_pool_run(counters)
        return elapsed, counters.total()

    def run_locked():
        counters = CounterSet(name="locked", threadsafe=True)
        elapsed = _timed_pool_run(counters)
        return elapsed, counters.total()

    sharded_time, sharded_total = _best_of(run_sharded)
    locked_time, locked_total = _best_of(run_locked)

    ops = THREADS * INCREMENTS * len(POINTS)
    assert sharded_total == ops
    assert locked_total == ops

    # The contention claim: removing the lock from the hot path must not
    # cost throughput under 8 threads (in practice it wins comfortably; the
    # 1.1 slack keeps shared-container scheduling noise from flaking).
    assert sharded_time <= locked_time * 1.1

    report(
        "C-1 (contention)",
        "per-thread sharded counters avoid lock handoffs (PROMPT-style)",
        f"8 threads x {INCREMENTS * len(POINTS)} bumps: "
        f"sharded {ops / sharded_time / 1e6:.2f} Mops/s vs "
        f"locked {ops / locked_time / 1e6:.2f} Mops/s "
        f"({locked_time / sharded_time:.2f}x speedup)",
    )


def test_single_thread_sharded_overhead_is_bounded():
    def run(counters):
        bumps = [counters.incrementer(point) for point in POINTS]

        def go():
            start = time.perf_counter()
            for _ in range(INCREMENTS):
                for bump in bumps:
                    bump()
            return time.perf_counter() - start, counters.total()

        return go

    plain_time, _ = _best_of(run(CounterSet(name="plain")))
    sharded_time, _ = _best_of(run(ShardedCounterSet(name="sharded")))

    # One extra attribute read per bump: small constant factor, not a
    # regression class. (Generous bound; typical is well under 2x.)
    assert sharded_time <= plain_time * 4.0

    report(
        "C-1 (single thread)",
        "sharding adds one thread-local read per bump",
        f"plain {plain_time * 1e3:.1f}ms vs sharded {sharded_time * 1e3:.1f}ms "
        f"({sharded_time / plain_time:.2f}x) for {INCREMENTS * len(POINTS)} bumps",
    )
