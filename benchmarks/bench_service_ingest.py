"""Experiment S-1 — continuous-profiling service ingest and swap costs.

The service subsystem (``repro.service``) only earns its keep if shipping
profile deltas is cheap enough to run *continuously* and the online
recompile swap is short enough to be invisible. Three claims:

* **throughput** — a single shipper sustains a useful delta rate against
  an in-process aggregator (loopback TCP, acked round trips);
* **latency** — client-observed flush round trips stay in the
  milliseconds (p50/p95 over a couple hundred flushes);
* **pause** — the recompile-and-swap a drifted profile triggers completes
  in well under a second for a case-study-sized program, so the paper's
  offline "recompile the world" step shrinks to an online blip.

Exact numbers vary by machine; the assertions are deliberately loose
floors/ceilings and the measured values are reported for EXPERIMENTS.md.
"""

from __future__ import annotations

import time

from benchmarks.conftest import report
from repro.core.counters import CounterSet
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.scheme.pipeline import SchemeSystem
from repro.service import (
    GenerationJournal,
    ProfileAggregator,
    ProfileShipper,
    RecompileController,
    RolloutGuard,
    scheme_canary,
    scheme_recompiler,
    scheme_static_verifier,
)

FLUSHES = 200
POINTS = [
    ProfilePoint.for_location(SourceLocation("svc.ss", n, n + 1)) for n in range(32)
]

CASE_PROGRAM = """
(define (classify n)
  (case (modulo n 7)
    [(0) 'zero]
    [(1 2) 'small]
    [(3 4) 'mid]
    [(5 6) 'big]))
(define (run n acc)
  (if (= n 0) acc (run (- n 1) (cons (classify n) acc))))
(length (run 40 '()))
"""


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def test_ingest_throughput_and_latency():
    counters = CounterSet(name="bench-ingest")
    with ProfileAggregator("127.0.0.1:0") as aggregator:
        address = aggregator.address
        shipper = ProfileShipper(
            counters, address, dataset="bench-ingest", flush_threshold=1
        )
        latencies: list[float] = []
        start = time.perf_counter()
        with shipper:
            for _ in range(FLUSHES):
                for point in POINTS:
                    counters.increment(point)
                before = time.perf_counter()
                shipper.flush()
                latencies.append(time.perf_counter() - before)
        elapsed = time.perf_counter() - start
        ingested = aggregator.total_counts()

    shipped = FLUSHES * len(POINTS)
    assert ingested == shipped, "acked ingest must lose zero counts"
    assert shipper.shipped_deltas == FLUSHES

    deltas_per_sec = FLUSHES / elapsed
    p50_ms = _percentile(latencies, 0.50) * 1e3
    p95_ms = _percentile(latencies, 0.95) * 1e3
    # Loose floors: even a debug CI box does hundreds of loopback round
    # trips per second; the point is "continuous" is affordable.
    assert deltas_per_sec > 25
    assert p95_ms < 500
    report(
        "S-1 ingest",
        "continuous delta shipping is cheap enough to leave on",
        f"{deltas_per_sec:,.0f} deltas/s over loopback TCP; flush round trip "
        f"p50 {p50_ms:.2f} ms, p95 {p95_ms:.2f} ms ({shipped} counts, 0 lost)",
    )


def test_recompile_swap_pause():
    system = SchemeSystem(policy="warn")
    from repro.casestudies import CASE_LIBRARY, EXCLUSIVE_COND_LIBRARY

    system.load_library(EXCLUSIVE_COND_LIBRARY, "exclusive-cond.ss")
    system.load_library(CASE_LIBRARY, "case.ss")
    controller = RecompileController(
        scheme_recompiler(system, CASE_PROGRAM, "bench.ss"), threshold=0.05
    )

    # Build drifted profile data the way the service would: record an
    # instrumented run's counters, then hand the merged database over.
    profiling = SchemeSystem(policy="warn")
    profiling.load_library(EXCLUSIVE_COND_LIBRARY, "exclusive-cond.ss")
    profiling.load_library(CASE_LIBRARY, "case.ss")
    profiling.profile_run(CASE_PROGRAM, "bench.ss")

    decision = controller.maybe_recompile(profiling.profile_db)
    assert decision.recompiled, "fresh data over an empty baseline must compile"
    assert controller.artifact() is not None
    pause_ms = decision.pause_seconds * 1e3
    assert pause_ms < 5_000
    report(
        "S-1 swap",
        "online recompile-and-swap is a blip, not a deploy",
        f"recompile+swap pause {pause_ms:.1f} ms for a case-study program "
        f"(drift {decision.drift:.2f} over threshold {decision.threshold})",
    )


def test_guarded_swap_overhead():
    """The rollout guard's price on the swap path: static translation
    validation of every artifact flavor (the PGMP5xx passes), the canary
    battery (one interpreted + one compiled differential run of the
    candidate), and the generation journal write. The claim is that the
    fully guarded swap stays within tens of milliseconds of bare — cheap
    enough to leave on everywhere."""
    from repro.casestudies import CASE_LIBRARY, EXCLUSIVE_COND_LIBRARY

    ROUNDS = 5

    def one_swap(guarded: bool) -> float:
        system = SchemeSystem(policy="warn")
        system.load_library(EXCLUSIVE_COND_LIBRARY, "exclusive-cond.ss")
        system.load_library(CASE_LIBRARY, "case.ss")
        guard = None
        if guarded:
            guard = RolloutGuard(
                static_verifier=scheme_static_verifier(),
                validator=scheme_canary(system),
                journal=GenerationJournal(None),
            )
        controller = RecompileController(
            scheme_recompiler(system, CASE_PROGRAM, "bench.ss"),
            threshold=0.05,
            guard=guard,
        )
        profiling = SchemeSystem(policy="warn")
        profiling.load_library(EXCLUSIVE_COND_LIBRARY, "exclusive-cond.ss")
        profiling.load_library(CASE_LIBRARY, "case.ss")
        profiling.profile_run(CASE_PROGRAM, "bench.ss")
        decision = controller.maybe_recompile(profiling.profile_db)
        assert decision.recompiled
        return decision.pause_seconds

    unguarded_ms = _percentile([one_swap(False) for _ in range(ROUNDS)], 0.5) * 1e3
    guarded_ms = _percentile([one_swap(True) for _ in range(ROUNDS)], 0.5) * 1e3
    overhead_ms = guarded_ms - unguarded_ms
    # Loose CI ceiling; the real target (tens of ms of guard overhead on
    # the default probe set) is what gets reported below.
    assert guarded_ms < 2_000
    report(
        "S-1 guarded swap",
        "static verify + canary + journal keep the guarded swap a blip",
        f"swap pause {guarded_ms:.1f} ms guarded vs {unguarded_ms:.1f} ms "
        f"unguarded (guard overhead {overhead_ms:.1f} ms: PGMP5xx static "
        f"verify + differential canary + journal write; medians over "
        f"{ROUNDS} swaps)",
    )


def test_static_verify_cost():
    """What the pre-canary static gate alone costs: translation-validating
    all four artifact flavors of the case-study candidate against its
    expanded core forms. This is the per-candidate price `pgmp serve`
    pays *before* spending a canary probe — it must be comparable to the
    canary itself, or nobody would leave it on."""
    from repro.casestudies import CASE_LIBRARY, EXCLUSIVE_COND_LIBRARY

    ROUNDS = 5
    system = SchemeSystem(policy="warn")
    system.load_library(EXCLUSIVE_COND_LIBRARY, "exclusive-cond.ss")
    system.load_library(CASE_LIBRARY, "case.ss")
    candidate = system.compile(CASE_PROGRAM, "bench.ss")
    verify = scheme_static_verifier()
    # Warm once so artifact compilation (memoized per Program) is not
    # billed to the verification passes themselves.
    first = verify(candidate)
    assert first.passed and first.artifacts == 4

    samples: list[float] = []
    for _ in range(ROUNDS):
        before = time.perf_counter()
        result = verify(candidate)
        samples.append(time.perf_counter() - before)
        assert result.passed
    verify_ms = _percentile(samples, 0.5) * 1e3
    assert verify_ms < 1_000
    report(
        "S-1 static verify",
        "translation-validating all 4 flavors is cheap enough to gate every rollout",
        f"PGMP5xx static verification of 4 artifact flavors in "
        f"{verify_ms:.1f} ms (median over {ROUNDS} runs, artifacts pre-compiled)",
    )
