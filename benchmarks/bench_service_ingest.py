"""Experiment S-1 — continuous-profiling service ingest and swap costs.

The service subsystem (``repro.service``) only earns its keep if shipping
profile deltas is cheap enough to run *continuously* and the online
recompile swap is short enough to be invisible. Three claims:

* **throughput** — a single shipper sustains a useful delta rate against
  an in-process aggregator (loopback TCP, acked round trips);
* **latency** — client-observed flush round trips stay in the
  milliseconds (p50/p95 over a couple hundred flushes);
* **pause** — the recompile-and-swap a drifted profile triggers completes
  in well under a second for a case-study-sized program, so the paper's
  offline "recompile the world" step shrinks to an online blip.

Exact numbers vary by machine; the assertions are deliberately loose
floors/ceilings and the measured values are reported for EXPERIMENTS.md.
"""

from __future__ import annotations

import time

from benchmarks.conftest import report
from repro.core.counters import CounterSet
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.scheme.pipeline import SchemeSystem
from repro.service import (
    GenerationJournal,
    ProfileAggregator,
    ProfileShipper,
    RecompileController,
    RolloutGuard,
    scheme_canary,
    scheme_recompiler,
    scheme_static_verifier,
)

FLUSHES = 200
POINTS = [
    ProfilePoint.for_location(SourceLocation("svc.ss", n, n + 1)) for n in range(32)
]

CASE_PROGRAM = """
(define (classify n)
  (case (modulo n 7)
    [(0) 'zero]
    [(1 2) 'small]
    [(3 4) 'mid]
    [(5 6) 'big]))
(define (run n acc)
  (if (= n 0) acc (run (- n 1) (cons (classify n) acc))))
(length (run 40 '()))
"""


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def test_ingest_throughput_and_latency():
    counters = CounterSet(name="bench-ingest")
    with ProfileAggregator("127.0.0.1:0") as aggregator:
        address = aggregator.address
        shipper = ProfileShipper(
            counters, address, dataset="bench-ingest", flush_threshold=1
        )
        latencies: list[float] = []
        start = time.perf_counter()
        with shipper:
            for _ in range(FLUSHES):
                for point in POINTS:
                    counters.increment(point)
                before = time.perf_counter()
                shipper.flush()
                latencies.append(time.perf_counter() - before)
        elapsed = time.perf_counter() - start
        ingested = aggregator.total_counts()

    shipped = FLUSHES * len(POINTS)
    assert ingested == shipped, "acked ingest must lose zero counts"
    assert shipper.shipped_deltas == FLUSHES

    deltas_per_sec = FLUSHES / elapsed
    p50_ms = _percentile(latencies, 0.50) * 1e3
    p95_ms = _percentile(latencies, 0.95) * 1e3
    # Loose floors: even a debug CI box does hundreds of loopback round
    # trips per second; the point is "continuous" is affordable.
    assert deltas_per_sec > 25
    assert p95_ms < 500
    report(
        "S-1 ingest",
        "continuous delta shipping is cheap enough to leave on",
        f"{deltas_per_sec:,.0f} deltas/s over loopback TCP; flush round trip "
        f"p50 {p50_ms:.2f} ms, p95 {p95_ms:.2f} ms ({shipped} counts, 0 lost)",
    )


def test_fleet_sharded_ingest_throughput(tmp_path):
    """Experiment S-2 — fleet-scale sharded ingest.

    The sharded service exists so ingest scales past one aggregator
    process: N shard subprocesses (real OS parallelism) each own a hash
    slice and apply wire-v2 *batched* deltas. Claims:

    * **aggregate throughput** — 4 shards absorb ≥50k deltas/s of acked,
      WAL-durable batch ingest from loopback clients;
    * **per-delta latency** — the shards' own p99 ingest latency (the
      apply step a delta waits on before its ack) stays under 5 ms;
    * **exactness** — every delta is applied exactly once.

    ``PGMP_BENCH_SMOKE=1`` relaxes the floors for cramped CI boxes; the
    measured numbers are reported either way.
    """
    import os
    import subprocess
    import sys

    from repro.service.fleet import FleetSupervisor

    smoke = bool(os.environ.get("PGMP_BENCH_SMOKE"))
    shard_count = 4
    batch_size = 512
    batches_per_shard = 5 if smoke else 25
    deltas_total = shard_count * batches_per_shard * batch_size

    # One client *process* per shard: a real fleet's shippers are many
    # processes, and a single-process client would serialize ack parsing
    # behind the GIL and measure itself, not the service. Each client
    # pre-encodes its frames, reports ready, and blocks on a GO line so
    # interpreter startup stays outside the timed window; frames are
    # pipelined with a bounded window instead of one round trip apiece.
    driver = tmp_path / "drive_shard.py"
    driver.write_text(
        """
import socket, sys
from repro.service.delta import encode_frame, read_frame
from repro.service.transport import parse_address
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation

shard, address, batches, batch_size = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4])
)
POINTS = [
    ProfilePoint.for_location(SourceLocation("svc.ss", n, n + 1))
    for n in range(32)
]
frames, seq = [], 0
for _ in range(batches):
    deltas = []
    for _ in range(batch_size):
        seq += 1
        deltas.append({
            "type": "delta", "v": 2, "shipper": f"bench-{shard}",
            "seq": seq, "dataset": "bench-fleet",
            "counts": {POINTS[seq % 32].key(): 1},
        })
    frames.append(encode_frame({"type": "batch", "v": 2, "deltas": deltas}))

parsed = parse_address(address)
sock = socket.create_connection((parsed.host, parsed.port), timeout=60.0)
stream = sock.makefile("rwb")
print("READY", flush=True)
assert sys.stdin.readline().strip() == "GO"
applied, outstanding, WINDOW = 0, 0, 8
for frame in frames:
    stream.write(frame)
    stream.flush()
    outstanding += 1
    if outstanding >= WINDOW:
        ack = read_frame(stream)
        assert ack["status"] == "batch", ack
        applied += ack["applied"]
        outstanding -= 1
while outstanding:
    ack = read_frame(stream)
    assert ack["status"] == "batch", ack
    applied += ack["applied"]
    outstanding -= 1
stream.close()
sock.close()
print(f"APPLIED {applied}", flush=True)
""",
        encoding="utf-8",
    )

    with FleetSupervisor(
        shard_count,
        tmp_path / "fleet",
        in_process=False,
        checkpoint_interval=300.0,  # keep uplink I/O out of the timing
        spawn_timeout=60.0,
    ) as fleet:
        assert fleet.wait_all_up(timeout=60.0)
        addresses = fleet.shard_addresses()
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH")) if p
        )
        clients = [
            subprocess.Popen(
                [
                    sys.executable,
                    str(driver),
                    str(n),
                    addresses[str(n)],
                    str(batches_per_shard),
                    str(batch_size),
                ],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                text=True,
                env=env,
            )
            for n in range(shard_count)
        ]
        for client in clients:
            assert client.stdout.readline().strip() == "READY"
        start = time.perf_counter()
        for client in clients:
            client.stdin.write("GO\n")
            client.stdin.flush()
        acked = 0
        for client in clients:
            line = client.stdout.readline().strip()
            assert line.startswith("APPLIED "), line
            acked += int(line.split()[1])
            assert client.wait(timeout=60.0) == 0
        elapsed = time.perf_counter() - start

        stats = fleet.stats()
        shard_stats = stats["shard_stats"].values()
        applied = sum(
            s["metrics"]["counters"]["deltas_applied_total"]
            for s in shard_stats
        )
        p99s = [
            s["metrics"]["latency_quantiles"]["ingest_latency"]["0.99"]
            for s in shard_stats
        ]

    assert applied == deltas_total, "sharded ingest must lose zero deltas"
    assert acked == deltas_total
    deltas_per_sec = deltas_total / elapsed
    p99_ms = max(p99s) * 1e3
    floor, ceiling_ms = (2_000, 50.0) if smoke else (50_000, 5.0)
    assert deltas_per_sec > floor, f"{deltas_per_sec:,.0f} deltas/s"
    assert p99_ms < ceiling_ms, f"p99 ingest {p99_ms:.2f} ms"
    report(
        "S-2 fleet ingest",
        "sharding scales ingest past one aggregator process",
        f"{deltas_per_sec:,.0f} deltas/s aggregate across {shard_count} "
        f"shard subprocesses (batch={batch_size}, WAL-durable, acked); "
        f"worst shard p99 ingest {p99_ms:.3f} ms; "
        f"{deltas_total:,} deltas, 0 lost",
    )


def test_recompile_swap_pause():
    system = SchemeSystem(policy="warn")
    from repro.casestudies import CASE_LIBRARY, EXCLUSIVE_COND_LIBRARY

    system.load_library(EXCLUSIVE_COND_LIBRARY, "exclusive-cond.ss")
    system.load_library(CASE_LIBRARY, "case.ss")
    controller = RecompileController(
        scheme_recompiler(system, CASE_PROGRAM, "bench.ss"), threshold=0.05
    )

    # Build drifted profile data the way the service would: record an
    # instrumented run's counters, then hand the merged database over.
    profiling = SchemeSystem(policy="warn")
    profiling.load_library(EXCLUSIVE_COND_LIBRARY, "exclusive-cond.ss")
    profiling.load_library(CASE_LIBRARY, "case.ss")
    profiling.profile_run(CASE_PROGRAM, "bench.ss")

    decision = controller.maybe_recompile(profiling.profile_db)
    assert decision.recompiled, "fresh data over an empty baseline must compile"
    assert controller.artifact() is not None
    pause_ms = decision.pause_seconds * 1e3
    assert pause_ms < 5_000
    report(
        "S-1 swap",
        "online recompile-and-swap is a blip, not a deploy",
        f"recompile+swap pause {pause_ms:.1f} ms for a case-study program "
        f"(drift {decision.drift:.2f} over threshold {decision.threshold})",
    )


def test_guarded_swap_overhead():
    """The rollout guard's price on the swap path: static translation
    validation of every artifact flavor (the PGMP5xx passes), the canary
    battery (one interpreted + one compiled differential run of the
    candidate), and the generation journal write. The claim is that the
    fully guarded swap stays within tens of milliseconds of bare — cheap
    enough to leave on everywhere."""
    from repro.casestudies import CASE_LIBRARY, EXCLUSIVE_COND_LIBRARY

    ROUNDS = 5

    def one_swap(guarded: bool) -> float:
        system = SchemeSystem(policy="warn")
        system.load_library(EXCLUSIVE_COND_LIBRARY, "exclusive-cond.ss")
        system.load_library(CASE_LIBRARY, "case.ss")
        guard = None
        if guarded:
            guard = RolloutGuard(
                static_verifier=scheme_static_verifier(),
                validator=scheme_canary(system),
                journal=GenerationJournal(None),
            )
        controller = RecompileController(
            scheme_recompiler(system, CASE_PROGRAM, "bench.ss"),
            threshold=0.05,
            guard=guard,
        )
        profiling = SchemeSystem(policy="warn")
        profiling.load_library(EXCLUSIVE_COND_LIBRARY, "exclusive-cond.ss")
        profiling.load_library(CASE_LIBRARY, "case.ss")
        profiling.profile_run(CASE_PROGRAM, "bench.ss")
        decision = controller.maybe_recompile(profiling.profile_db)
        assert decision.recompiled
        return decision.pause_seconds

    unguarded_ms = _percentile([one_swap(False) for _ in range(ROUNDS)], 0.5) * 1e3
    guarded_ms = _percentile([one_swap(True) for _ in range(ROUNDS)], 0.5) * 1e3
    overhead_ms = guarded_ms - unguarded_ms
    # Loose CI ceiling; the real target (tens of ms of guard overhead on
    # the default probe set) is what gets reported below.
    assert guarded_ms < 2_000
    report(
        "S-1 guarded swap",
        "static verify + canary + journal keep the guarded swap a blip",
        f"swap pause {guarded_ms:.1f} ms guarded vs {unguarded_ms:.1f} ms "
        f"unguarded (guard overhead {overhead_ms:.1f} ms: PGMP5xx static "
        f"verify + differential canary + journal write; medians over "
        f"{ROUNDS} swaps)",
    )


def test_static_verify_cost():
    """What the pre-canary static gate alone costs: translation-validating
    all four artifact flavors of the case-study candidate against its
    expanded core forms. This is the per-candidate price `pgmp serve`
    pays *before* spending a canary probe — it must be comparable to the
    canary itself, or nobody would leave it on."""
    from repro.casestudies import CASE_LIBRARY, EXCLUSIVE_COND_LIBRARY

    ROUNDS = 5
    system = SchemeSystem(policy="warn")
    system.load_library(EXCLUSIVE_COND_LIBRARY, "exclusive-cond.ss")
    system.load_library(CASE_LIBRARY, "case.ss")
    candidate = system.compile(CASE_PROGRAM, "bench.ss")
    verify = scheme_static_verifier()
    # Warm once so artifact compilation (memoized per Program) is not
    # billed to the verification passes themselves.
    first = verify(candidate)
    assert first.passed and first.artifacts == 4

    samples: list[float] = []
    for _ in range(ROUNDS):
        before = time.perf_counter()
        result = verify(candidate)
        samples.append(time.perf_counter() - before)
        assert result.passed
    verify_ms = _percentile(samples, 0.5) * 1e3
    assert verify_ms < 1_000
    report(
        "S-1 static verify",
        "translation-validating all 4 flavors is cheap enough to gate every rollout",
        f"PGMP5xx static verification of 4 artifact flavors in "
        f"{verify_ms:.1f} ms (median over {ROUNDS} runs, artifacts pre-compiled)",
    )
