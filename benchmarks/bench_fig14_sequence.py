"""Experiment F13–F14 — §6.3: data-structure specialization.

The paper's motivating claim (after Perflint): choosing the right
representation "can potentially lead to asymptotic improvements in
performance". We make that measurable:

* a random-access workload over a **list-backed** sequence costs O(n) per
  `seq-ref` — total work grows quadratically with sequence length;
* the profile-specialized **vector-backed** sequence costs O(1) per
  `seq-ref` — total work grows linearly;
* therefore the work ratio between unspecialized and specialized grows
  with n (the asymptotic separation), which we assert at two sizes.

Also benchmarks the compile-time cost of the specializing constructor and
checks the Figure-13 warning path.
"""

import pytest

from benchmarks.conftest import report
from repro.casestudies.datastructs import make_datastructs_system
from repro.scheme.instrument import ProfileMode


def _program(n: int, accesses: int) -> str:
    elements = " ".join(str(i) for i in range(n))
    return f"""
(define s (profiled-seq {elements}))
(define (go i acc)
  (if (= i 0) acc (go (- i 1) (+ acc (seq-ref s (modulo i {n}))))))
(go {accesses} 0)
"""


def _timed_run(system, source: str, repeats: int = 3) -> float:
    """Best-of-N wall time of the compiled program (no instrumentation).

    Wall time is the right metric here: the O(n) cost of `list-ref` on a
    list-backed sequence lives inside the substrate's primitive, where
    expression counters cannot see it.
    """
    import time

    program = system.compile(source, "seq.ss")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        system.run(program)
        best = min(best, time.perf_counter() - start)
    return best


def _measure(n: int, accesses: int) -> tuple[float, float]:
    """(unspecialized seconds, specialized seconds) for one configuration."""
    source = _program(n, accesses)
    baseline = make_datastructs_system()
    before = _timed_run(baseline, source)

    trained = make_datastructs_system()
    trained.profile_run(source, "seq.ss")
    after = _timed_run(trained, source)
    return before, after


def test_specialization_is_asymptotic(benchmark):
    """Per-access cost of the list-backed sequence grows with n; the
    specialized vector-backed sequence stays flat — so the speedup *grows*
    with n. Wall-time based, so allow generous noise margins."""
    small = benchmark.pedantic(lambda: _measure(16, 2000), rounds=1, iterations=1)
    large = _measure(768, 2000)
    ratio_small = small[0] / small[1]
    ratio_large = large[0] / large[1]
    assert large[1] < large[0]
    # The separation grows with n: that's the asymptotic claim.
    assert ratio_large > ratio_small * 1.5
    report(
        "F14 (asymptotics)",
        "list->vector specialization: O(n) random access becomes O(1)",
        f"time ratio unspecialized/specialized: {ratio_small:.1f}x at n=16, "
        f"{ratio_large:.1f}x at n=768",
    )


def test_list_backed_random_access(benchmark):
    source = _program(32, 400)
    system = make_datastructs_system()
    program = system.compile(source, "seq.ss")
    value = benchmark(lambda: system.run(program).value)
    assert isinstance(value, int)


def test_vector_backed_random_access(benchmark):
    source = _program(32, 400)
    system = make_datastructs_system()
    system.profile_run(source, "seq.ss")
    program = system.compile(source, "seq.ss")
    assert "'vector" in __import__(
        "repro.scheme.core_forms", fromlist=["unparse_string"]
    ).unparse_string(program)
    value = benchmark(lambda: system.run(program).value)
    assert isinstance(value, int)


def test_figure13_warning_path(benchmark):
    """The profiled-list library recommends (rather than rewrites): the
    Perflint-comparison half of §6.3."""
    source = """
    (define pl (profiled-list 1 2 3 4 5 6 7 8))
    (define (go i acc)
      (if (= i 0) acc (go (- i 1) (+ acc (p-list-ref pl (modulo i 8))))))
    (go 100 0)
    """
    system = make_datastructs_system()
    system.profile_run(source, "warn.ss")
    benchmark.pedantic(
        lambda: system.compile(source, "warn.ss"), rounds=1, iterations=1
    )
    assert "WARNING" in system.last_compile_output
    report(
        "F13 (recommendation)",
        "Perflint-style compile-time warning when vector ops dominate a list",
        system.last_compile_output.strip().splitlines()[0],
    )
