"""Experiment F9–F12 — §6.2: profile-guided receiver class prediction.

The claim (after Grove et al. and Hölzle & Ungar): on a receiver mix
dominated by a few classes, a polymorphic inline cache generated from
profile data beats both the instrumented multi-way dispatch and plain
dynamic dispatch — the hot classes' method bodies run without a method
lookup at all.

Shapes asserted:
* the optimized call site performs (far) fewer dynamic-dispatch lookups;
* the optimized call site is faster end to end than the unoptimized one.
"""

import pytest

from benchmarks.conftest import report
from repro.casestudies.receiver_class import make_object_system
from repro.scheme.instrument import ProfileMode

SHAPES = """
(class Square ((length 0))
  (define-method (area this) (sqr (field this length))))
(class Circle ((radius 0))
  (define-method (area this) (* pi (sqr (field this radius)))))
(class Triangle ((base 0) (height 0))
  (define-method (area this) (* 1/2 (field this base) (field this height))))

(define (build n acc)
  ;; ~87% Circle, ~10% Square, ~3% Triangle — a skewed receiver mix.
  (if (= n 0)
      acc
      (build (- n 1)
             (cons (cond
                     [(< (modulo n 30) 26) (make-Circle n)]
                     [(< (modulo n 30) 29) (make-Square n)]
                     [else (make-Triangle n n)])
                   acc))))
(define shapes (build 150 '()))
(define (areas shapes) (map (lambda (s) (method s area)) shapes))
"""

DRIVER = "(length (areas shapes))"


#: Counts actual entries into the dynamic dispatch routine by shadowing it
#: at the top level (the library resolves globals at call time, so both
#: `dynamic-dispatch` and `instrumented-dispatch` route through the shadow).
COUNTING_PRELUDE = """
(define raw-dispatch dynamic-dispatch)
(define dispatch-count 0)
(define (dynamic-dispatch x m . args)
  (set! dispatch-count (+ dispatch-count 1))
  (apply raw-dispatch x m args))
"""


def _dispatch_lookups(system) -> int:
    """Dynamic count of dispatch-routine entries during one driven run.

    The runtime is reset first so the shadowing prelude always wraps the
    *original* dispatch routine (state persists across runs otherwise).
    """
    system.fresh_runtime()
    result = system.run_source(
        COUNTING_PRELUDE + SHAPES + DRIVER + " dispatch-count", "shapes.ss"
    )
    return int(result.value)  # type: ignore[arg-type]


def _trained_system():
    system = make_object_system()
    system.profile_run(
        COUNTING_PRELUDE + SHAPES + DRIVER + " dispatch-count", "shapes.ss"
    )
    return system


def test_pic_avoids_dynamic_dispatch(benchmark):
    baseline = make_object_system()
    lookups_before = _dispatch_lookups(baseline)
    system = _trained_system()
    lookups_after = benchmark.pedantic(
        lambda: _dispatch_lookups(system), rounds=1, iterations=1
    )
    assert lookups_after < lookups_before / 2
    report(
        "F11 (dispatch lookups)",
        "PIC inlines hot receivers; only cold receivers reach dynamic dispatch",
        f"runtime object-system calls per run: {lookups_before} -> {lookups_after}",
    )


def test_instrumented_method_calls(benchmark):
    system = make_object_system()
    program = system.compile(SHAPES + DRIVER, "shapes.ss")
    value = benchmark(lambda: system.run(program).value)
    assert str(value) == "150"


def test_optimized_method_calls(benchmark):
    system = _trained_system()
    program = system.compile(SHAPES + DRIVER, "shapes.ss")
    value = benchmark(lambda: system.run(program).value)
    assert str(value) == "150"


def test_optimized_faster_by_work_proxy(benchmark):
    """Expression-evaluation counts as a noise-free time proxy."""
    baseline = make_object_system()
    before = baseline.run_source(
        SHAPES + DRIVER, "shapes.ss", instrument=ProfileMode.EXPR
    ).counters.total()
    system = make_object_system()
    system.profile_run(SHAPES + DRIVER, "shapes.ss")
    after = benchmark.pedantic(
        lambda: system.run_source(
            SHAPES + DRIVER, "shapes.ss", instrument=ProfileMode.EXPR
        ).counters.total(),
        rounds=1,
        iterations=1,
    )
    assert after < before
    report(
        "F11 (work executed)",
        "receiver class prediction reduces per-call work on hot classes",
        f"expression evaluations: {before} -> {after} "
        f"({before / after:.2f}x less work)",
    )
