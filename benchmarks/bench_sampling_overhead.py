"""Experiment SAMP-1 — sampling-profiler overhead on production traffic.

The sampling tier's contract (docs/observability.md): full counter
instrumentation is for representative offline runs; the ``pgmp ship
--profile-mode sampled`` steady state — one run in ``stride``
instrumented, the rest executing with **no hooks at all** — must cost
**under 1%** over uninstrumented execution, while still shipping
unbiased counts with an honest confidence record.

Wall clock in shared containers is noisy, so the budget is asserted on a
deterministic proxy (Python call events, the bench_sec44_overhead.py /
bench_trace_overhead.py technique): the steady-state window of
``stride`` runs (1 instrumented + ``stride-1`` plain) is compared
against ``stride`` plain runs. Best-of-N wall clock is reported for the
EXPERIMENTS.md row.

``PGMP_BENCH_SMOKE=1`` shrinks the workload for CI; the <1% assertion
itself is unchanged — the proxy is deterministic, so the gate is just as
strict in smoke mode.
"""

from __future__ import annotations

import os
import sys
import time

from benchmarks.conftest import report
from repro.core.counters import CounterSet
from repro.profiling import RunSampler, relative_error_bar
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem

SMOKE = os.environ.get("PGMP_BENCH_SMOKE") == "1"

#: The production stride the <1% budget is asserted at (``pgmp ship
#: --profile-mode sampled --sample-rate 250``). Full instrumentation
#: costs ~120% per run on this interpreter, so 1-in-250 subsetting
#: amortizes it to ~0.5% — comfortably inside the budget.
STRIDE = 250

#: Stride for the reconstruction-fidelity loop — the unbiasedness
#: property is stride-independent, so a small one keeps the loop short.
UNBIAS_STRIDE = 10

FIB_N = 9 if SMOKE else 11

PROGRAM = f"""
(define (fib n)
  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(fib {FIB_N})
"""


def _call_events(fn) -> int:
    """Python-level call events during fn() — exact and repeatable."""
    count = 0

    def tracer(frame, event, arg):
        nonlocal count
        if event == "call":
            count += 1

    sys.setprofile(tracer)
    try:
        fn()
    finally:
        sys.setprofile(None)
    return count


def _best_of(fn, repeats: int = 3 if SMOKE else 5) -> float:
    best = float("inf")
    fn()  # warm up
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _setup():
    system = SchemeSystem()
    program = system.compile(PROGRAM, "bench.ss")
    return system, program


def _instrumented_run(system, program, counters):
    run_counters = CounterSet(name="run")
    system.run(program, instrument=ProfileMode.EXPR, counters=run_counters)
    return run_counters


def test_steady_state_sampled_overhead_under_one_percent(benchmark):
    """The headline gate: the ship-loop steady state at stride 100 stays
    under 1% of uninstrumented execution on the call-event proxy."""
    system, program = _setup()
    shipping = CounterSet(name="traffic")
    sampler = RunSampler(STRIDE)

    def sampled_window():
        # One steady-state window: exactly what the pgmp ship loop does.
        for _ in range(STRIDE):
            if sampler.gate():
                run_counters = _instrumented_run(system, program, shipping)
                sampler.fold(run_counters, shipping)
            else:
                system.run(program)

    def plain_window():
        for _ in range(STRIDE):
            system.run(program)

    plain = _call_events(plain_window)
    sampled = benchmark.pedantic(
        lambda: _call_events(sampled_window), rounds=1, iterations=1
    )
    overhead = sampled / plain - 1.0
    assert sampled >= plain, "sampling cannot remove work"
    assert overhead < 0.01, (
        f"steady-state sampled profiling exceeded the 1% budget: "
        f"{sampled} vs {plain} call events (+{overhead:.3%})"
    )

    wall_plain = _best_of(plain_window)
    wall_sampled = _best_of(sampled_window)
    report(
        "SAMP-1 steady-state overhead",
        "sampled production profiling <1% over uninstrumented execution",
        f"+{overhead:.3%} call events per {STRIDE}-run window at stride "
        f"{STRIDE} (wall clock best-of-{3 if SMOKE else 5}: "
        f"{wall_plain * 1e3:.1f}ms plain, {wall_sampled * 1e3:.1f}ms sampled)",
    )


def test_full_instrumentation_is_what_sampling_amortizes(benchmark):
    """Context row: the per-run cost of full instrumentation — the
    overhead the run-subsetting divides by the stride."""
    system, program = _setup()
    shipping = CounterSet(name="traffic")

    plain = _call_events(lambda: system.run(program))
    instrumented = benchmark.pedantic(
        lambda: _call_events(
            lambda: _instrumented_run(system, program, shipping)
        ),
        rounds=1,
        iterations=1,
    )
    full_overhead = instrumented / plain - 1.0
    assert full_overhead > 0.01, (
        "full instrumentation costs >1% per run — otherwise sampling "
        f"would have nothing to amortize (got +{full_overhead:.2%})"
    )
    report(
        "SAMP-1 full-instrumentation context",
        "full counter instrumentation is too hot to leave on in production",
        f"+{full_overhead:.1%} call events per fully-instrumented run; "
        f"amortized to +{full_overhead / STRIDE:.3%} by 1-in-{STRIDE} "
        "run subsetting",
    )


def test_sampled_counts_stay_unbiased_with_honest_confidence(benchmark):
    """The counts the cheap path ships match the exact profile's totals
    (the gate is deterministic), and the confidence record prices the
    thinning."""
    system, program = _setup()
    runs = 4 * UNBIAS_STRIDE

    exact = CounterSet(name="exact")

    def exact_loop():
        for _ in range(runs):
            system.run(program, instrument=ProfileMode.EXPR, counters=exact)

    sampled = CounterSet(name="sampled")
    sampler = RunSampler(UNBIAS_STRIDE)

    def sampled_loop():
        for _ in range(runs):
            if sampler.gate():
                run_counters = CounterSet(name="run")
                system.run(
                    program, instrument=ProfileMode.EXPR, counters=run_counters
                )
                sampler.fold(run_counters, sampled)
            else:
                system.run(program)

    benchmark.pedantic(sampled_loop, rounds=1, iterations=1)
    exact_loop()

    # Identical per-run workloads + deterministic gate: the reconstructed
    # totals equal the exact totals, point for point.
    assert sampled.snapshot() == exact.snapshot()
    error_bar = relative_error_bar(sampler.samples, UNBIAS_STRIDE)
    assert 0.0 < error_bar <= 1.0
    report(
        "SAMP-1 reconstruction fidelity",
        "stride-subset counts are unbiased estimates of the exact profile",
        f"reconstructed totals identical to exact over {runs} runs "
        f"({sampler.samples} observed events, ±{error_bar:.0%} error bar)",
    )
