"""Experiment O-2 — §4.4 run-time profiling overhead.

The paper reports ~9% overhead for Chez's counter-based expression profiler
and a 4–12× slowdown for Racket's errortrace (which additionally pays the
``annotate-expr`` function-wrapping). Absolute factors on a Python
interpreter substrate differ, but the *ordering* must reproduce:

    uninstrumented  <  counter instrumentation  (EXPR mode)

and on the Python substrate the call-wrapping hook (errortrace strategy)
costs strictly more than a raw counter bump. When a program is not
instrumented at all, profile points cost nothing (paper §3.1) — the
uninstrumented benchmark shares the same compiled program shape minus
hooks.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.core.counters import CounterSet
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.pyast.profiler import collecting_counters, profile_hook
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem

WORK = """
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(fib 15)
"""


def _scheme_times(modes, repeats=5):
    """Interleaved best-of-N timings of the same compiled program under
    each instrumentation mode (interleaving cancels warm-up drift)."""
    system = SchemeSystem()
    program = system.compile(WORK, "fib.ss")
    best = {mode: float("inf") for mode in modes}
    for mode in modes:  # warm up each configuration once
        system.run(program, instrument=mode)
    for _ in range(repeats):
        for mode in modes:
            start = time.perf_counter()
            system.run(program, instrument=mode)
            best[mode] = min(best[mode], time.perf_counter() - start)
    return best


def test_uninstrumented_run(benchmark):
    system = SchemeSystem()
    program = system.compile(WORK, "fib.ss")
    value = benchmark(lambda: system.run(program).value)
    assert value == 610


def test_expr_instrumented_run(benchmark):
    system = SchemeSystem()
    program = system.compile(WORK, "fib.ss")
    value = benchmark(lambda: system.run(program, instrument=ProfileMode.EXPR).value)
    assert value == 610


def test_call_instrumented_run(benchmark):
    system = SchemeSystem()
    program = system.compile(WORK, "fib.ss")
    value = benchmark(lambda: system.run(program, instrument=ProfileMode.CALL).value)
    assert value == 610


def _python_call_events(fn) -> int:
    """Deterministic work proxy: Python-level call events during fn().

    Wall-clock under the benchmark harness is noisy in shared containers;
    the number of Python calls executed is exact and instrumentation adds
    one bump call per profiled expression execution.
    """
    import sys

    count = 0

    def tracer(frame, event, arg):
        nonlocal count
        if event == "call":
            count += 1

    sys.setprofile(tracer)
    try:
        fn()
    finally:
        sys.setprofile(None)
    return count


def test_instrumentation_overhead_ordering(benchmark):
    system = SchemeSystem()
    program = system.compile(WORK, "fib.ss")
    plain = _python_call_events(lambda: system.run(program))
    call_mode = _python_call_events(
        lambda: system.run(program, instrument=ProfileMode.CALL)
    )
    expr_mode = benchmark.pedantic(
        lambda: _python_call_events(
            lambda: system.run(program, instrument=ProfileMode.EXPR)
        ),
        rounds=1,
        iterations=1,
    )
    # The paper's ordering: no instrumentation < call-level < expression-level.
    assert plain < call_mode < expr_mode
    times = _scheme_times([None, ProfileMode.EXPR])
    report(
        "O-2 (scheme)",
        "Chez counter profiler ~9% overhead; errortrace 4-12x",
        f"work (python calls): plain {plain}, call-mode {call_mode}, "
        f"expr-mode {expr_mode} ({expr_mode / plain:.2f}x); wall time "
        f"{times[ProfileMode.EXPR] / times[None]:.2f}x (indicative)",
    )


def _python_work(n: int) -> int:
    total = 0
    for i in range(n):
        total += i % 7
    return total


_POINT = ProfilePoint.for_location(SourceLocation("hook.py", 0, 1))
_KEY = _POINT.key()


def _wrapped_work(n: int) -> int:
    # The errortrace strategy: evaluation through a generated thunk + hook.
    total = 0
    for i in range(n):
        total += profile_hook(_KEY, lambda: i % 7)
    return total


def test_pyast_plain_loop(benchmark):
    assert benchmark(_python_work, 20_000) == _python_work(20_000)


def test_pyast_call_wrapped_loop(benchmark):
    counters = CounterSet()
    with collecting_counters(counters):
        result = benchmark(_wrapped_work, 20_000)
    assert result == _python_work(20_000)


def test_call_wrapping_costs_more_than_counting(benchmark):
    """The paper's Racket note: wrapping each annotated expression in a
    function call adds overhead beyond the counter itself."""

    def timed(fn, *args):
        start = time.perf_counter()
        fn(*args)
        return time.perf_counter() - start

    n = 50_000
    plain = benchmark.pedantic(lambda: timed(_python_work, n), rounds=1, iterations=1)
    counters = CounterSet()
    with collecting_counters(counters):
        wrapped = timed(_wrapped_work, n)
    factor = wrapped / plain
    assert factor > 1.5
    report(
        "O-2 (pyast)",
        "errortrace-style wrapping: 4-12x slowdown while profiling",
        f"call-wrapped loop costs {factor:.1f}x the plain loop",
    )
