from setuptools import setup

# Legacy shim: this environment's setuptools/pip cannot build PEP-660
# editable wheels offline; `pip install -e .` falls back to setup.py develop.
setup()
