"""Tests for the bytecode peephole pass."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks.bytecode import BasicBlock, BlockFunction, Instr, Module, Opcode
from repro.blocks.compiler import compile_program
from repro.blocks.peephole import peephole
from repro.blocks.pgo import eliminate_unreachable, optimize_layout
from repro.blocks.vm import VM
from repro.scheme.datum import write_datum
from repro.scheme.pipeline import SchemeSystem
from repro.scheme.primitives import make_global_env
from repro.scheme.syntax import strip_all


def _run(module):
    return VM(module, make_global_env()).run()


def compiled(source: str) -> Module:
    return compile_program(SchemeSystem().compile(source))


class TestPushPop:
    def test_const_pop_dropped(self):
        module = compiled("(begin 1 2 3)")
        optimized, report = peephole(module)
        assert report.dropped_pairs >= 2
        assert _run(optimized) == 3

    def test_load_pop_kept(self):
        """LOAD may fault on unbound names; never dropped."""
        module = compiled("(define x 1) (begin x 2)")
        _, report = peephole(module)
        # Only the const-producing begin element can be dropped.
        before = module.disassemble().count("load")
        optimized, _ = peephole(module)
        assert optimized.disassemble().count("load") == before


class TestJumpThreading:
    def _with_trampoline(self) -> Module:
        module = Module()
        module.add_function(
            BlockFunction(
                "toplevel", [], None,
                [
                    BasicBlock("entry", [Instr(Opcode.JUMP, "tramp")]),
                    BasicBlock("tramp", [Instr(Opcode.JUMP, "final")]),
                    BasicBlock("final", [Instr(Opcode.CONST, 9), Instr(Opcode.RETURN)]),
                ],
            )
        )
        return module

    def test_jump_chain_threaded(self):
        optimized, report = peephole(self._with_trampoline())
        assert report.threaded_jumps >= 1
        entry = optimized.toplevel.blocks[0]
        assert entry.instrs[-1].arg == "final"
        assert _run(optimized) == 9

    def test_threaded_trampoline_becomes_unreachable(self):
        optimized, _ = peephole(self._with_trampoline())
        pruned, removed = eliminate_unreachable(optimized)
        assert removed == 1
        assert _run(pruned) == 9

    def test_branch_targets_threaded(self):
        module = Module()
        module.add_function(
            BlockFunction(
                "toplevel", [], None,
                [
                    BasicBlock(
                        "entry",
                        [Instr(Opcode.CONST, True),
                         Instr(Opcode.BRANCH_FALSE, "t1", fallthrough="t2")],
                    ),
                    BasicBlock("t1", [Instr(Opcode.JUMP, "end")]),
                    BasicBlock("t2", [Instr(Opcode.JUMP, "end")]),
                    BasicBlock("end", [Instr(Opcode.CONST, 5), Instr(Opcode.RETURN)]),
                ],
            )
        )
        optimized, report = peephole(module)
        # Both targets thread to "end" and the branch collapses.
        assert report.collapsed_branches == 1
        assert _run(optimized) == 5

    def test_cyclic_trampolines_survive(self):
        module = Module()
        module.add_function(
            BlockFunction(
                "toplevel", [], None,
                [
                    BasicBlock("entry", [Instr(Opcode.CONST, 1), Instr(Opcode.RETURN)]),
                    BasicBlock("a", [Instr(Opcode.JUMP, "b")]),
                    BasicBlock("b", [Instr(Opcode.JUMP, "a")]),
                ],
            )
        )
        optimized, _ = peephole(module)  # must not hang
        assert _run(optimized) == 1


class TestSemantics:
    @pytest.mark.parametrize(
        "source",
        [
            "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1))))) (fact 8)",
            "(begin 'a 'b (if #t (begin 1 2) 3))",
            "(define (f x) (cond [(= x 1) 'one] [(= x 2) 'two] [else 'many])) (map f '(1 2 3))",
            "(let loop ([i 0] [acc 0]) (if (= i 20) acc (loop (+ i 1) (+ acc i))))",
        ],
    )
    def test_preserved(self, source):
        module = compiled(source)
        optimized, _ = peephole(module)
        assert write_datum(strip_all(_run(module))) == write_datum(
            strip_all(_run(optimized))
        )

    def test_composes_with_layout_pgo(self):
        source = """
        (define (classify x) (if (< x 90) 'common 'rare))
        (define (run i acc)
          (if (= i 0) acc (run (- i 1) (cons (classify (modulo i 100)) acc))))
        (length (run 100 '()))
        """
        module = compiled(source)
        profiling_vm = VM(module, make_global_env(), profile=True)
        value = profiling_vm.run()
        laid_out, _ = optimize_layout(module, profiling_vm.profile)
        final, report = peephole(laid_out)
        assert _run(final) == value

    def test_report_str(self):
        _, report = peephole(compiled("(begin 1 2)"))
        assert "dropped" in str(report)
        assert report.total >= 1


_exprs = st.recursive(
    st.integers(min_value=-9, max_value=9).map(str),
    lambda sub: st.one_of(
        st.tuples(sub, sub).map(lambda t: f"(begin {t[0]} {t[1]})"),
        st.tuples(sub, sub, sub).map(lambda t: f"(if {t[0]} {t[1]} {t[2]})"),
        st.tuples(sub, sub).map(lambda t: f"(+ {t[0]} {t[1]})"),
    ),
    max_leaves=10,
)


@given(_exprs)
@settings(max_examples=30, deadline=None)
def test_peephole_transparent_property(expr):
    module = compiled(expr)
    optimized, _ = peephole(module)
    assert write_datum(strip_all(_run(module))) == write_datum(
        strip_all(_run(optimized))
    )
