"""Unit tests for the bytecode representation and VM edge cases."""

import pytest

from repro.blocks.bytecode import BasicBlock, BlockFunction, Instr, Module, Opcode
from repro.blocks.vm import VM, VMClosure
from repro.core.errors import VMError
from repro.scheme.datum import UNSPECIFIED, Symbol
from repro.scheme.primitives import make_global_env


class TestOpcodes:
    def test_terminators(self):
        terminators = {
            Opcode.JUMP, Opcode.BRANCH_FALSE, Opcode.BRANCH_TRUE,
            Opcode.RETURN, Opcode.TAILCALL,
        }
        for op in Opcode:
            assert op.is_terminator() == (op in terminators)

    def test_instr_repr(self):
        instr = Instr(Opcode.BRANCH_FALSE, "else1", fallthrough="then1")
        text = repr(instr)
        assert "brf" in text and "else1" in text and "ft=then1" in text


class TestBlocks:
    def _branchy(self):
        return BasicBlock(
            "entry",
            [Instr(Opcode.CONST, True), Instr(Opcode.BRANCH_FALSE, "b", fallthrough="a")],
        )

    def test_successors_branch(self):
        assert self._branchy().successors() == ["a", "b"]

    def test_successors_jump_and_return(self):
        jump = BasicBlock("x", [Instr(Opcode.JUMP, "y")])
        ret = BasicBlock("z", [Instr(Opcode.CONST, 1), Instr(Opcode.RETURN)])
        assert jump.successors() == ["y"]
        assert ret.successors() == []

    def test_terminator_property(self):
        block = self._branchy()
        assert block.terminator.op is Opcode.BRANCH_FALSE

    def test_block_by_label_and_position(self):
        fn = BlockFunction("f", [], None, [BasicBlock("entry"), BasicBlock("next")])
        assert fn.block_by_label("next").label == "next"
        assert fn.block_position("next") == 1
        with pytest.raises(KeyError):
            fn.block_by_label("missing")
        with pytest.raises(KeyError):
            fn.block_position("missing")


class TestModule:
    def _module(self):
        module = Module()
        top = BlockFunction(
            "toplevel", [], None,
            [BasicBlock("entry", [Instr(Opcode.CONST, 42), Instr(Opcode.RETURN)])],
        )
        module.add_function(top)
        return module

    def test_add_function_sets_index(self):
        module = self._module()
        assert module.toplevel.index == 0
        idx = module.add_function(BlockFunction("g", [], None, []))
        assert idx == 1

    def test_block_count(self):
        assert self._module().block_count() == 1

    def test_disassemble(self):
        text = self._module().disassemble()
        assert "function 0 toplevel" in text
        assert "entry:" in text
        assert "const" in text

    def test_structure_signature_ignores_args(self):
        a = self._module()
        b = Module()
        b.add_function(
            BlockFunction(
                "toplevel", [], None,
                [BasicBlock("entry", [Instr(Opcode.CONST, 99), Instr(Opcode.RETURN)])],
            )
        )
        assert a.structure_signature() == b.structure_signature()


class TestVMEdgeCases:
    def test_run_trivial_module(self):
        module = Module()
        module.add_function(
            BlockFunction(
                "toplevel", [], None,
                [BasicBlock("entry", [Instr(Opcode.CONST, 42), Instr(Opcode.RETURN)])],
            )
        )
        assert VM(module, make_global_env()).run() == 42

    def test_fall_off_block_end(self):
        module = Module()
        module.add_function(
            BlockFunction(
                "toplevel", [], None,
                [BasicBlock("entry", [Instr(Opcode.CONST, 1)])],  # no terminator
            )
        )
        with pytest.raises(VMError, match="fell off"):
            VM(module, make_global_env()).run()

    def test_return_with_empty_stack_yields_unspecified(self):
        module = Module()
        module.add_function(
            BlockFunction(
                "toplevel", [], None,
                [BasicBlock("entry", [Instr(Opcode.RETURN)])],
            )
        )
        assert VM(module, make_global_env()).run() is UNSPECIFIED

    def test_vm_closure_repr_and_arity(self):
        module = Module()
        module.add_function(
            BlockFunction(
                "toplevel", [], None,
                [BasicBlock("entry", [Instr(Opcode.CONST, 0), Instr(Opcode.RETURN)])],
            )
        )
        fn = BlockFunction(
            "helper", [Symbol("x")], None,
            [BasicBlock("entry", [Instr(Opcode.LOAD, Symbol("x")), Instr(Opcode.RETURN)])],
        )
        module.add_function(fn)
        vm = VM(module, make_global_env())
        closure = VMClosure(fn, vm.global_env, vm)
        assert "helper" in repr(closure)
        assert closure(7) == 7
        with pytest.raises(VMError, match="expected 1"):
            closure(1, 2)

    def test_rest_parameter_binding(self):
        from repro.scheme.datum import write_datum

        fn = BlockFunction(
            "var", [Symbol("a")], Symbol("rest"),
            [BasicBlock("entry", [Instr(Opcode.LOAD, Symbol("rest")), Instr(Opcode.RETURN)])],
        )
        module = Module()
        module.add_function(
            BlockFunction("toplevel", [], None,
                          [BasicBlock("entry", [Instr(Opcode.CONST, 0), Instr(Opcode.RETURN)])])
        )
        module.add_function(fn)
        vm = VM(module, make_global_env())
        closure = VMClosure(fn, vm.global_env, vm)
        assert write_datum(closure(1, 2, 3)) == "(2 3)"
        with pytest.raises(VMError, match="at least 1"):
            closure()
