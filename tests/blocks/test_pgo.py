"""Tests for block-level PGO: layout, branch inversion, CFG utilities."""

import pytest

from repro.blocks.cfg import (
    function_cfg,
    hot_path,
    reachable_blocks,
    unreachable_blocks,
    weighted_cfg,
)
from repro.blocks.compiler import compile_program
from repro.blocks.pgo import optimize_layout
from repro.blocks.vm import VM
from repro.scheme.datum import write_datum
from repro.scheme.pipeline import SchemeSystem
from repro.scheme.primitives import make_global_env
from repro.scheme.syntax import strip_all


SKEWED = """
(define (classify x)
  (if (< x 90) 'common (if (< x 99) 'rare 'unicorn)))
(define (run i acc)
  (if (= i 0) acc (run (- i 1) (cons (classify (modulo (* i 37) 100)) acc))))
(length (run 300 '()))
"""


def _compile(source):
    return compile_program(SchemeSystem().compile(source))


def _run(module, profile=True):
    vm = VM(module, make_global_env(), profile=profile)
    value = vm.run()
    return value, vm.profile


class TestLayout:
    def test_optimized_module_preserves_semantics(self):
        module = _compile(SKEWED)
        value, profile = _run(module)
        optimized, report = optimize_layout(module, profile)
        value2, _ = _run(optimized, profile=False)
        assert write_datum(strip_all(value)) == write_datum(strip_all(value2))

    def test_optimization_reduces_taken_jumps(self):
        module = _compile(SKEWED)
        _, profile = _run(module)
        optimized, _ = optimize_layout(module, profile)
        _, before = _run(module)
        _, after = _run(optimized)
        assert after.taken_jumps < before.taken_jumps
        assert after.fallthroughs > before.fallthroughs
        # Total transfers unchanged: layout only moves blocks around.
        assert after.total_transfers == before.total_transfers

    def test_entry_block_stays_first(self):
        module = _compile(SKEWED)
        _, profile = _run(module)
        optimized, _ = optimize_layout(module, profile)
        for fn in optimized.functions:
            assert fn.blocks[0].label == "entry" or len(fn.blocks) <= 1 or fn.blocks[0].label == module.functions[fn.index].blocks[0].label

    def test_report_describes_work(self):
        module = _compile(SKEWED)
        _, profile = _run(module)
        _, report = optimize_layout(module, profile)
        assert report.moved_blocks + report.inverted_branches > 0
        assert "reordered" in str(report)

    def test_cold_profile_changes_nothing_semantically(self):
        """With an empty profile, layout keeps original block order."""
        from repro.blocks.vm import BlockProfile

        module = _compile(SKEWED)
        optimized, report = optimize_layout(module, BlockProfile())
        assert [
            [b.label for b in fn.blocks] for fn in optimized.functions
        ] == [[b.label for b in fn.blocks] for fn in module.functions]

    def test_idempotent_on_optimized_layout(self):
        module = _compile(SKEWED)
        _, profile = _run(module)
        optimized, _ = optimize_layout(module, profile)
        _, profile2 = _run(optimized)
        again, report2 = optimize_layout(optimized, profile2)
        _, metrics_once = _run(optimized)
        _, metrics_twice = _run(again)
        assert metrics_twice.taken_jumps <= metrics_once.taken_jumps


class TestCfg:
    def test_function_cfg_nodes(self):
        module = _compile("(define (f x) (if x 1 2)) (f #t)")
        f = next(fn for fn in module.functions if fn.name == "f")
        graph = function_cfg(f)
        assert set(graph.nodes) == {b.label for b in f.blocks}
        assert graph.out_degree("entry") == 2

    def test_weighted_cfg(self):
        module = _compile("(define (f x) (if x 1 2)) (f #t) (f #t) (f #f)")
        _, profile = _run(module)
        f = next(fn for fn in module.functions if fn.name == "f")
        graph = weighted_cfg(f, profile)
        weights = sorted(
            data["weight"] for _, _, data in graph.out_edges("entry", data=True)
        )
        assert weights == [1, 2]

    def test_reachable_blocks(self):
        module = _compile("(define (f x) (if x 1 2)) (f #t)")
        f = next(fn for fn in module.functions if fn.name == "f")
        assert reachable_blocks(f) == {b.label for b in f.blocks}
        assert unreachable_blocks(f) == set()

    def test_hot_path_follows_weights(self):
        module = _compile("(define (f x) (if x 'hot 'cold)) (f #t) (f #t) (f #t) (f #f)")
        _, profile = _run(module)
        f = next(fn for fn in module.functions if fn.name == "f")
        path = hot_path(f, profile)
        assert path[0] == "entry"
        assert any(label.startswith("then") for label in path)
