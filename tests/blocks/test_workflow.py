"""Tests for the Section-4.3 three-pass compilation protocol."""

import pytest

from repro.blocks.workflow import three_pass_compile
from repro.casestudies.exclusive_cond import CASE_LIBRARY, EXCLUSIVE_COND_LIBRARY
from repro.casestudies.if_r import IF_R_LIBRARY


SIMPLE = """
(define (f x) (if (< x 10) 'small 'big))
(define (run i acc)
  (if (= i 0) acc (run (- i 1) (cons (f i) acc))))
(length (run 50 '()))
"""

WITH_CASE = """
(define (classify n)
  (case (modulo n 7)
    [(0) 'zero]
    [(1 2) 'small]
    [(3 4 5) 'medium]
    [(6) 'large]))
(define (run n acc)
  (if (= n 0) acc (run (- n 1) (cons (classify n) acc))))
(length (run 100 '()))
"""

WITH_IF_R = """
(define (classify n)
  (if-r (= (modulo n 10) 0) 'rare 'common))
(define (run n acc)
  (if (= n 0) acc (run (- n 1) (cons (classify n) acc))))
(length (run 100 '()))
"""


class TestThreePass:
    def test_plain_program(self):
        report = three_pass_compile(SIMPLE)
        assert str(report.value) == "50"
        assert report.expansion_stable
        assert report.block_structure_stable
        assert report.semantics_preserved
        assert report.source_points > 0

    def test_with_profile_guided_case(self):
        """The crux: a meta-program that *changes its output* based on
        profiles, yet pass-3 expansion is a fixed point of pass-2."""
        report = three_pass_compile(
            WITH_CASE, libraries=(EXCLUSIVE_COND_LIBRARY, CASE_LIBRARY)
        )
        assert str(report.value) == "100"
        assert report.expansion_stable
        assert report.block_structure_stable
        assert report.semantics_preserved

    def test_with_if_r(self):
        report = three_pass_compile(WITH_IF_R, libraries=(IF_R_LIBRARY,))
        assert str(report.value) == "100"
        assert report.expansion_stable
        assert report.semantics_preserved

    def test_layout_metric_improves(self):
        report = three_pass_compile(
            WITH_CASE, libraries=(EXCLUSIVE_COND_LIBRARY, CASE_LIBRARY)
        )
        assert report.taken_jumps_after <= report.taken_jumps_before
        # Total transfers are conserved by pure layout changes.
        assert (
            report.taken_jumps_after + report.fallthroughs_after
            == report.taken_jumps_before + report.fallthroughs_before
        )

    def test_taken_ratio_properties(self):
        report = three_pass_compile(SIMPLE)
        assert 0.0 <= report.taken_ratio_after <= report.taken_ratio_before <= 1.0
