"""Tests for the block compiler and VM: semantics match the interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks.compiler import compile_program
from repro.blocks.vm import VM
from repro.core.errors import CompileError, VMError
from repro.scheme.datum import write_datum
from repro.scheme.pipeline import SchemeSystem
from repro.scheme.primitives import make_global_env
from repro.scheme.syntax import strip_all


def vm_run(source: str, profile: bool = False):
    system = SchemeSystem()
    program = system.compile(source)
    module = compile_program(program)
    vm = VM(module, make_global_env(), profile=profile)
    return vm.run(), vm


def vm_value(source: str) -> str:
    value, _ = vm_run(source)
    return write_datum(strip_all(value))


def interp_value(source: str) -> str:
    return write_datum(strip_all(SchemeSystem().run_source(source).value))


class TestBasicSemantics:
    @pytest.mark.parametrize(
        "source",
        [
            "42",
            "(+ 1 2)",
            "(if #t 'a 'b)",
            "(if #f 'a 'b)",
            "(define x 5) (* x x)",
            "((lambda (x y) (- x y)) 10 3)",
            "(let ([x 1]) (let ([y 2]) (+ x y)))",
            "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1))))) (fact 10)",
            "(begin 1 2 3)",
            "(define x 1) (set! x 9) x",
            "(cond [(= 1 2) 'a] [(= 1 1) 'b] [else 'c])",
            "(and 1 2)",
            "(or #f 7)",
            "'(a b c)",
            "(map (lambda (x) (* x x)) '(1 2 3))",
            "(apply + '(1 2 3))",
            "(let loop ([i 0] [acc 0]) (if (= i 10) acc (loop (+ i 1) (+ acc i))))",
            "((lambda args args) 1 2)",
            "(define (f) (define y 2) (+ y 1)) (f)",
        ],
    )
    def test_matches_interpreter(self, source):
        assert vm_value(source) == interp_value(source)

    def test_deep_tail_recursion_constant_stack(self):
        source = "(define (loop n) (if (= n 0) 'done (loop (- n 1)))) (loop 200000)"
        assert vm_value(source) == "done"

    def test_mutual_tail_calls(self):
        source = """
        (define (ping n) (if (= n 0) 'ping (pong (- n 1))))
        (define (pong n) (if (= n 0) 'pong (ping (- n 1))))
        (ping 100001)
        """
        assert vm_value(source) == "pong"

    def test_higher_order_reentry(self):
        # map (a primitive) calling back into a VM closure
        source = "(sort (map (lambda (x) (- 10 x)) '(1 5 3)) <)"
        assert vm_value(source) == "(5 7 9)"

    def test_closures_capture_environment(self):
        source = """
        (define (make-adder n) (lambda (x) (+ x n)))
        (define add3 (make-adder 3))
        (define add8 (make-adder 8))
        (list (add3 1) (add8 1))
        """
        assert vm_value(source) == "(4 9)"

    def test_empty_program(self):
        assert vm_value("") == "#<void>"

    def test_trailing_define(self):
        assert vm_value("(define x 1)") == "#<void>"


class TestErrors:
    def test_arity_error(self):
        with pytest.raises(VMError, match="expected 1"):
            vm_run("((lambda (x) x) 1 2)")

    def test_apply_non_procedure(self):
        with pytest.raises(VMError, match="non-procedure"):
            vm_run("(42 7)")

    def test_syntax_case_rejected_at_runtime(self):
        system = SchemeSystem()
        program = system.compile("(define-syntax (m s) (syntax-case s () [_ #'1])) (m)")
        # m expands away; put a syntax-case in runtime code via a trick:
        from repro.scheme.core_forms import Program, SyntaxCaseExpr, Const

        bad = Program([SyntaxCaseExpr(None, Const(None, 1), frozenset(), [])])
        with pytest.raises(CompileError):
            compile_program(bad)


class TestBlockStructure:
    def test_if_creates_branch_blocks(self):
        system = SchemeSystem()
        module = compile_program(system.compile("(define (f x) (if x 1 2)) (f #t)"))
        f = next(fn for fn in module.functions if fn.name == "f")
        assert len(f.blocks) >= 3
        labels = {b.label for b in f.blocks}
        assert "entry" in labels

    def test_disassemble_mentions_functions(self):
        system = SchemeSystem()
        module = compile_program(system.compile("(define (g) 1) (g)"))
        listing = module.disassemble()
        assert "function" in listing
        assert "g" in listing

    def test_structure_signature_stable(self):
        system = SchemeSystem()
        m1 = compile_program(system.compile("(define (f x) (if x 1 2)) (f #t)"))
        system2 = SchemeSystem()
        m2 = compile_program(system2.compile("(define (f x) (if x 1 2)) (f #t)"))
        assert m1.structure_signature() == m2.structure_signature()

    def test_successors(self):
        system = SchemeSystem()
        module = compile_program(system.compile("(define (f x) (if x 1 2)) (f #t)"))
        f = next(fn for fn in module.functions if fn.name == "f")
        entry = f.blocks[0]
        assert len(entry.successors()) == 2


class TestProfiling:
    def test_block_counts(self):
        source = "(define (f x) (if x 'a 'b)) (f #t) (f #t) (f #f)"
        _, vm = vm_run(source, profile=True)
        profile = vm.profile
        assert profile is not None
        # The entry block of f runs 3 times.
        system = SchemeSystem()
        module = compile_program(system.compile(source))
        f = next(fn for fn in module.functions if fn.name == "f")
        assert profile.block_counts[(f.index, "entry")] == 3

    def test_edge_counts_follow_branches(self):
        source = "(define (f x) (if x 'a 'b)) (f #t) (f #t) (f #f)"
        _, vm = vm_run(source, profile=True)
        edges = vm.profile.edge_counts
        then_edges = [c for (fn, src, dst), c in edges.items() if dst.startswith("then")]
        else_edges = [c for (fn, src, dst), c in edges.items() if dst.startswith("else")]
        assert sum(then_edges) == 2
        assert sum(else_edges) == 1

    def test_metric_counts_transfers(self):
        _, vm = vm_run("(define (f x) (if x 1 2)) (f #t)", profile=True)
        assert vm.profile.total_transfers > 0
        assert 0.0 <= vm.profile.taken_ratio <= 1.0

    def test_no_profile_by_default(self):
        _, vm = vm_run("(+ 1 2)")
        assert vm.profile is None


# -- differential property test: VM vs interpreter ---------------------------------

_arith_expr = st.recursive(
    st.integers(min_value=-50, max_value=50).map(str),
    lambda sub: st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
        lambda t: f"({t[0]} {t[1]} {t[2]})"
    ),
    max_leaves=12,
)


@given(_arith_expr)
@settings(max_examples=40, deadline=None)
def test_vm_interpreter_agree_on_arithmetic(expr):
    assert vm_value(expr) == interp_value(expr)


_cond_expr = st.recursive(
    st.sampled_from(["1", "2", "#t", "#f", "'x"]),
    lambda sub: st.tuples(sub, sub, sub).map(lambda t: f"(if {t[0]} {t[1]} {t[2]})"),
    max_leaves=10,
)


@given(_cond_expr)
@settings(max_examples=40, deadline=None)
def test_vm_interpreter_agree_on_conditionals(expr):
    assert vm_value(expr) == interp_value(expr)
