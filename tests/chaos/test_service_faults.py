"""Failure modes of the continuous-profiling service, injected
deterministically with :mod:`repro.testing.faults`.

The four scenarios the service must survive without losing or
double-counting profile data:

1. a checkpoint write torn by a crash (and the restart that reads it);
2. a client crash mid-flush, replayed from its spill log;
3. an aggregator killed and restarted from its last checkpoint while
   shippers retry;
4. deltas collected against changed source (stale fingerprints).
"""

import errno

from repro.core.counters import CounterSet
from repro.core.database import ProfileDatabase, source_fingerprint
from repro.core.policy import ProfilePolicy
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.service import ProfileAggregator, ProfileShipper
from repro.service.spill import SpillLog
from repro.testing.faults import (
    failing_profile_store,
    tear_spill_log,
    torn_profile_store,
)

POINTS = [
    ProfilePoint.for_location(SourceLocation("svc.ss", n, n + 1)) for n in range(3)
]


def _delta_frame(seq: int, count: int = 5, shipper: str = "w1") -> dict:
    return {
        "type": "delta",
        "v": 1,
        "shipper": shipper,
        "seq": seq,
        "dataset": "ds",
        "counts": {POINTS[0].key(): count},
    }


# -- 1: torn/failed checkpoint writes ------------------------------------------


def test_torn_checkpoint_degrades_and_ingest_continues(tmp_path):
    agg = ProfileAggregator(
        "127.0.0.1:0",
        checkpoint_path=str(tmp_path / "profile.json"),
        state_path=str(tmp_path / "state.json"),
        policy="warn",
    )
    agg.handle_frame(_delta_frame(1))
    with torn_profile_store(keep_bytes=24):
        assert agg.checkpoint() is False
    assert agg.metrics.counter("checkpoint_failures_total") >= 1
    assert any(
        "skipped" in entry.fallback for entry in agg.degradations.entries()
    )
    # Ingest is unaffected; the next (healthy) checkpoint heals the files.
    assert agg.handle_frame(_delta_frame(2))["status"] == "applied"
    assert agg.checkpoint() is True
    assert ProfileDatabase.load(str(tmp_path / "profile.json")).point_count() == 1


def test_restart_from_torn_state_is_a_cold_start_not_a_crash(tmp_path):
    state = str(tmp_path / "state.json")
    agg = ProfileAggregator("127.0.0.1:0", state_path=state)
    agg.handle_frame(_delta_frame(1))
    with torn_profile_store(keep_bytes=24):
        agg.checkpoint()  # leaves a torn remnant at `state`

    resumed = ProfileAggregator("127.0.0.1:0", state_path=state, policy="warn")
    assert resumed.total_counts() == 0
    assert any(
        "cold start" in entry.fallback for entry in resumed.degradations.entries()
    )
    # The cold aggregator re-applies the shipper's retry: no data lost as
    # long as the shipper's at-least-once delivery replays.
    assert resumed.handle_frame(_delta_frame(1))["status"] == "applied"
    assert resumed.total_counts() == 5


def test_disk_full_checkpoint_keeps_previous_checkpoint(tmp_path):
    checkpoint = str(tmp_path / "profile.json")
    agg = ProfileAggregator(
        "127.0.0.1:0", checkpoint_path=checkpoint, policy="warn"
    )
    agg.handle_frame(_delta_frame(1))
    assert agg.checkpoint() is True
    before = ProfileDatabase.load(checkpoint)
    agg.handle_frame(_delta_frame(2))
    with failing_profile_store(errno.ENOSPC):
        assert agg.checkpoint() is False
    after = ProfileDatabase.load(checkpoint)
    assert after.point_count() == before.point_count(), (
        "atomic store left the old complete checkpoint intact"
    )


# -- 2: client crash mid-flush, replay from spill ------------------------------


def test_client_crash_mid_spill_replays_complete_frames(tmp_path):
    spill_path = tmp_path / "spill.bin"
    counters = CounterSet(name="ds")

    # A shipper that never reaches the aggregator spills at close — the
    # "crash" tears the final append mid-frame.
    import socket as _socket

    with _socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        dead = f"127.0.0.1:{probe.getsockname()[1]}"
    crashing = ProfileShipper(
        counters,
        dead,
        policy=ProfilePolicy.IGNORE,
        spill_path=spill_path,
        backoff_base=30.0,
    )
    for i in range(3):
        counters.increment(POINTS[0], by=10)
        crashing.flush()
    crashing.close()  # spills 3 deltas of 10 counts each
    tear_spill_log(spill_path, drop_bytes=4)

    # The restarted worker reuses the spill path but gets a fresh shipper
    # id (a shipper id names one *incarnation*; the spilled frames carry
    # their original id, so their dedup is unaffected).
    with ProfileAggregator("127.0.0.1:0") as agg:
        fresh = CounterSet(name="ds")
        replayer = ProfileShipper(
            fresh,
            agg.address,
            policy=ProfilePolicy.WARN,
            spill_path=spill_path,
        )
        fresh.increment(POINTS[1], by=1)
        replayer.flush()
        replayer.close()
        # 2 complete spilled deltas (20) + the new delta (1); the torn
        # third delta is lost — and reported, not silently swallowed.
        assert agg.total_counts() == 21
    assert replayer.replayed_deltas == 2
    assert any(
        "torn tail" in entry.reason for entry in replayer.degradations.entries()
    )
    assert SpillLog(spill_path).size_bytes() == 0


def test_lost_ack_replay_is_deduplicated(tmp_path):
    """The ack was lost after apply: the spill still holds the delta, the
    replay must be recognized as a duplicate, not recounted."""
    spill_path = tmp_path / "spill.bin"
    with ProfileAggregator("127.0.0.1:0") as agg:
        counters = CounterSet(name="ds")
        shipper = ProfileShipper(counters, agg.address)
        counters.increment(POINTS[0], by=7)
        delta = shipper.flush()
        assert agg.total_counts() == 7
        shipper.close()
        # Simulate the crash-after-apply-before-ack: the delta is still in
        # the spill when the worker restarts.
        SpillLog(spill_path).append(delta.to_json_object())

        replayer = ProfileShipper(
            CounterSet(name="ds"),
            agg.address,
            spill_path=spill_path,
        )
        replayer.flush()
        replayer.close()
        assert agg.total_counts() == 7, "replay did not double-count"
        assert replayer.duplicate_deltas == 1


# -- 3: aggregator kill + restart ----------------------------------------------


def test_aggregator_kill_and_restart_loses_nothing_checkpointed(tmp_path):
    state = str(tmp_path / "state.json")
    spill_path = tmp_path / "spill.bin"
    counters = CounterSet(name="ds")

    first = ProfileAggregator("127.0.0.1:0", state_path=state).start()
    address = first.address
    shipper = ProfileShipper(
        counters,
        address,
        policy=ProfilePolicy.IGNORE,
        spill_path=spill_path,
        backoff_base=0.01,
        backoff_max=0.01,
    )
    counters.increment(POINTS[0], by=10)
    shipper.flush()
    first.checkpoint()

    # Kill: the process dies with state only as of the checkpoint.
    # (stop() would checkpoint again; a kill does not get that courtesy,
    # so shut the sockets down without the final checkpoint. A real kill
    # also severs established connections — drop the shipper's too, or a
    # zombie handler thread would keep acking into the dead state.)
    first._server.shutdown()
    first._server.server_close()
    first._stop.set()
    shipper._disconnect()

    # Deltas shipped while the aggregator is down spill locally.
    counters.increment(POINTS[1], by=4)
    shipper.flush()
    import time as _time

    _time.sleep(0.03)  # let the backoff gate reopen

    # Restart on the same port, resuming from the checkpointed state.
    second = ProfileAggregator(address, state_path=state).start()
    try:
        assert second.total_counts() == 10
        # The shipper's first retry trips over its stale pre-kill socket;
        # flushing through the backoff window reconnects and delivers.
        deadline = _time.monotonic() + 10.0
        while second.total_counts() < 14 and _time.monotonic() < deadline:
            shipper.flush()
            _time.sleep(0.02)
        shipper.close()
        assert second.total_counts() == 14, (
            "checkpointed counts + spilled replay, nothing lost or doubled"
        )
    finally:
        second.stop()


# -- 4: stale fingerprints over the wire ---------------------------------------


def test_stale_shipper_quarantined_while_healthy_fleet_merges():
    current = "(define version 2)\n"
    old = "(define version 1)\n"
    with ProfileAggregator(
        "127.0.0.1:0", sources={"app.ss": current}, policy="warn"
    ) as agg:
        healthy_counters = CounterSet(name="app")
        healthy_counters.increment(POINTS[0], by=6)
        healthy = ProfileShipper(
            healthy_counters,
            agg.address,
            fingerprints={"app.ss": source_fingerprint(current)},
        )
        stale_counters = CounterSet(name="app")
        stale_counters.increment(POINTS[0], by=100)
        stale = ProfileShipper(
            stale_counters,
            agg.address,
            fingerprints={"app.ss": source_fingerprint(old)},
            policy=ProfilePolicy.WARN,
        )
        healthy.flush()
        stale.flush()
        healthy.close()
        stale.close()

        assert agg.total_counts() == 6, "stale worker's counts never merged"
        assert len(agg.quarantine.stale()) == 1
        assert stale.quarantined_deltas == 1
        assert any(
            "stale" in entry.reason for entry in stale.degradations.entries()
        )
