"""Fleet chaos: shard kills must lose nothing; v1 clients must keep working.

The acceptance property for the sharded service is exactly the one the
single aggregator already guarantees, lifted to the fleet: every count a
worker records is reflected at the root exactly once, no matter which
shard dies when.
"""

import time

import pytest

from repro.core.counters import CounterSet
from repro.core.policy import ProfilePolicy
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.service import ProfileShipper
from repro.service.fleet import FleetShipper, FleetSupervisor

POINTS = [
    ProfilePoint.for_location(SourceLocation("c.ss", n, n + 1))
    for n in range(16)
]


def _pump(counters, by=1):
    total = 0
    for point in POINTS:
        counters.increment(point, by=by)
        total += by
    return total


def _await_root_total(fleet, expected, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if fleet.root.total_counts() == expected:
            return True
        # Nudge the shards: in-process mode lets us checkpoint directly,
        # which cuts + flushes their uplink deltas without waiting for
        # the housekeeping interval.
        for slot in fleet._slots.values():
            if slot.aggregator is not None:
                try:
                    slot.aggregator.checkpoint()
                except Exception:
                    pass
        time.sleep(0.1)
    return fleet.root.total_counts() == expected


def test_kill_one_shard_loses_zero_counts(tmp_path):
    """The headline failover drill: a shard dies mid-stream with unsent
    state, restarts from its WAL, and the root converges on the exact
    total — nothing lost, nothing counted twice."""
    with FleetSupervisor(
        3, tmp_path / "fleet", in_process=True, checkpoint_interval=60.0
    ) as fleet:
        counters = CounterSet(name="ds")
        shipper = FleetShipper(
            counters,
            fleet.shard_addresses(),
            root=fleet.root.address,
            policy=ProfilePolicy.IGNORE,
            spill_dir=tmp_path / "spill",
            backoff_base=0.05,
        )
        expected = _pump(counters, by=5)
        shipper.flush()
        assert _await_root_total(fleet, expected), "pre-kill baseline"

        # Crash a shard with counts it has NOT yet uplinked.
        expected += _pump(counters, by=3)
        shipper.flush()  # lands on the shards, not yet at the root
        fleet.kill_shard("1")

        # Keep shipping while the shard is down: its slice buffers
        # (queue + spill) while the other shards flow normally.
        expected += _pump(counters, by=2)
        shipper.flush()

        fleet.restart_shard("1")
        assert shipper.re_resolve() == ["1"], "new address picked up"

        # Drain the buffered slice (cut deltas sit in the per-shard
        # queues, not in pending_counts) and let every shard uplink.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and any(
            sub._queue for sub in shipper.shippers.values()
        ):
            shipper.flush()
            time.sleep(0.05)
        assert _await_root_total(fleet, expected), (
            f"root={fleet.root.total_counts()} expected={expected}"
        )
        assert shipper.dropped_deltas == 0
        shipper.close()


def test_killed_shard_resends_are_deduplicated(tmp_path):
    """A restarted shard re-uplinks everything it cannot prove was sent;
    the root's ledger must absorb the overlap."""
    with FleetSupervisor(
        2, tmp_path / "fleet", in_process=True, checkpoint_interval=60.0
    ) as fleet:
        counters = CounterSet(name="ds")
        shipper = FleetShipper(
            counters, fleet.shard_addresses(), root=fleet.root.address
        )
        expected = _pump(counters, by=7)
        shipper.flush()
        assert _await_root_total(fleet, expected)

        # Kill + restart BOTH shards after they uplinked. Their restored
        # uplink cuts start from the persisted baselines, so the resends
        # carry nothing new — the root total must not move.
        for shard_id in ("0", "1"):
            fleet.kill_shard(shard_id)
            fleet.restart_shard(shard_id)
        for slot in fleet._slots.values():
            assert slot.aggregator.checkpoint()
        assert fleet.root.total_counts() == expected
        shipper.close()


def test_v1_client_interoperates_with_the_fleet_root(tmp_path):
    """A pre-v2 single-aggregator worker pointed straight at the root
    (no hello, lone uncompressed deltas) keeps working alongside the
    sharded pipeline."""
    with FleetSupervisor(
        2, tmp_path / "fleet", in_process=True, checkpoint_interval=60.0
    ) as fleet:
        fleet_counters = CounterSet(name="ds")
        fleet_shipper = FleetShipper(
            fleet_counters, fleet.shard_addresses(), root=fleet.root.address
        )
        fleet_total = _pump(fleet_counters, by=4)
        fleet_shipper.flush()
        assert _await_root_total(fleet, fleet_total)

        legacy_counters = CounterSet(name="legacy-ds")
        with ProfileShipper(
            legacy_counters,
            fleet.root.address,
            negotiate=False,  # v1: no hello frame, no batching
            shipper_id="legacy-worker",
        ) as legacy:
            legacy_total = _pump(legacy_counters, by=6)
            legacy.flush()
            assert legacy.shipped_counts == legacy_total
            assert legacy._features == set()

        assert fleet.root.total_counts() == fleet_total + legacy_total
        stats = fleet.root.handle_frame({"type": "stats"})
        assert "legacy-worker" in stats["shippers"]
        assert set(stats["datasets"]) >= {"ds", "legacy-ds"}
        fleet_shipper.close()


@pytest.mark.slow
def test_subprocess_shard_kill_and_monitor_restart(tmp_path):
    """The real thing: shards as OS processes, SIGKILL one, and let the
    monitor thread bring it back with the same identity."""
    with FleetSupervisor(
        2,
        tmp_path / "fleet",
        in_process=False,
        checkpoint_interval=0.3,
        spawn_timeout=30.0,
    ) as fleet:
        assert fleet.wait_all_up(timeout=30.0)
        counters = CounterSet(name="ds")
        shipper = FleetShipper(
            counters,
            fleet.shard_addresses(),
            root=fleet.root.address,
            policy=ProfilePolicy.IGNORE,
            backoff_base=0.05,
        )
        expected = _pump(counters, by=9)
        shipper.flush()
        deadline = time.monotonic() + 20.0
        while (
            fleet.root.total_counts() < expected
            and time.monotonic() < deadline
        ):
            time.sleep(0.1)
        assert fleet.root.total_counts() == expected

        old_address = fleet.shard_addresses()["0"]
        fleet.kill_shard("0")
        expected += _pump(counters, by=2)

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            shipper.flush()  # re-resolves once the monitor respawned it
            if (
                fleet.shard_addresses().get("0") not in (None, old_address)
                and not shipper.pending_counts()
                and fleet.root.total_counts() == expected
            ):
                break
            time.sleep(0.2)
        assert fleet.shard_addresses()["0"] != old_address, "shard respawned"
        assert fleet.root.total_counts() == expected, "no loss, no double"
        assert fleet._slots["0"].restarts == 1
        shipper.close()
