"""The fault injectors themselves: each produces exactly the failure it
claims, and the persistence layer reacts the way the docstrings promise."""

import errno
import json
import threading

import pytest

from repro.core.counters import CounterSet
from repro.core.database import ProfileDatabase
from repro.core.errors import ProfileFormatError
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.testing.faults import (
    corrupt_profile_file,
    failing_profile_store,
    profile_lock_contention,
    torn_profile_store,
)


def _point(n: int) -> ProfilePoint:
    return ProfilePoint.for_location(SourceLocation("f.ss", n, n + 1))


def _db() -> ProfileDatabase:
    counters = CounterSet()
    counters.increment(_point(1), by=5)
    counters.increment(_point(2), by=10)
    db = ProfileDatabase()
    db.record_counters(counters)
    return db


def test_torn_store_leaves_truncated_file_and_raises(tmp_path):
    path = str(tmp_path / "p.json")
    with torn_profile_store(keep_bytes=16):
        with pytest.raises(OSError) as excinfo:
            _db().store(path)
        assert excinfo.value.errno == errno.EIO
    with open(path, "r", encoding="utf-8") as handle:
        remnant = handle.read()
    assert len(remnant) == 16
    with pytest.raises(ProfileFormatError):
        ProfileDatabase.load(path)


def test_failing_store_is_clean_and_preserves_previous_profile(tmp_path):
    path = str(tmp_path / "p.json")
    _db().store(path)
    with failing_profile_store(errno.ENOSPC):
        with pytest.raises(OSError) as excinfo:
            _db().store(path)
        assert excinfo.value.errno == errno.ENOSPC
    # The well-behaved failure: the old complete profile is intact.
    loaded = ProfileDatabase.load(path)
    assert loaded.query(_point(2)) == pytest.approx(1.0)


def test_fault_injection_is_scoped_to_the_context(tmp_path):
    path = str(tmp_path / "p.json")
    with failing_profile_store():
        pass
    _db().store(path)  # no fault outside the context
    assert ProfileDatabase.load(path).has_data()


def test_lock_contention_blocks_store_until_release(tmp_path):
    path = str(tmp_path / "p.json")
    done = threading.Event()

    def store_in_background():
        _db().store(path)
        done.set()

    with profile_lock_contention(path) as release:
        writer = threading.Thread(target=store_in_background, daemon=True)
        writer.start()
        # The store must be waiting behind the held advisory lock.
        assert not done.wait(timeout=0.3)
        release.set()
        assert done.wait(timeout=10.0)
        writer.join(timeout=10.0)
    # The contended store completed and wrote a valid profile.
    assert ProfileDatabase.load(path).has_data()


@pytest.mark.parametrize("mode", ["truncate", "garbage"])
def test_file_level_corruption_always_raises(tmp_path, mode):
    path = str(tmp_path / "p.json")
    _db().store(path)
    corrupt_profile_file(path, mode)
    with pytest.raises(ProfileFormatError):
        ProfileDatabase.load(path)
    with pytest.raises(ProfileFormatError):
        ProfileDatabase.load(path, on_error="skip")


def test_dataset_level_corruption_is_quarantined_by_lenient_load(tmp_path):
    path = str(tmp_path / "p.json")
    _db().store(path)
    corrupt_profile_file(path, "bad-dataset")
    with pytest.raises(ProfileFormatError):
        ProfileDatabase.load(path)
    db = ProfileDatabase.load(path, on_error="skip")
    assert not db.has_data()
    assert len(db.quarantine.malformed()) == 1
    # The valid JSON envelope survived; only the data set was dropped.
    with open(path, "r", encoding="utf-8") as handle:
        assert json.load(handle)["format"] == "pgmp-profile"


def test_corrupt_profile_file_rejects_unknown_mode(tmp_path):
    path = str(tmp_path / "p.json")
    _db().store(path)
    with pytest.raises(ValueError):
        corrupt_profile_file(path, "meteor-strike")
