"""With faults active, every optimizer still produces correct output —
degraded, with recorded reasons, never a bare traceback."""

import errno

import pytest

from repro.blocks.workflow import three_pass_compile
from repro.casestudies.exclusive_cond import make_case_system
from repro.casestudies.if_r import IF_R_LIBRARY, make_if_r_system
from repro.core.api import profile_query, using_profile_information
from repro.core.database import ProfileDatabase
from repro.core.errors import MissingProfileError, StepBudgetExceeded
from repro.core.policy import DegradationLog, ProfilePolicy, using_profile_policy
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.testing.faults import corrupt_profile_file, failing_profile_store

IF_R_PROGRAM = """
(define (classify n)
  (if-r (even? n) 'even 'odd))
(classify 4)
"""

CASE_PROGRAM = """
(define (kind x)
  (case x
    [(1 2 3) 'small]
    [(4 5 6) 'medium]
    [else 'large]))
(kind 5)
"""


def test_if_r_survives_corrupt_profile_file(tmp_path):
    # Collect and store a real profile, then corrupt it on disk.
    collector = make_if_r_system()
    collector.profile_run(IF_R_PROGRAM, "p.ss")
    path = str(tmp_path / "p.json")
    collector.store_profile(path)
    corrupt_profile_file(path, "garbage")

    system = make_if_r_system()  # default policy: warn
    system.load_profile(path)
    result = system.run_source(IF_R_PROGRAM, "p.ss")
    assert str(result.value) == "even"
    assert system.degradations, "the degraded load must be recorded"
    assert any("load-profile" in str(d) for d in system.degradations)


def test_if_r_quarantines_stale_profile(tmp_path):
    collector = make_if_r_system()
    collector.profile_run(IF_R_PROGRAM, "p.ss")
    path = str(tmp_path / "p.json")
    collector.store_profile(path)

    edited = IF_R_PROGRAM.replace("(classify 4)", "(classify 7)")
    system = make_if_r_system()
    system.load_profile(path, sources={"p.ss": edited})
    result = system.run_source(edited, "p.ss")
    assert str(result.value) == "odd"
    assert any("stale" in str(d) for d in system.degradations)


def test_case_survives_dataset_corruption(tmp_path):
    collector = make_case_system()
    collector.profile_run(CASE_PROGRAM, "c.ss")
    path = str(tmp_path / "c.json")
    collector.store_profile(path)
    corrupt_profile_file(path, "bad-dataset")

    system = make_case_system()
    system.load_profile(path)
    result = system.run_source(CASE_PROGRAM, "c.ss")
    assert str(result.value) == "medium"
    assert any("quarantined" in str(d) for d in system.degradations)


def test_strict_policy_still_raises(tmp_path):
    collector = make_if_r_system()
    collector.profile_run(IF_R_PROGRAM, "p.ss")
    path = str(tmp_path / "p.json")
    collector.store_profile(path)
    corrupt_profile_file(path, "truncate")

    system = make_if_r_system(policy="strict")
    with pytest.raises(Exception) as excinfo:
        system.load_profile(path)
    assert "ProfileFormat" in type(excinfo.value).__name__


def test_profile_query_degrades_to_zero_under_warn(capsys):
    point = ProfilePoint.for_location(SourceLocation("f.ss", 1, 2))
    log = DegradationLog()
    with using_profile_information(ProfileDatabase()):
        with using_profile_policy(ProfilePolicy.WARN, log):
            assert profile_query(point, strict=True) == 0.0
        assert len(log) == 1
        assert "weight 0.0" in str(log.entries()[0])
        assert "pgmp: warning" in capsys.readouterr().err
        # strict scope: same query raises
        with using_profile_policy(ProfilePolicy.STRICT):
            with pytest.raises(MissingProfileError):
                profile_query(point, strict=True)


def test_three_pass_budget_exhaustion_degrades_not_hangs():
    with pytest.raises(StepBudgetExceeded):
        three_pass_compile(IF_R_PROGRAM, libraries=(IF_R_LIBRARY,), pass_budget=5)
    report = three_pass_compile(
        IF_R_PROGRAM, libraries=(IF_R_LIBRARY,), pass_budget=5, policy="warn"
    )
    assert str(report.value) == "even"
    assert report.rung in ("source-only", "unoptimized")
    assert report.degradations


def test_three_pass_survives_unwritable_checkpoints(tmp_path):
    with failing_profile_store(errno.ENOSPC):
        report = three_pass_compile(
            IF_R_PROGRAM,
            libraries=(IF_R_LIBRARY,),
            checkpoint_dir=str(tmp_path / "ckpt"),
            policy="warn",
        )
    # The checkpoint is a cache: losing it costs resumability, not the run.
    assert report.rung == "three-pass"
    assert str(report.value) == "even"
    assert report.expansion_stable
    assert any("checkpoint" in d for d in report.degradations)


def test_three_pass_full_chain_reaches_unoptimized():
    report = three_pass_compile(
        IF_R_PROGRAM, libraries=(IF_R_LIBRARY,), pass_budget=1, policy="ignore"
    )
    assert str(report.value) == "even"
    assert report.rung == "unoptimized"
    assert report.semantics_preserved
    # Both rungs of the fallback are recorded, in order.
    assert "three-pass" in report.degradations[0]
    assert "source-only" in report.degradations[1]
