"""A three-pass run killed partway through resumes from its checkpoints
and still reaches a stable, semantics-preserving result."""

import pytest

import repro.blocks.workflow as workflow_mod
from repro.blocks.workflow import ThreePassCheckpoint, three_pass_compile
from repro.casestudies.if_r import IF_R_LIBRARY

SRC = """
(define (classify n)
  (if-r (even? n) 'even 'odd))
(define (loop i acc)
  (if (= i 0) acc (loop (- i 1) (cons (classify i) acc))))
(length (loop 30 '()))
"""


def _run(checkpoint_dir, source=SRC, **kwargs):
    return three_pass_compile(
        source, libraries=(IF_R_LIBRARY,), checkpoint_dir=checkpoint_dir, **kwargs
    )


def test_clean_run_then_full_resume(tmp_path):
    first = _run(tmp_path)
    assert first.resumed == ()
    assert first.expansion_stable and first.semantics_preserved

    second = _run(tmp_path)
    assert second.resumed == ("pass1", "pass2")
    assert second.expansion_stable and second.block_structure_stable
    assert second.semantics_preserved
    assert str(second.value) == str(first.value)


def test_resume_false_reruns_everything(tmp_path):
    _run(tmp_path)
    report = _run(tmp_path, resume=False)
    assert report.resumed == ()
    assert report.expansion_stable


def test_killed_after_pass1_resumes_pass1(tmp_path, monkeypatch):
    # Simulate a crash at the start of pass 2: pass 1 has already been
    # checkpointed, the block compiler never runs.
    def crash(*args, **kwargs):
        raise RuntimeError("killed")

    monkeypatch.setattr(workflow_mod, "compile_program", crash)
    with pytest.raises(RuntimeError):
        _run(tmp_path)
    monkeypatch.undo()

    report = _run(tmp_path)
    assert report.resumed == ("pass1",)
    assert report.rung == "three-pass"
    assert report.expansion_stable and report.semantics_preserved


def test_killed_during_pass3_resumes_both_passes(tmp_path, monkeypatch):
    # Simulate a crash after the pass-2 checkpoint: layout never happens.
    def crash(*args, **kwargs):
        raise RuntimeError("killed")

    monkeypatch.setattr(workflow_mod, "optimize_layout", crash)
    with pytest.raises(RuntimeError):
        _run(tmp_path)
    monkeypatch.undo()

    report = _run(tmp_path)
    assert report.resumed == ("pass1", "pass2")
    assert report.expansion_stable and report.block_structure_stable
    assert report.semantics_preserved


def test_checkpoint_for_different_source_is_ignored(tmp_path):
    _run(tmp_path)
    edited = SRC.replace("(loop 30 '())", "(loop 12 '())")
    report = _run(tmp_path, source=edited)
    assert report.resumed == ()
    assert str(report.value) == "12"
    assert report.expansion_stable


def test_torn_state_file_self_heals(tmp_path):
    _run(tmp_path)
    state = tmp_path / ThreePassCheckpoint.STATE_FILE
    state.write_text(state.read_text()[: len(state.read_text()) // 3])
    report = _run(tmp_path)
    assert report.resumed == ()
    assert report.expansion_stable and report.semantics_preserved


def test_stale_pass2_signature_forces_vm_rerun(tmp_path):
    _run(tmp_path)
    # Doctor the recorded signature: the block profile no longer matches
    # the current module structure and must not be trusted.
    import json

    state = tmp_path / ThreePassCheckpoint.STATE_FILE
    obj = json.loads(state.read_text())
    obj["signature"] = "0" * 16
    state.write_text(json.dumps(obj))
    report = _run(tmp_path)
    assert report.resumed == ("pass1",)
    assert report.expansion_stable and report.block_structure_stable
