"""Chaos: the rollout guard under injected artifact and canary faults.

The acceptance story for the guarded swap path: a *misbehaving*
artifact — one that loads, parses, and self-checks clean but computes
the wrong answer — is either (a) blocked at the canary, or (b) if it
slips past the canary, detected by the post-swap watch window, rolled
back, and its profile snapshot quarantined, while the service keeps
serving byte-identical results throughout. Repeated failures open the
recompile circuit breaker; a half-open probe later closes it.
"""

import pytest

from repro.core.counters import CounterSet
from repro.core.database import ProfileDatabase
from repro.core.policy import StepBudget
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.scheme.datum import write_datum
from repro.scheme.pipeline import SchemeSystem
from repro.service import (
    CircuitBreaker,
    GenerationJournal,
    RecompileController,
    RolloutGuard,
    ServiceMetrics,
    scheme_canary,
    scheme_recompiler,
)
from repro.testing.faults import (
    crash_after_journal_commit,
    failing_canary,
    poison_compiled_program,
    poisoned_recompiles,
)

PROGRAM = """
(define (classify n)
  (if (= (modulo n 2) 0) 'even 'odd))
(define (run n acc)
  (if (= n 0) acc (run (- n 1) (cons (classify n) acc))))
(length (run 24 '()))
"""


def _point(n: int) -> ProfilePoint:
    return ProfilePoint.for_location(SourceLocation("chaos.ss", n, n + 1))


def _db(counts: dict) -> ProfileDatabase:
    counters = CounterSet(name="chaos-rollout")
    for n, count in counts.items():
        counters.increment(_point(n), by=count)
    db = ProfileDatabase()
    db.record_counters(counters)
    return db


def _serve(system: SchemeSystem, controller: RecompileController) -> tuple:
    """What production would see: run the deployed artifact compiled."""
    result = system.run(
        controller.artifact(), backend="compile", budget=StepBudget(1_000_000)
    )
    return (write_datum(result.value), result.output)


def _stack(metrics=None, journal=None, **guard_kwargs):
    metrics = metrics if metrics is not None else ServiceMetrics()
    system = SchemeSystem(policy="warn")
    guard = RolloutGuard(
        validator=scheme_canary(system),
        journal=journal,
        metrics=metrics,
        **guard_kwargs,
    )
    controller = RecompileController(
        scheme_recompiler(system, PROGRAM, "chaos.ss"),
        threshold=0.05,
        metrics=metrics,
        guard=guard,
    )
    return system, guard, controller, metrics


def test_misbehaving_artifact_is_blocked_at_the_canary():
    system, guard, controller, metrics = _stack()
    assert controller.maybe_recompile(_db({1: 10})).recompiled
    before = _serve(system, controller)

    with poisoned_recompiles(controller, value=424242):
        decision = controller.maybe_recompile(_db({2: 10}))

    assert not decision.recompiled
    assert decision.reason.startswith("canary failed")
    assert "diverged" in decision.reason
    assert metrics.counter("canary_failures_total") == 1
    assert metrics.counter("rollbacks_total") == 0
    assert controller.generation == 1
    # The serving path never saw the bad candidate.
    assert _serve(system, controller) == before
    assert before[0] == "24"


def test_corrupt_artifact_mid_swap_is_rejected_structurally():
    """An artifact corrupted between codegen and swap fails self_check
    (and so the canary battery) rather than going live."""
    system, guard, controller, metrics = _stack()
    real = controller._recompile

    def corrupting(db):
        program = real(db)
        artifact = program.artifacts.get("plain")
        if artifact is None:
            system.run(program, backend="compile")
            artifact = program.artifacts["plain"]
        # Bit rot in the generated module: no longer valid Python.
        artifact.python_source = artifact.python_source[:-10] + "\ndef ):\n"
        return program

    controller._recompile = corrupting
    try:
        decision = controller.maybe_recompile(_db({1: 10}))
    finally:
        controller._recompile = real
    assert not decision.recompiled
    assert decision.reason.startswith("canary failed")
    assert "does not parse" in decision.reason
    assert controller.artifact() is None


def test_deterministic_canary_failures_drive_the_breaker_cycle():
    """failures -> open (backoff) -> half-open probe -> closed."""

    class Clock:
        now = 1_000.0

        def __call__(self) -> float:
            return self.now

    clock = Clock()
    metrics = ServiceMetrics()
    breaker = CircuitBreaker(
        failure_threshold=2, backoff_base=30.0, clock=clock, metrics=metrics
    )
    system, guard, controller, metrics = _stack(
        metrics=metrics, breaker=breaker
    )
    assert controller.maybe_recompile(_db({1: 10})).recompiled
    drifted = _db({2: 10})

    with failing_canary(guard):
        first = controller.maybe_recompile(drifted)
        second = controller.maybe_recompile(drifted)
    assert first.reason.startswith("canary failed")
    assert second.reason.startswith("canary failed")
    assert guard.breaker.state == "open"
    assert metrics.counter("breaker_opens_total") == 1
    assert metrics.gauge("breaker_state") == 1

    # While open, the controller refuses to recompile at all.
    held = controller.maybe_recompile(drifted)
    assert not held.recompiled
    assert held.reason.startswith("circuit breaker open")

    # Backoff elapses; the half-open probe recompiles, still fails.
    clock.now += 30.0
    with failing_canary(guard):
        probe = controller.maybe_recompile(drifted)
    assert probe.reason.startswith("canary failed")
    assert guard.breaker.state == "open", "failed probe reopens"
    assert metrics.counter("breaker_opens_total") == 2

    # Doubled backoff elapses; a healthy probe closes the breaker.
    clock.now += 60.0
    healed = controller.maybe_recompile(drifted)
    assert healed.recompiled
    assert guard.breaker.state == "closed"
    assert metrics.gauge("breaker_state") == 0
    assert controller.generation == 2


def test_crash_between_journal_write_and_swap_resumes_journaled(tmp_path):
    journal_dir = tmp_path / "journal"
    system, guard, controller, metrics = _stack(
        journal=GenerationJournal(journal_dir)
    )
    assert controller.maybe_recompile(_db({1: 10})).recompiled
    expected = _serve(system, controller)

    with crash_after_journal_commit(guard):
        with pytest.raises(RuntimeError, match="injected fault"):
            controller.maybe_recompile(_db({2: 10}))
    # The journal got generation 2; this process never swapped it.
    assert controller.generation == 1
    live = GenerationJournal(journal_dir).live()
    assert live is not None and live.generation == 2

    # "Restart": fresh system + controller over the same journal.
    system2, guard2, restarted, _ = _stack(
        journal=GenerationJournal(journal_dir)
    )
    decision = restarted.resume_from_journal()
    assert decision is not None
    assert decision.reason == "resumed generation 2 from journal"
    assert restarted.generation == 2
    # The resumed generation serves, and serves the right answer —
    # deterministic re-expansion from the journaled snapshot.
    assert _serve(system2, restarted) == expected
    # Its baseline matches the journaled profile: no spurious recompile.
    assert restarted.maybe_recompile(_db({2: 10})).reason == (
        "drift within threshold"
    )


def test_quarantine_prevents_recompile_ping_pong():
    system, guard, controller, metrics = _stack()
    assert controller.maybe_recompile(_db({1: 10})).recompiled
    drifted = _db({2: 10})
    assert controller.maybe_recompile(drifted).recompiled
    assert controller.rollback(reason="post-swap regression").recompiled
    assert metrics.counter("rollbacks_total") == 1

    # The merged profile is still drifted vs the restored baseline; the
    # quarantine — not luck — is what stops the bad recompile recurring.
    for _ in range(3):
        decision = controller.maybe_recompile(drifted)
        assert not decision.recompiled
        assert "quarantined" in decision.reason
    assert metrics.counter("rollbacks_total") == 1
    live = guard.journal.live()
    assert live is not None and live.generation == 1

    # A genuinely new profile shape is not held hostage.
    moved_on = controller.maybe_recompile(_db({3: 10}))
    assert moved_on.recompiled


def test_end_to_end_bad_artifact_past_canary_rolls_back(tmp_path):
    """The full acceptance path: injected past the canary, detected in
    the watch window, rolled back, quarantined, serving byte-identical
    results."""
    metrics = ServiceMetrics()
    system, guard, controller, metrics = _stack(
        metrics=metrics,
        journal=GenerationJournal(tmp_path / "journal"),
        rollback_window=300.0,
        error_budget=2,
    )
    assert controller.maybe_recompile(_db({1: 10})).recompiled
    golden = _serve(system, controller)
    assert golden[0] == "24"

    # Generation 2 is healthy at canary time...
    drifted = _db({1: 10, 2: 40})
    assert controller.maybe_recompile(drifted).recompiled
    assert controller.generation == 2
    assert metrics.counter("rollouts_total") == 2
    assert guard.watching
    # ...then starts misbehaving only in production (the failure class
    # a pre-swap gate cannot catch).
    poison_compiled_program(controller.artifact(), value=-1)
    assert _serve(system, controller)[0] == "-1", "regression is live"

    # The controller's watch window sees the errors and rolls back.
    assert controller.observe_health(False) is None
    decision = controller.observe_health(False)
    assert decision is not None and decision.recompiled
    assert decision.generation == 1
    assert "error budget" in decision.reason

    # Back on generation 1: byte-identical to the pre-swap outputs.
    assert _serve(system, controller) == golden
    assert metrics.counter("rollbacks_total") == 1
    assert metrics.counter("canary_failures_total") == 0
    assert metrics.gauge("rollout_generation") == 1

    # The offending snapshot is quarantined: the still-drifted profile
    # cannot ping-pong the same bad recompile back in.
    held = controller.maybe_recompile(drifted)
    assert not held.recompiled and "quarantined" in held.reason
    journal = guard.journal
    assert [r.status for r in journal.generations()] == ["live", "rolled-back"]
    assert journal.quarantine_entries()[0]["generation"] == 2
    # And the guard keeps serving the journaled truth across a restart.
    system3, guard3, resumed, _ = _stack(
        journal=GenerationJournal(tmp_path / "journal")
    )
    resumed.resume_from_journal()
    assert resumed.generation == 1
    assert _serve(system3, resumed) == golden
