"""Unit tests for the profile database and its persistence format."""

import io
import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.counters import CounterSet
from repro.core.database import ProfileDatabase, merge_databases
from repro.core.errors import MissingProfileError, ProfileFormatError
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.core.weights import WeightTable


def _point(n: int) -> ProfilePoint:
    return ProfilePoint.for_location(SourceLocation("f.ss", n, n + 1))


def _counters(**by_index) -> CounterSet:
    counters = CounterSet()
    for name, count in by_index.items():
        counters.increment(_point(int(name[1:])), by=count)
    return counters


def test_fresh_database_is_empty():
    db = ProfileDatabase()
    assert db.dataset_count == 0
    assert not db.has_data()
    assert db.query(_point(1)) == 0.0


def test_record_counters_normalizes():
    db = ProfileDatabase()
    db.record_counters(_counters(p1=5, p2=10))
    assert db.query(_point(1)) == pytest.approx(0.5)
    assert db.query(_point(2)) == pytest.approx(1.0)
    assert db.has_data()


def test_query_strict_raises_on_missing():
    db = ProfileDatabase()
    db.record_counters(_counters(p1=5))
    with pytest.raises(MissingProfileError):
        db.query(_point(99), strict=True)
    assert db.query(_point(1), strict=True) == 1.0


def test_merge_across_datasets_matches_figure_3():
    db = ProfileDatabase()
    db.record_counters(_counters(p1=5, p2=10))
    db.record_counters(_counters(p1=100, p2=10))
    assert db.query(_point(1)) == pytest.approx(0.75)
    assert db.query(_point(2)) == pytest.approx(0.55)


def test_merged_is_cached_and_invalidated():
    db = ProfileDatabase()
    db.record_counters(_counters(p1=1))
    first = db.merged()
    assert db.merged() is first
    db.record_counters(_counters(p2=1))
    assert db.merged() is not first


def test_clear():
    db = ProfileDatabase()
    db.record_counters(_counters(p1=1))
    db.clear()
    assert db.dataset_count == 0
    assert not db.has_data()


def test_store_load_round_trip(tmp_path):
    db = ProfileDatabase(name="mine")
    db.record_counters(_counters(p1=5, p2=10), importance=2.0)
    db.record_counters(_counters(p1=100, p2=10))
    path = tmp_path / "profile.json"
    db.store(path)
    loaded = ProfileDatabase.load(path)
    assert loaded.name == "mine"
    assert loaded.dataset_count == 2
    for n in (1, 2):
        assert loaded.query(_point(n)) == pytest.approx(db.query(_point(n)))


def test_store_load_via_file_objects():
    db = ProfileDatabase()
    db.record_counters(_counters(p1=3))
    buffer = io.StringIO()
    db.store(buffer)
    loaded = ProfileDatabase.load(io.StringIO(buffer.getvalue()))
    assert loaded.query(_point(1)) == 1.0


def test_load_into_merges(tmp_path):
    db1 = ProfileDatabase()
    db1.record_counters(_counters(p1=5, p2=10))
    path = tmp_path / "p.json"
    db1.store(path)

    db2 = ProfileDatabase()
    db2.record_counters(_counters(p1=100, p2=10))
    db2.load_into(path)
    assert db2.dataset_count == 2
    assert db2.query(_point(1)) == pytest.approx(0.75)


def test_load_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{ not json")
    with pytest.raises(ProfileFormatError):
        ProfileDatabase.load(path)


def test_load_rejects_wrong_format():
    with pytest.raises(ProfileFormatError):
        ProfileDatabase.from_json_object({"format": "something-else"})
    with pytest.raises(ProfileFormatError):
        ProfileDatabase.from_json_object([1, 2, 3])
    with pytest.raises(ProfileFormatError):
        ProfileDatabase.from_json_object(
            {"format": "pgmp-profile", "version": 999, "datasets": []}
        )


def test_load_rejects_malformed_datasets():
    base = {"format": "pgmp-profile", "version": 1}
    with pytest.raises(ProfileFormatError):
        ProfileDatabase.from_json_object({**base, "datasets": "nope"})
    with pytest.raises(ProfileFormatError):
        ProfileDatabase.from_json_object({**base, "datasets": [{"nope": 1}]})
    with pytest.raises(ProfileFormatError):
        ProfileDatabase.from_json_object({**base, "datasets": [{"weights": 5}]})


def test_stored_format_is_versioned_json(tmp_path):
    db = ProfileDatabase()
    db.record_counters(_counters(p1=1))
    path = tmp_path / "p.json"
    db.store(path)
    payload = json.loads(path.read_text())
    assert payload["format"] == "pgmp-profile"
    assert payload["version"] == 2
    assert isinstance(payload["datasets"], list)


def test_merge_databases():
    a = ProfileDatabase()
    a.record_counters(_counters(p1=5, p2=10))
    b = ProfileDatabase()
    b.record_counters(_counters(p1=100, p2=10))
    merged = merge_databases([a, b])
    assert merged.dataset_count == 2
    assert merged.query(_point(1)) == pytest.approx(0.75)


def test_record_weights_directly():
    db = ProfileDatabase()
    db.record_weights(WeightTable({_point(1): 0.5}))
    assert db.query(_point(1)) == 0.5


def test_point_count_and_repr():
    db = ProfileDatabase(name="x")
    db.record_counters(_counters(p1=1, p2=2, p3=3))
    assert db.point_count() == 3
    assert "x" in repr(db)


@given(
    st.lists(
        st.dictionaries(
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=1, max_value=1000),
            min_size=1,
            max_size=10,
        ),
        min_size=1,
        max_size=4,
    )
)
def test_store_load_round_trip_property(tmp_datasets):
    db = ProfileDatabase()
    for counts in tmp_datasets:
        counters = CounterSet()
        for index, count in counts.items():
            counters.increment(_point(index), by=count)
        db.record_counters(counters)
    buffer = io.StringIO()
    db.store(buffer)
    loaded = ProfileDatabase.load(io.StringIO(buffer.getvalue()))
    assert loaded.dataset_count == db.dataset_count
    for counts in tmp_datasets:
        for index in counts:
            assert loaded.query(_point(index)) == pytest.approx(
                db.query(_point(index))
            )


def test_load_rejects_invalid_importance():
    base = {"format": "pgmp-profile", "version": 1}

    def entry(importance):
        return {**base, "datasets": [{"weights": {}, "importance": importance}]}

    for bad in (-1.0, float("nan"), float("inf"), float("-inf"), "heavy", None, True):
        with pytest.raises(ProfileFormatError, match="data set #0"):
            ProfileDatabase.from_json_object(entry(bad))
    # Zero and positive importances are legitimate.
    assert ProfileDatabase.from_json_object(entry(0.0)).dataset_count == 1
    assert ProfileDatabase.from_json_object(entry(2)).dataset_count == 1


def test_load_rejects_out_of_range_weight_as_format_error():
    base = {"format": "pgmp-profile", "version": 1}
    key = _point(1).key()
    for bad in (1.5, -0.25):
        with pytest.raises(ProfileFormatError, match="data set #1"):
            ProfileDatabase.from_json_object(
                {
                    **base,
                    "datasets": [
                        {"weights": {key: 0.5}},
                        {"weights": {key: bad}},
                    ],
                }
            )


def test_load_rejects_non_numeric_weight_as_format_error():
    base = {"format": "pgmp-profile", "version": 1}
    with pytest.raises(ProfileFormatError, match="data set #0"):
        ProfileDatabase.from_json_object(
            {**base, "datasets": [{"weights": {_point(1).key(): "hot"}}]}
        )


def test_load_rejects_malformed_point_key_as_format_error():
    base = {"format": "pgmp-profile", "version": 1}
    with pytest.raises(ProfileFormatError, match="data set #0"):
        ProfileDatabase.from_json_object(
            {**base, "datasets": [{"weights": {"no-such-key-shape": 0.5}}]}
        )


def test_store_leaves_no_temp_files(tmp_path):
    db = ProfileDatabase()
    db.record_counters(_counters(p1=1))
    path = tmp_path / "p.json"
    db.store(path)
    db.store(path)  # overwrite goes through the same atomic path
    leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
    assert leftovers == []
    assert ProfileDatabase.load(path).dataset_count == 1


def test_store_failure_preserves_existing_file(tmp_path, monkeypatch):
    db = ProfileDatabase()
    db.record_counters(_counters(p1=1))
    path = tmp_path / "p.json"
    db.store(path)
    before = path.read_text()

    db.record_counters(_counters(p2=7))
    import os as _os

    def exploding_replace(src, dst):
        raise OSError("simulated crash between write and rename")

    monkeypatch.setattr(_os, "replace", exploding_replace)
    with pytest.raises(OSError):
        db.store(path)
    monkeypatch.undo()

    # The old profile is intact and still loads; no temp debris remains.
    assert path.read_text() == before
    assert ProfileDatabase.load(path).dataset_count == 1
    assert [p for p in tmp_path.iterdir() if p.suffix == ".tmp"] == []


def test_store_honors_umask_like_plain_open(tmp_path):
    """The atomic temp-file path must not leak mkstemp's 0600 mode."""
    import os as _os
    import stat

    db = ProfileDatabase()
    db.record_counters(_counters(p1=1))
    path = tmp_path / "p.json"
    db.store(path)

    umask = _os.umask(0)
    _os.umask(umask)
    expected = 0o666 & ~umask
    assert stat.S_IMODE(path.stat().st_mode) == expected


# -- format version 2: fingerprints, staleness, quarantine ---------------------


def test_v2_round_trip_preserves_fingerprints(tmp_path):
    from repro.core.database import source_fingerprint

    db = ProfileDatabase()
    db.record_counters(
        _counters(p1=5), fingerprints={"f.ss": source_fingerprint("(+ 1 2)")}
    )
    path = tmp_path / "p.json"
    db.store(path)
    loaded = ProfileDatabase.load(path)
    assert loaded.dataset_fingerprints() == [
        {"f.ss": source_fingerprint("(+ 1 2)")}
    ]


def test_version_1_files_still_load():
    obj = {
        "format": "pgmp-profile",
        "version": 1,
        "datasets": [{"weights": {_point(1).key(): 0.5}}],
    }
    db = ProfileDatabase.from_json_object(obj)
    assert db.query(_point(1)) == 0.5
    # v1 predates fingerprints, so a v1 data set is never considered stale.
    db = ProfileDatabase.from_json_object(obj, sources={"f.ss": "anything"})
    assert db.query(_point(1)) == 0.5


def test_unsupported_version_always_raises():
    obj = {"format": "pgmp-profile", "version": 99, "datasets": []}
    with pytest.raises(ProfileFormatError, match="version"):
        ProfileDatabase.from_json_object(obj)
    with pytest.raises(ProfileFormatError, match="version"):
        ProfileDatabase.from_json_object(obj, on_error="skip")


def test_stale_dataset_raises_under_strict_load():
    from repro.core.database import source_fingerprint
    from repro.core.errors import StaleProfileError

    obj = {
        "format": "pgmp-profile",
        "version": 2,
        "datasets": [
            {
                "weights": {_point(1).key(): 0.5},
                "fingerprints": {"f.ss": source_fingerprint("old text")},
            }
        ],
    }
    with pytest.raises(StaleProfileError, match="stale"):
        ProfileDatabase.from_json_object(obj, sources={"f.ss": "new text"})
    # Matching source: loads clean.
    db = ProfileDatabase.from_json_object(obj, sources={"f.ss": "old text"})
    assert db.query(_point(1)) == 0.5


def test_stale_dataset_is_quarantined_under_lenient_load():
    from repro.core.database import source_fingerprint

    good = {
        "weights": {_point(1).key(): 0.5},
        "fingerprints": {"f.ss": source_fingerprint("current")},
    }
    stale = {
        "weights": {_point(2).key(): 1.0},
        "fingerprints": {"f.ss": source_fingerprint("older")},
    }
    obj = {"format": "pgmp-profile", "version": 2, "datasets": [good, stale]}
    db = ProfileDatabase.from_json_object(
        obj, on_error="skip", sources={"f.ss": "current"}
    )
    assert db.query(_point(1)) == 0.5
    assert not db.known(_point(2))
    assert len(db.quarantine.stale()) == 1
    assert "stale" in db.quarantine.summary()


def test_lenient_load_quarantines_malformed_and_keeps_good():
    obj = {
        "format": "pgmp-profile",
        "version": 2,
        "datasets": [
            {"weights": {_point(1).key(): 0.5}},
            {"weights": {_point(2).key(): 7.5}},  # out of range
            "not even a dict",
            {"weights": {_point(3).key(): 1.0}, "importance": float("nan")},
        ],
    }
    with pytest.raises(ProfileFormatError):
        ProfileDatabase.from_json_object(obj)
    db = ProfileDatabase.from_json_object(obj, on_error="skip")
    assert db.dataset_count == 1
    assert db.query(_point(1)) == 0.5
    assert len(db.quarantine) == 3
    assert len(db.quarantine.malformed()) == 3
    assert db.quarantine.stale() == []


def test_load_rejects_invalid_on_error_value():
    obj = {"format": "pgmp-profile", "version": 2, "datasets": []}
    with pytest.raises(ValueError, match="on_error"):
        ProfileDatabase.from_json_object(obj, on_error="explode")


def test_load_rejects_nan_weight_as_format_error():
    obj = {
        "format": "pgmp-profile",
        "version": 2,
        "datasets": [{"weights": {_point(1).key(): float("nan")}}],
    }
    with pytest.raises(ProfileFormatError, match="data set #0"):
        ProfileDatabase.from_json_object(obj)


# -- lock hygiene and merge semantics ------------------------------------------


def test_store_cleans_up_lock_sidecar(tmp_path):
    db = ProfileDatabase()
    db.record_counters(_counters(p1=1))
    path = tmp_path / "p.json"
    db.store(path)
    db.store(path)
    assert not (tmp_path / "p.json.lock").exists()
    assert sorted(p.name for p in tmp_path.iterdir()) == ["p.json"]


def test_merge_databases_preserves_names():
    a = ProfileDatabase(name="alpha")
    a.record_counters(_counters(p1=1))
    b = ProfileDatabase(name="beta")
    b.record_counters(_counters(p2=1))
    assert merge_databases([a, b]).name == "merged(alpha+beta)"
    # A single shared name is kept as-is.
    c = ProfileDatabase(name="alpha")
    c.record_counters(_counters(p3=1))
    assert merge_databases([a, c]).name == "alpha"


def test_merge_databases_rejects_empty_input():
    from repro.core.errors import ProfileError

    with pytest.raises(ProfileError, match="no databases"):
        merge_databases([])


def test_merge_databases_carries_fingerprints():
    from repro.core.database import source_fingerprint

    a = ProfileDatabase()
    a.record_counters(_counters(p1=1), fingerprints={"f.ss": source_fingerprint("x")})
    b = ProfileDatabase()
    b.record_counters(_counters(p2=1))
    merged = merge_databases([a, b])
    assert merged.dataset_fingerprints() == [
        {"f.ss": source_fingerprint("x")},
        {},
    ]
