"""Stress tests for the concurrency-safe profiling runtime.

Three layers are hammered from many threads at once:

* counters — exact sums under contention, consistent snapshots mid-run;
* the ambient profile context — ``contextvars`` isolation across workers;
* persistence — atomic stores racing with loads and records.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import api
from repro.core.counters import CounterSet, ShardedCounterSet
from repro.core.database import ProfileDatabase
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.core.weights import WeightTable

THREADS = 8
INCREMENTS = 2_000


def _point(n: int) -> ProfilePoint:
    return ProfilePoint.for_location(SourceLocation("conc.ss", n, n + 1))


def _hammer_increments(counters, points, barrier):
    barrier.wait()
    for _ in range(INCREMENTS):
        for point in points:
            counters.increment(point)


# -- counters -----------------------------------------------------------------


@pytest.mark.parametrize(
    "make",
    [
        lambda: ShardedCounterSet(name="stress"),
        lambda: CounterSet(name="stress", threadsafe=True),
    ],
    ids=["sharded", "locked"],
)
def test_concurrent_increments_sum_exactly(make):
    counters = make()
    points = [_point(n) for n in range(5)]
    barrier = threading.Barrier(THREADS)
    with ThreadPoolExecutor(THREADS) as pool:
        futures = [
            pool.submit(_hammer_increments, counters, points, barrier)
            for _ in range(THREADS)
        ]
        for future in futures:
            future.result()
    for point in points:
        assert counters.count(point) == THREADS * INCREMENTS
    assert counters.total() == THREADS * INCREMENTS * len(points)


@pytest.mark.parametrize(
    "make",
    [
        lambda: ShardedCounterSet(name="stress"),
        lambda: CounterSet(name="stress", threadsafe=True),
    ],
    ids=["sharded", "locked"],
)
def test_reads_during_concurrent_increments_never_raise(make):
    """Reads that iterate counts must never see a mid-resize dict.

    Before the fix, ``total``/``max_count``/``points``/``as_key_mapping``
    iterated the live dict without the lock and could raise ``RuntimeError:
    dictionary changed size during iteration``.
    """
    counters = make()
    stop = threading.Event()
    errors: list[BaseException] = []

    def writer(seed: int):
        n = seed
        while not stop.is_set():
            counters.increment(_point(n % 512))
            n += 7

    def reader():
        while not stop.is_set():
            try:
                counters.total()
                counters.max_count()
                list(counters.points())
                counters.as_key_mapping()
                counters.snapshot()
                len(counters)
                _point(3) in counters
            except BaseException as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)
                return

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
    threads += [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    import time

    time.sleep(0.5)
    stop.set()
    for t in threads:
        t.join()
    assert errors == []


def test_sharded_incrementer_closures_across_threads():
    counters = ShardedCounterSet()
    point = _point(1)
    bump = counters.incrementer(point)
    barrier = threading.Barrier(THREADS)

    def work():
        barrier.wait()
        for _ in range(INCREMENTS):
            bump()

    with ThreadPoolExecutor(THREADS) as pool:
        futures = [pool.submit(work) for _ in range(THREADS)]
        for future in futures:
            future.result()
    assert counters.count(point) == THREADS * INCREMENTS


def test_snapshot_during_increments_is_monotonic():
    """Snapshots taken mid-run are consistent prefixes: totals only grow."""
    counters = ShardedCounterSet()
    stop = threading.Event()

    def writer():
        while not stop.is_set():
            counters.increment(_point(0))

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for t in threads:
        t.start()
    last = 0
    for _ in range(200):
        total = sum(counters.snapshot().values())
        assert total >= last
        last = total
    stop.set()
    for t in threads:
        t.join()


# -- ambient context ----------------------------------------------------------


def test_using_profile_information_isolates_threads():
    """Each worker's scoped database is invisible to the others."""
    results: dict[int, bool] = {}
    barrier = threading.Barrier(THREADS)

    def work(i: int) -> None:
        db = ProfileDatabase(name=f"worker-{i}")
        with api.using_profile_information(db):
            barrier.wait()  # everyone is inside their own scope now
            results[i] = api.current_profile_information() is db

    with ThreadPoolExecutor(THREADS) as pool:
        futures = [pool.submit(work, i) for i in range(THREADS)]
        for future in futures:
            future.result()
    assert all(results[i] for i in range(THREADS))


def test_fresh_threads_see_process_default():
    default = ProfileDatabase(name="process-default")
    previous = api.set_profile_information(default)
    try:
        outer = ProfileDatabase(name="outer-scope")
        with api.using_profile_information(outer):
            seen: list[ProfileDatabase] = []

            def work():
                seen.append(api.current_profile_information())

            t = threading.Thread(target=work)
            t.start()
            t.join()
            # The new thread starts from a fresh context: it sees the
            # process-wide default, not this thread's scoped override.
            assert seen[0] is default
            assert api.current_profile_information() is outer
    finally:
        api.set_profile_information(previous)


def test_nested_scopes_unwind_correctly():
    a, b = ProfileDatabase(name="a"), ProfileDatabase(name="b")
    with api.using_profile_information(a):
        with api.using_profile_information(b):
            assert api.current_profile_information() is b
        assert api.current_profile_information() is a


def test_load_profile_inside_scope_rebinds_scope_only(tmp_path):
    stored = ProfileDatabase(name="stored")
    stored.record_weights(WeightTable({_point(1): 1.0}))
    path = tmp_path / "p.json"
    stored.store(path)

    default_before = api.current_profile_information()
    scope_db = ProfileDatabase(name="scope")
    with api.using_profile_information(scope_db):
        loaded = api.load_profile(path)
        # Visible for the rest of the scope (historical load-profile
        # behaviour during an expansion)...
        assert api.current_profile_information() is loaded
    # ...but the process default is untouched and the scope unwound.
    assert api.current_profile_information() is default_before


# -- pyast profiler under a thread pool ---------------------------------------


def test_profile_hook_thread_pool_with_sharded_counters():
    from repro.pyast.profiler import collecting_counters, profile_hook

    counters = ShardedCounterSet(name="pool")
    key = _point(9).key()
    barrier = threading.Barrier(THREADS)

    def work():
        barrier.wait()
        for _ in range(INCREMENTS):
            profile_hook(key, lambda: None)

    with collecting_counters(counters, all_threads=True):
        with ThreadPoolExecutor(THREADS) as pool:
            futures = [pool.submit(work) for _ in range(THREADS)]
            for future in futures:
                future.result()
    assert counters.count(_point(9)) == THREADS * INCREMENTS
    # The installation is removed once the scope exits.
    before = counters.count(_point(9))
    profile_hook(key, lambda: None)
    assert counters.count(_point(9)) == before


def test_collecting_counters_scopes_are_isolated_per_thread():
    from repro.pyast.profiler import collecting_counters, profile_hook

    key = _point(5).key()
    results: dict[int, int] = {}
    barrier = threading.Barrier(4)

    def work(i: int):
        counters = CounterSet(name=f"w{i}")
        with collecting_counters(counters):
            barrier.wait()
            for _ in range(100 * (i + 1)):
                profile_hook(key, lambda: None)
        results[i] = counters.count(_point(5))

    with ThreadPoolExecutor(4) as pool:
        futures = [pool.submit(work, i) for i in range(4)]
        for future in futures:
            future.result()
    assert results == {0: 100, 1: 200, 2: 300, 3: 400}


# -- database + persistence ---------------------------------------------------


def test_concurrent_record_and_query_never_raise():
    db = ProfileDatabase()
    stop = threading.Event()
    errors: list[BaseException] = []

    def recorder(i: int):
        n = 0
        while not stop.is_set():
            counters = CounterSet()
            counters.increment(_point((i * 31 + n) % 64), by=n + 1)
            db.record_counters(counters)
            n += 1

    def querier():
        while not stop.is_set():
            try:
                db.query(_point(3))
                db.has_data()
                db.point_count()
            except BaseException as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)
                return

    threads = [threading.Thread(target=recorder, args=(i,)) for i in range(3)]
    threads += [threading.Thread(target=querier) for _ in range(3)]
    for t in threads:
        t.start()
    import time

    time.sleep(0.4)
    stop.set()
    for t in threads:
        t.join()
    assert errors == []
    assert db.dataset_count > 0


def test_concurrent_store_and_load_always_see_complete_files(tmp_path):
    """A reader racing atomic writers only ever observes complete profiles."""
    path = tmp_path / "profile.json"
    db = ProfileDatabase(name="racer")
    db.record_weights(WeightTable({_point(1): 1.0}))
    db.store(path)
    stop = threading.Event()
    errors: list[BaseException] = []

    def writer():
        while not stop.is_set():
            db.record_weights(WeightTable({_point(1): 0.5}))
            db.store(path)

    def reader():
        while not stop.is_set():
            try:
                loaded = ProfileDatabase.load(path)
                assert loaded.dataset_count >= 1
                json.loads(path.read_text())
            except BaseException as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)
                return

    threads = [threading.Thread(target=writer) for _ in range(2)]
    threads += [threading.Thread(target=reader) for _ in range(2)]
    for t in threads:
        t.start()
    import time

    time.sleep(0.5)
    stop.set()
    for t in threads:
        t.join()
    assert errors == []


def test_store_while_counters_still_incrementing(tmp_path):
    """store() mid-run persists a consistent snapshot without raising."""
    counters = ShardedCounterSet()
    stop = threading.Event()

    def writer():
        while not stop.is_set():
            counters.increment(_point(0))
            counters.increment(_point(1))

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for t in threads:
        t.start()
    try:
        for i in range(20):
            db = ProfileDatabase()
            db.record_counters(counters)
            db.store(tmp_path / f"snap-{i}.json")
            loaded = ProfileDatabase.load(tmp_path / f"snap-{i}.json")
            assert loaded.dataset_count == 1
    finally:
        stop.set()
        for t in threads:
            t.join()


# -- scheme substrate under a thread pool -------------------------------------


def test_scheme_instrumented_runs_share_sharded_counters():
    """Each worker runs its own interpreter; all feed one sharded sink."""
    from repro.scheme.instrument import ProfileMode
    from repro.scheme.pipeline import SchemeSystem

    source = "(define (loop n) (if (< n 1) 0 (loop (- n 1)))) (loop 50)"

    # Reference: one single-threaded instrumented run's counts.
    reference = SchemeSystem()
    ref_result = reference.run_source(source, "conc.ss", instrument=ProfileMode.EXPR)
    assert ref_result.counters is not None
    expected_one_run = ref_result.counters.snapshot()
    assert expected_one_run

    shared = ShardedCounterSet(name="scheme-pool")

    def work():
        system = SchemeSystem()
        result = system.run_source(
            source, "conc.ss", instrument=ProfileMode.EXPR, counters=shared
        )
        assert result.counters is shared

    with ThreadPoolExecutor(4) as pool:
        futures = [pool.submit(work) for _ in range(4)]
        for future in futures:
            future.result()

    merged = shared.snapshot()
    assert merged == {point: count * 4 for point, count in expected_one_run.items()}
