"""Unit tests for profile points and their deterministic generation."""

import pytest

from repro.core.errors import ProfilePointError
from repro.core.profile_point import (
    ProfilePoint,
    ProfilePointFactory,
    make_profile_point,
    require_point,
    reset_generated_points,
)
from repro.core.srcloc import SourceLocation


BASE = SourceLocation("prog.ss", 10, 30, line=2, column=4)


def test_implicit_point_from_location():
    point = ProfilePoint.for_location(BASE)
    assert point.location == BASE
    assert not point.generated


def test_point_key_round_trip():
    point = ProfilePoint.for_location(BASE)
    assert ProfilePoint.from_key(point.key()) == point


def test_generated_point_key_round_trip_preserves_generated_flag():
    factory = ProfilePointFactory()
    point = factory.make(BASE)
    again = ProfilePoint.from_key(point.key())
    assert again.generated
    assert again == point


def test_same_location_same_point():
    assert ProfilePoint.for_location(BASE) == ProfilePoint.for_location(BASE)


def test_factory_points_are_fresh():
    factory = ProfilePointFactory()
    p1 = factory.make(BASE)
    p2 = factory.make(BASE)
    assert p1 != p2
    assert p1 != ProfilePoint.for_location(BASE)


def test_factory_is_deterministic_across_instances():
    """The property Figure 4 demands: generated points must be reproducible
    across runs so meta-programs can read back their own profiles."""
    a = ProfilePointFactory()
    b = ProfilePointFactory()
    assert [a.make(BASE) for _ in range(5)] == [b.make(BASE) for _ in range(5)]


def test_factory_sequences_are_independent_per_base():
    factory = ProfilePointFactory()
    other = SourceLocation("other.ss", 0, 5)
    p1 = factory.make(BASE)
    factory.make(other)
    factory.make(other)
    factory.reset(BASE)
    assert factory.make(BASE) == p1  # other base did not disturb this one


def test_factory_reset_all():
    factory = ProfilePointFactory()
    first = factory.make(BASE)
    factory.make(BASE)
    factory.reset()
    assert factory.make(BASE) == first


def test_factory_accepts_point_as_base():
    factory = ProfilePointFactory()
    base_point = ProfilePoint.for_location(BASE)
    derived = factory.make(base_point)
    assert derived.generated
    assert BASE.filename in derived.location.filename


def test_factory_default_base():
    factory = ProfilePointFactory()
    point = factory.make()
    assert point.generated
    assert point.location.filename.startswith("<generated>")


def test_sequence_number():
    factory = ProfilePointFactory()
    assert factory.sequence_number(BASE) == 0
    factory.make(BASE)
    factory.make(BASE)
    assert factory.sequence_number(BASE) == 2


def test_global_make_profile_point_reset():
    reset_generated_points()
    p1 = make_profile_point(BASE)
    reset_generated_points()
    p2 = make_profile_point(BASE)
    assert p1 == p2


def test_generated_filename_mentions_base_filename():
    reset_generated_points()
    point = make_profile_point(BASE)
    assert point.location.filename.startswith("prog.ss")


def test_require_point_coercions():
    assert require_point(ProfilePoint.for_location(BASE)).location == BASE
    assert require_point(BASE).location == BASE
    with pytest.raises(ProfilePointError):
        require_point(42)


def test_str_forms():
    assert "profile-point" in str(ProfilePoint.for_location(BASE))
    assert "generated" in str(ProfilePointFactory().make(BASE))
