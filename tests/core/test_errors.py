"""Tests for the exception hierarchy's contracts."""

import pytest

from repro.core import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ProfileError,
            errors.MissingProfileError,
            errors.ProfileFormatError,
            errors.ProfilePointError,
            errors.SubstrateError,
            errors.SchemeError,
            errors.ReaderError,
            errors.ExpandError,
            errors.PatternError,
            errors.TemplateError,
            errors.EvalError,
            errors.SchemeUserError,
            errors.CompileError,
            errors.VMError,
            errors.MacroError,
        ],
    )
    def test_all_derive_from_pgmp_error(self, exc):
        assert issubclass(exc, errors.PgmpError)

    def test_profile_family(self):
        assert issubclass(errors.MissingProfileError, errors.ProfileError)
        assert issubclass(errors.ProfileFormatError, errors.ProfileError)

    def test_scheme_family(self):
        for exc in (
            errors.ReaderError,
            errors.ExpandError,
            errors.EvalError,
            errors.SchemeUserError,
        ):
            assert issubclass(exc, errors.SchemeError)
        assert issubclass(errors.PatternError, errors.ExpandError)
        assert issubclass(errors.TemplateError, errors.ExpandError)
        assert issubclass(errors.SchemeUserError, errors.EvalError)


class TestReaderError:
    def test_message_carries_position(self):
        exc = errors.ReaderError("bad token", "f.ss", 3, 7)
        assert "f.ss:3:7" in str(exc)
        assert exc.filename == "f.ss"
        assert exc.line == 3
        assert exc.column == 7


class TestSchemeUserError:
    def test_who_and_irritants_rendered(self):
        exc = errors.SchemeUserError("proc", "went wrong", (1, "two"))
        text = str(exc)
        assert "proc:" in text
        assert "went wrong" in text
        assert "1" in text and "'two'" in text
        assert exc.irritants == (1, "two")

    def test_without_who(self):
        exc = errors.SchemeUserError("", "plain")
        assert str(exc).strip() == "plain"

    def test_catchable_as_library_error(self):
        with pytest.raises(errors.PgmpError):
            raise errors.SchemeUserError("x", "y")
