"""Unit tests for the Figure-4 API and its substrate parametricity."""

import pytest

from repro.core import api
from repro.core.counters import CounterSet
from repro.core.database import ProfileDatabase
from repro.core.errors import SubstrateError
from repro.core.profile_point import ProfilePoint, make_profile_point
from repro.core.srcloc import SourceLocation


class FakeExpr:
    """A minimal expression type for a toy substrate."""

    def __init__(self, point=None):
        self.point = point


class FakeSubstrate:
    def handles(self, expr):
        return isinstance(expr, FakeExpr)

    def point_of(self, expr):
        return expr.point

    def with_point(self, expr, point):
        return FakeExpr(point)


@pytest.fixture(autouse=True)
def _register_fake():
    api.register_substrate(_FAKE)
    yield


_FAKE = FakeSubstrate()
_LOC = SourceLocation("api.ss", 0, 4)


def test_register_substrate_idempotent():
    before = len(api._SUBSTRATES)
    api.register_substrate(_FAKE)
    assert len(api._SUBSTRATES) == before


def test_annotate_expr_replaces_point():
    p1 = ProfilePoint.for_location(_LOC)
    p2 = make_profile_point(_LOC)
    expr = FakeExpr(p1)
    annotated = api.annotate_expr(expr, p2)
    # At-most-one-point invariant: the new point *replaces* the old.
    assert api.point_of_expr(annotated) == p2


def test_annotate_unknown_expression_type():
    with pytest.raises(SubstrateError):
        api.annotate_expr(object(), ProfilePoint.for_location(_LOC))


def test_point_of_expr_passthroughs():
    point = ProfilePoint.for_location(_LOC)
    assert api.point_of_expr(point) is point
    assert api.point_of_expr(_LOC) == point


def test_profile_query_with_no_point_is_zero():
    assert api.profile_query(FakeExpr(None)) == 0.0


def test_profile_query_reads_ambient_database():
    point = ProfilePoint.for_location(_LOC)
    db = ProfileDatabase()
    counters = CounterSet()
    counters.increment(point, by=4)
    other = ProfilePoint.for_location(SourceLocation("api.ss", 5, 9))
    counters.increment(other, by=8)
    db.record_counters(counters)
    with api.using_profile_information(db):
        assert api.profile_query(FakeExpr(point)) == pytest.approx(0.5)
        assert api.profile_query(point) == pytest.approx(0.5)
        assert api.profile_query(_LOC) == pytest.approx(0.5)


def test_using_profile_information_restores_previous():
    original = api.current_profile_information()
    inner = ProfileDatabase()
    with api.using_profile_information(inner):
        assert api.current_profile_information() is inner
    assert api.current_profile_information() is original


def test_using_profile_information_restores_on_error():
    original = api.current_profile_information()
    with pytest.raises(RuntimeError):
        with api.using_profile_information(ProfileDatabase()):
            raise RuntimeError("boom")
    assert api.current_profile_information() is original


def test_set_profile_information_returns_previous():
    original = api.current_profile_information()
    replacement = ProfileDatabase()
    previous = api.set_profile_information(replacement)
    try:
        assert previous is original
        assert api.current_profile_information() is replacement
    finally:
        api.set_profile_information(original)


def test_store_and_load_profile(tmp_path):
    point = ProfilePoint.for_location(_LOC)
    db = ProfileDatabase()
    counters = CounterSet()
    counters.increment(point, by=3)
    db.record_counters(counters)
    path = tmp_path / "stored.json"
    original = api.set_profile_information(db)
    try:
        api.store_profile(path)
        api.set_profile_information(ProfileDatabase())
        assert api.profile_query(point) == 0.0
        loaded = api.load_profile(path)
        assert api.current_profile_information() is loaded
        assert api.profile_query(point) == pytest.approx(1.0)
    finally:
        api.set_profile_information(original)
