"""Unit tests for raw execution counters."""

from repro.core.counters import CounterSet, ShardedCounterSet
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation


def _point(n: int) -> ProfilePoint:
    return ProfilePoint.for_location(SourceLocation("f.ss", n, n + 1))


def test_empty_counter_set():
    counters = CounterSet()
    assert len(counters) == 0
    assert counters.max_count() == 0
    assert counters.total() == 0
    assert counters.count(_point(0)) == 0


def test_increment():
    counters = CounterSet()
    counters.increment(_point(1))
    counters.increment(_point(1))
    counters.increment(_point(2), by=5)
    assert counters.count(_point(1)) == 2
    assert counters.count(_point(2)) == 5
    assert counters.total() == 7
    assert counters.max_count() == 5


def test_incrementer_closure():
    counters = CounterSet()
    bump = counters.incrementer(_point(3))
    for _ in range(10):
        bump()
    assert counters.count(_point(3)) == 10


def test_threadsafe_incrementer():
    counters = CounterSet(threadsafe=True)
    bump = counters.incrementer(_point(1))
    bump()
    counters.increment(_point(1))
    assert counters.count(_point(1)) == 2


def test_clear():
    counters = CounterSet()
    counters.increment(_point(1))
    counters.clear()
    assert counters.total() == 0


def test_threadsafe_clear_and_snapshot():
    counters = CounterSet(threadsafe=True)
    counters.increment(_point(1))
    assert counters.snapshot() == {_point(1): 1}
    counters.clear()
    assert counters.total() == 0


def test_snapshot_is_a_copy():
    counters = CounterSet()
    counters.increment(_point(1))
    snap = counters.snapshot()
    counters.increment(_point(1))
    assert snap[_point(1)] == 1


def test_contains_and_iter():
    counters = CounterSet()
    counters.increment(_point(1))
    assert _point(1) in counters
    assert list(counters) == [_point(1)]
    assert list(counters.points()) == [_point(1)]


def test_key_mapping_round_trip():
    counters = CounterSet(name="ds1")
    counters.increment(_point(1), by=3)
    counters.increment(_point(2), by=7)
    mapping = counters.as_key_mapping()
    rebuilt = CounterSet.from_key_mapping(mapping, name="ds1")
    assert rebuilt.snapshot() == counters.snapshot()
    assert rebuilt.name == "ds1"


def test_repr_mentions_name_and_totals():
    counters = CounterSet(name="runX")
    counters.increment(_point(1))
    assert "runX" in repr(counters)
    assert "1 points" in repr(counters)


# -- ShardedCounterSet ---------------------------------------------------------


def test_sharded_empty():
    counters = ShardedCounterSet()
    assert len(counters) == 0
    assert counters.max_count() == 0
    assert counters.total() == 0
    assert counters.count(_point(0)) == 0


def test_sharded_increment_and_queries():
    counters = ShardedCounterSet(name="sharded")
    counters.increment(_point(1))
    counters.increment(_point(1))
    counters.increment(_point(2), by=5)
    assert counters.count(_point(1)) == 2
    assert counters.count(_point(2)) == 5
    assert counters.total() == 7
    assert counters.max_count() == 5
    assert _point(1) in counters
    assert sorted(p.location.start for p in counters.points()) == [1, 2]
    assert "sharded" in repr(counters)


def test_sharded_incrementer_closure():
    counters = ShardedCounterSet()
    bump = counters.incrementer(_point(3))
    for _ in range(10):
        bump()
    assert counters.count(_point(3)) == 10


def test_sharded_clear():
    counters = ShardedCounterSet()
    counters.increment(_point(1))
    counters.clear()
    assert counters.total() == 0


def test_sharded_snapshot_is_a_copy():
    counters = ShardedCounterSet()
    counters.increment(_point(1))
    snap = counters.snapshot()
    counters.increment(_point(1))
    assert snap[_point(1)] == 1


def test_sharded_key_mapping_matches_counterset_format():
    sharded = ShardedCounterSet(name="ds1")
    plain = CounterSet(name="ds1")
    for cs in (sharded, plain):
        cs.increment(_point(1), by=3)
        cs.increment(_point(2), by=7)
    assert sharded.as_key_mapping() == plain.as_key_mapping()


def test_sharded_one_shard_per_thread():
    import threading

    counters = ShardedCounterSet()
    counters.increment(_point(1))

    def work():
        counters.increment(_point(1))

    threads = [threading.Thread(target=work) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counters.shard_count == 4
    # Counts from finished threads survive the thread.
    assert counters.count(_point(1)) == 4


def test_sharded_feeds_compute_weights():
    from repro.core.weights import compute_weights

    counters = ShardedCounterSet()
    counters.increment(_point(1), by=5)
    counters.increment(_point(2), by=10)
    table = compute_weights(counters)
    assert table.weight(_point(1)) == 0.5
    assert table.weight(_point(2)) == 1.0
