"""Profile weights — including the paper's Figure 3 worked example."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.counters import CounterSet
from repro.core.errors import ProfileError
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.core.weights import WeightTable, compute_weights, merge_weight_tables


def _point(n: int) -> ProfilePoint:
    return ProfilePoint.for_location(SourceLocation("f.ss", n, n + 1))


IMPORTANT = _point(1)  # stands for (flag email 'important)
SPAM = _point(2)       # stands for (flag email 'spam)


class TestComputeWeights:
    def test_normalizes_by_max(self):
        table = compute_weights({IMPORTANT: 5, SPAM: 10})
        assert table.weight(IMPORTANT) == pytest.approx(0.5)
        assert table.weight(SPAM) == pytest.approx(1.0)

    def test_hottest_point_always_weight_one(self):
        table = compute_weights({_point(1): 3, _point(2): 17, _point(3): 17})
        assert table.weight(_point(2)) == 1.0
        assert table.weight(_point(3)) == 1.0

    def test_empty_counts(self):
        assert len(compute_weights({})) == 0

    def test_all_zero_counts(self):
        table = compute_weights({IMPORTANT: 0})
        assert len(table) == 0

    def test_unknown_point_reads_zero(self):
        table = compute_weights({IMPORTANT: 5})
        assert table.weight(SPAM) == 0.0
        assert not table.known(SPAM)

    def test_negative_count_rejected(self):
        with pytest.raises(ProfileError):
            compute_weights({IMPORTANT: -1, SPAM: 2})

    def test_from_counter_set(self):
        counters = CounterSet(name="run-a")
        counters.increment(IMPORTANT, by=5)
        counters.increment(SPAM, by=10)
        table = compute_weights(counters)
        assert table.name == "run-a"
        assert table.weight(IMPORTANT) == pytest.approx(0.5)


class TestFigure3:
    """The worked example of paper Section 3.2, Figure 3, verbatim."""

    def test_first_data_set(self):
        # (flag email 'important) -> 5/10, (flag email 'spam) -> 10/10
        table = compute_weights({IMPORTANT: 5, SPAM: 10})
        assert table.weight(IMPORTANT) == pytest.approx(5 / 10)
        assert table.weight(SPAM) == pytest.approx(10 / 10)

    def test_second_data_set(self):
        table = compute_weights({IMPORTANT: 100, SPAM: 10})
        assert table.weight(IMPORTANT) == pytest.approx(100 / 100)
        assert table.weight(SPAM) == pytest.approx(10 / 100)

    def test_merge(self):
        # important -> (0.5 + 100/100)/2 ; spam -> (1 + 10/100)/2
        one = compute_weights({IMPORTANT: 5, SPAM: 10})
        two = compute_weights({IMPORTANT: 100, SPAM: 10})
        merged = merge_weight_tables([one, two])
        assert merged.weight(IMPORTANT) == pytest.approx((0.5 + 1.0) / 2)
        assert merged.weight(SPAM) == pytest.approx((1.0 + 0.1) / 2)


class TestMerge:
    def test_merge_empty(self):
        assert len(merge_weight_tables([])) == 0

    def test_merge_single(self):
        table = compute_weights({IMPORTANT: 2, SPAM: 4})
        merged = merge_weight_tables([table])
        assert merged.weight(IMPORTANT) == table.weight(IMPORTANT)

    def test_point_missing_from_one_data_set_contributes_zero(self):
        one = compute_weights({IMPORTANT: 10})
        two = compute_weights({SPAM: 10})
        merged = merge_weight_tables([one, two])
        assert merged.weight(IMPORTANT) == pytest.approx(0.5)
        assert merged.weight(SPAM) == pytest.approx(0.5)

    def test_dataset_weights_bias_the_merge(self):
        one = compute_weights({IMPORTANT: 10})        # weight 1.0
        two = compute_weights({IMPORTANT: 1, SPAM: 10})  # weight 0.1
        merged = merge_weight_tables([one, two], dataset_weights=[3.0, 1.0])
        assert merged.weight(IMPORTANT) == pytest.approx((3 * 1.0 + 1 * 0.1) / 4)

    def test_dataset_weight_length_mismatch(self):
        with pytest.raises(ProfileError):
            merge_weight_tables([WeightTable()], dataset_weights=[1.0, 2.0])

    def test_negative_dataset_weight_rejected(self):
        with pytest.raises(ProfileError):
            merge_weight_tables([WeightTable()], dataset_weights=[-1.0])

    def test_all_zero_dataset_weights_rejected(self):
        with pytest.raises(ProfileError):
            merge_weight_tables([WeightTable()], dataset_weights=[0.0])


class TestWeightTable:
    def test_out_of_range_weight_rejected(self):
        with pytest.raises(ProfileError):
            WeightTable({IMPORTANT: 1.5})
        with pytest.raises(ProfileError):
            WeightTable({IMPORTANT: -0.1})

    def test_hottest(self):
        table = WeightTable({IMPORTANT: 0.4, SPAM: 0.9})
        assert table.hottest(1) == [(SPAM, 0.9)]
        assert [p for p, _ in table.hottest(2)] == [SPAM, IMPORTANT]

    def test_key_mapping_round_trip(self):
        table = WeightTable({IMPORTANT: 0.25, SPAM: 1.0}, name="t")
        rebuilt = WeightTable.from_key_mapping(table.as_key_mapping(), name="t")
        assert rebuilt == table

    def test_equality(self):
        assert WeightTable({IMPORTANT: 0.5}) == WeightTable({IMPORTANT: 0.5})
        assert WeightTable({IMPORTANT: 0.5}) != WeightTable({IMPORTANT: 0.6})
        assert WeightTable().__eq__(42) is NotImplemented

    def test_iteration_and_contains(self):
        table = WeightTable({IMPORTANT: 0.5})
        assert IMPORTANT in table
        assert list(table) == [IMPORTANT]
        assert table.points() == [IMPORTANT]


# -- property-based tests -------------------------------------------------------

counts_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=50).map(_point),
    st.integers(min_value=0, max_value=10**9),
    min_size=0,
    max_size=20,
)


@given(counts_strategy)
def test_weights_always_in_unit_interval(counts):
    table = compute_weights(counts)
    assert all(0.0 <= w <= 1.0 for _, w in table.items())


@given(counts_strategy)
def test_max_weight_is_one_when_any_count_positive(counts):
    table = compute_weights(counts)
    if any(c > 0 for c in counts.values()):
        assert max(w for _, w in table.items()) == pytest.approx(1.0)
    else:
        assert len(table) == 0


@given(counts_strategy)
def test_weights_preserve_count_order(counts):
    table = compute_weights(counts)
    items = sorted(counts.items(), key=lambda kv: kv[1])
    for (p1, c1), (p2, c2) in zip(items, items[1:]):
        if c1 <= c2:
            assert table.weight(p1) <= table.weight(p2) + 1e-12


@given(st.lists(counts_strategy, min_size=1, max_size=5))
def test_merged_weights_in_unit_interval(all_counts):
    tables = [compute_weights(c) for c in all_counts]
    merged = merge_weight_tables(tables)
    assert all(0.0 <= w <= 1.0 for _, w in merged.items())


@given(counts_strategy)
def test_merging_identical_datasets_is_idempotent(counts):
    table = compute_weights(counts)
    merged = merge_weight_tables([table, table, table])
    for point, weight in table.items():
        assert merged.weight(point) == pytest.approx(weight)
