"""Unit tests for source locations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ProfileFormatError
from repro.core.srcloc import UNKNOWN_LOCATION, SourceLocation


def test_basic_fields():
    loc = SourceLocation("a.ss", 10, 20, line=3, column=4)
    assert loc.filename == "a.ss"
    assert loc.start == 10
    assert loc.end == 20
    assert loc.span == 10


def test_zero_span_is_legal():
    loc = SourceLocation("a.ss", 5, 5)
    assert loc.span == 0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        SourceLocation("a.ss", -1, 5)


def test_end_before_start_rejected():
    with pytest.raises(ValueError):
        SourceLocation("a.ss", 10, 5)


def test_equality_and_hash():
    a = SourceLocation("a.ss", 1, 2, line=1, column=1)
    b = SourceLocation("a.ss", 1, 2, line=1, column=1)
    c = SourceLocation("a.ss", 1, 3, line=1, column=1)
    assert a == b
    assert hash(a) == hash(b)
    assert a != c


def test_contains():
    outer = SourceLocation("a.ss", 0, 100)
    inner = SourceLocation("a.ss", 10, 20)
    assert outer.contains(inner)
    assert not inner.contains(outer)
    assert outer.contains(outer)


def test_contains_different_file():
    a = SourceLocation("a.ss", 0, 100)
    b = SourceLocation("b.ss", 10, 20)
    assert not a.contains(b)


def test_overlaps():
    a = SourceLocation("a.ss", 0, 10)
    b = SourceLocation("a.ss", 5, 15)
    c = SourceLocation("a.ss", 10, 20)
    assert a.overlaps(b)
    assert b.overlaps(a)
    assert not a.overlaps(c)  # half-open spans: [0,10) and [10,20) disjoint


def test_key_round_trip():
    loc = SourceLocation("dir/file.ss", 12, 34, line=5, column=6)
    assert SourceLocation.from_key(loc.key()) == loc


def test_key_round_trip_with_colons_in_filename():
    loc = SourceLocation("week:day:file.ss", 1, 2, line=3, column=4)
    assert SourceLocation.from_key(loc.key()) == loc


def test_from_key_rejects_garbage():
    with pytest.raises(ProfileFormatError):
        SourceLocation.from_key("not-a-key")


def test_str_with_line():
    loc = SourceLocation("a.ss", 0, 5, line=7, column=2)
    assert "a.ss:7:2" in str(loc)


def test_str_without_line():
    loc = SourceLocation("a.ss", 3, 5)
    assert "a.ss[3:5]" == str(loc)


def test_unknown_location_singletonish():
    assert UNKNOWN_LOCATION.filename == "<unknown>"


@given(
    st.text(min_size=1).filter(lambda s: "\n" not in s),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=0, max_value=10**5),
    st.integers(min_value=0, max_value=500),
)
def test_key_round_trip_property(filename, start, span, line, column):
    loc = SourceLocation(filename, start, start + span, line=line, column=column)
    assert SourceLocation.from_key(loc.key()) == loc
