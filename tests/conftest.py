"""Shared test helpers."""

import pytest

from repro.scheme.datum import write_datum
from repro.scheme.pipeline import SchemeSystem
from repro.scheme.syntax import strip_all


@pytest.fixture
def scheme():
    """A fresh Scheme system per test."""
    return SchemeSystem()


def run_value(system: SchemeSystem, source: str) -> str:
    """Run source and return the final value's write representation."""
    return write_datum(strip_all(system.run_source(source).value))


def run_output(system: SchemeSystem, source: str) -> str:
    """Run source and return everything it displayed."""
    return system.run_source(source).output
