"""Differential property tests across the reproduction's three evaluators.

Generates small random Scheme programs and checks:

1. the tree-walking interpreter and the block VM compute the same value;
2. instrumentation (either mode) never changes a program's value;
3. block-layout optimization never changes a program's value;
4. the profile→recompile cycle with the §6.1 case library is semantics-
   preserving for arbitrary generated `case` tables and key streams.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks.compiler import compile_program
from repro.blocks.pgo import optimize_layout
from repro.blocks.vm import VM
from repro.core.errors import EvalError, SchemeError, VMError
from repro.scheme.datum import write_datum
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem
from repro.scheme.primitives import make_global_env
from repro.scheme.syntax import strip_all

#: Generated programs may be ill-typed; a run-time type error is itself an
#: outcome both evaluators must agree on.
ERROR = "<error>"


def interp(source: str) -> str:
    try:
        return write_datum(strip_all(SchemeSystem().run_source(source).value))
    except (EvalError, SchemeError):
        return ERROR


def vm(source: str) -> str:
    try:
        module = compile_program(SchemeSystem().compile(source))
        return write_datum(strip_all(VM(module, make_global_env()).run()))
    except (EvalError, SchemeError, VMError):
        return ERROR


def instrumented(source: str, mode: ProfileMode) -> str:
    try:
        result = SchemeSystem().run_source(source, instrument=mode)
        return write_datum(strip_all(result.value))
    except (EvalError, SchemeError):
        return ERROR


# -- program generator -------------------------------------------------------------

_numbers = st.integers(min_value=-20, max_value=20).map(str)
_vars = st.sampled_from(["a", "b", "c"])


def _exprs(depth: int):
    if depth == 0:
        return st.one_of(_numbers, _vars, st.sampled_from(["#t", "#f", "'sym"]))
    sub = _exprs(depth - 1)
    return st.one_of(
        _numbers,
        _vars,
        st.tuples(st.sampled_from(["+", "-", "*", "max", "min"]), sub, sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(sub, sub, sub).map(lambda t: f"(if {t[0]} {t[1]} {t[2]})"),
        st.tuples(_vars, sub, sub).map(lambda t: f"(let ([{t[0]} {t[1]}]) {t[2]})"),
        st.tuples(sub, sub).map(lambda t: f"(begin {t[0]} {t[1]})"),
        st.tuples(st.sampled_from(["<", "<=", "=", ">"]), sub, sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(_vars, sub, sub).map(
            lambda t: f"((lambda ({t[0]}) {t[2]}) {t[1]})"
        ),
    )


def _program(body: str) -> str:
    return f"(define a 1) (define b 2) (define c 3)\n{body}"


@given(_exprs(3))
@settings(max_examples=60, deadline=None)
def test_interpreter_vm_agree(expr):
    source = _program(expr)
    assert interp(source) == vm(source)


@given(_exprs(3), st.sampled_from([ProfileMode.EXPR, ProfileMode.CALL]))
@settings(max_examples=40, deadline=None)
def test_instrumentation_is_transparent(expr, mode):
    source = _program(expr)
    assert interp(source) == instrumented(source, mode)


@given(_exprs(3))
@settings(max_examples=30, deadline=None)
def test_layout_optimization_is_transparent(expr):
    source = _program(expr)
    module = compile_program(SchemeSystem().compile(source))
    profiling_vm = VM(module, make_global_env(), profile=True)
    try:
        value = write_datum(strip_all(profiling_vm.run()))
    except (EvalError, SchemeError, VMError):
        value = ERROR
    optimized, _ = optimize_layout(module, profiling_vm.profile)
    try:
        value2 = write_datum(strip_all(VM(optimized, make_global_env()).run()))
    except (EvalError, SchemeError, VMError):
        value2 = ERROR
    assert value == value2


# -- profile-guided case over random tables -----------------------------------------

_keys = st.integers(min_value=0, max_value=9)


@given(
    st.lists(
        st.tuples(st.sets(_keys, min_size=1, max_size=3), st.integers(0, 99)),
        min_size=1,
        max_size=4,
    ),
    st.lists(_keys, min_size=0, max_size=25),
)
@settings(max_examples=25, deadline=None)
def test_random_case_tables_preserve_semantics(raw_clauses, stream):
    from repro.casestudies.exclusive_cond import make_case_system

    # Make clause key sets disjoint (case requires mutual exclusivity).
    seen: set[int] = set()
    clauses = []
    for keys, result in raw_clauses:
        keys = keys - seen
        if keys:
            seen |= keys
            clauses.append((sorted(keys), result))
    if not clauses:
        return
    clause_text = "\n    ".join(
        f"[({' '.join(map(str, keys))}) {result}]" for keys, result in clauses
    )
    program = f"""
(define (lookup k)
  (case k
    {clause_text}
    [else -1]))
(map lookup (list {' '.join(map(str, stream))}))
"""
    system = make_case_system()
    first = system.profile_run(program, "prop.ss")
    second = system.run(system.compile(program, "prop.ss"))
    assert write_datum(strip_all(first.value)) == write_datum(strip_all(second.value))
