"""Cross-substrate tests: one profile format, two meta-programming systems.

The Figure-4 API is parametric over the substrate, and the stored profile
format is substrate-neutral — weights keyed by serialized profile points.
These tests move real profile data between the Scheme substrate, the
Python-AST substrate, and the cost-center layer through files.
"""

import pytest

from repro.core.api import using_profile_information
from repro.core.counters import CounterSet
from repro.core.database import ProfileDatabase
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.pyast import PyAstSystem
from repro.pyast.costcenters import cost_center, cost_center_weight
from repro.pyast.profiler import collecting_counters
from repro.scheme.pipeline import SchemeSystem


class TestSharedFormat:
    def test_scheme_profile_readable_from_python_side(self, tmp_path):
        """A Python meta-program queries points recorded by the Scheme
        expression profiler, through a stored file."""
        source = "(define (f x) (if (< x 5) 'low 'high))\n(map f (list 1 2 3 9))"
        system = SchemeSystem()
        system.profile_run(source, "shared.ss")
        path = tmp_path / "shared.profile"
        system.store_profile(path)

        db = ProfileDatabase.load(path)
        # Reconstruct the 'low branch's point from its source coordinates —
        # the substrate-neutral identity.
        start = source.index("'low")
        low_point = None
        for point, _ in db.merged().items():
            if point.location.start == start:
                low_point = point
        assert low_point is not None
        with using_profile_information(db):
            from repro.core import profile_query

            low = profile_query(low_point)
        assert 0 < low < 1.0  # executed, but not the hottest point

    def test_python_and_scheme_datasets_merge(self, tmp_path):
        """Data sets recorded by *different substrates* merge in one
        database (they are just weight tables)."""
        scheme_system = SchemeSystem()
        scheme_system.profile_run("(define (f x) x)\n(f 1)", "a.ss")

        counters = CounterSet()
        point = ProfilePoint.for_location(SourceLocation("b.py", 0, 5, line=1))
        counters.increment(point, by=3)
        scheme_system.profile_db.record_counters(counters)

        assert scheme_system.profile_db.dataset_count == 2
        assert scheme_system.profile_db.query(point) > 0

        path = tmp_path / "mixed.profile"
        scheme_system.store_profile(path)
        reloaded = ProfileDatabase.load(path)
        assert reloaded.dataset_count == 2
        assert reloaded.query(point) == scheme_system.profile_db.query(point)

    def test_pyast_system_consumes_stored_scheme_profile(self, tmp_path):
        """PyAstSystem.load_profile accepts a Scheme-produced file; the
        database simply carries extra points the Python macros ignore."""
        scheme_system = SchemeSystem()
        scheme_system.profile_run("(+ 1 2)", "p.ss")
        path = tmp_path / "scheme.profile"
        scheme_system.store_profile(path)

        python_system = PyAstSystem()
        python_system.load_profile(path)
        assert python_system.profile_db.has_data()

    def test_cost_centers_and_scheme_points_coexist(self, tmp_path):
        @cost_center("shared-test-center")
        def work():
            return 1

        counters = CounterSet()
        with collecting_counters(counters):
            for _ in range(5):
                work()

        system = SchemeSystem()
        system.profile_run("(define (g) 2)\n(g)", "g.ss")
        system.profile_db.record_counters(counters)

        path = tmp_path / "both.profile"
        system.store_profile(path)
        db = ProfileDatabase.load(path)
        with using_profile_information(db):
            # Two data sets merged: weight 1.0 in the cost-center set,
            # absent (0.0) from the Scheme set -> (1.0 + 0.0) / 2.
            assert cost_center_weight("shared-test-center") == pytest.approx(0.5)
