"""Backend differential pin: interp and compile must be indistinguishable.

Three layers of evidence, per the equal-semantics guarantee:

* every ``examples/*.py`` prints the same thing under ``PGMP_BACKEND=interp``
  and ``PGMP_BACKEND=compile`` (wall-clock timing lines masked);
* every case-study library produces the same values *and* the same profile
  counters through the full profile→recompile cycle on both backends;
* decision-provenance traces are byte-identical JSON under both backends.
"""

import os
import re
import subprocess
import sys

import pytest

from repro.core.api import reset_generated_points
from repro.obs.export import render_trace_json
from repro.obs.tracer import Tracer, using_tracer
from repro.scheme.datum import write_datum
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem
from repro.scheme.syntax import strip_all

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")
BACKENDS = ("interp", "compile")

#: Lines whose only content is wall-clock measurement; everything else in an
#: example's output is semantics and must match byte for byte.
_TIMING = re.compile(r"\s*\d+(\.\d+)?\s*(ms|s)\b|speedup: *\d+(\.\d+)?x")


def _mask_timing(text: str) -> str:
    return "\n".join(
        _TIMING.sub("<t>", line) for line in text.splitlines()
    )


def _run_example(name: str, backend: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    env["PGMP_BACKEND"] = backend
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )


@pytest.mark.parametrize(
    "example",
    sorted(f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")),
)
def test_example_output_parity(example):
    runs = {b: _run_example(example, b) for b in BACKENDS}
    for run in runs.values():
        assert run.returncode == 0, run.stderr
    assert _mask_timing(runs["interp"].stdout) == _mask_timing(
        runs["compile"].stdout
    )


# -- case studies through the full profile→recompile cycle --------------------------

#: factory-module attribute → a workload exercising its profile-guided
#: construct, including at least one recursion the codegen converts.
CASE_STUDIES = {
    "if_r.make_if_r_system": """
        (define (f n) (if-r (< n 5) 'lo 'hi))
        (define (walk xs acc)
          (if (null? xs) acc (walk (cdr xs) (cons (f (car xs)) acc))))
        (walk (list 1 6 7 8 9 2 6 6) '())
    """,
    "exclusive_cond.make_case_system": """
        (define (g n) (case n ((1 2) 'small) ((8 9) 'big) (else 'mid)))
        (map g (list 8 8 8 9 1 5 8 2))
    """,
    "receiver_class.make_object_system": """
        (class Circle ((r 0)) (define-method (area this) (field this r)))
        (class Square ((s 0)) (define-method (area this) (field this s)))
        (define shapes (list (make-Circle 2) (make-Circle 3) (make-Square 4)))
        (map (lambda (s) (method s area)) shapes)
    """,
    "boolean_reorder.make_boolean_system": """
        (define (h n) (and-r (> n 0) (< n 10)))
        (map h (list -1 5 20 3 4 5 6))
    """,
    "inliner.make_inliner_system": """
        (define-inlinable (sq n) (* n n))
        (define (k n) (sq (+ n 1)))
        (map k (list 1 2 3 4 5))
    """,
    "datastructs.make_datastructs_system": """
        (define s (profiled-seq 10 20 30 40 50))
        (define (go n acc)
          (if (= n 0) acc (go (- n 1) (+ acc (seq-ref s (modulo n 5))))))
        (go 50 0)
    """,
}


def _factory(dotted: str):
    import importlib

    module_name, attr = dotted.split(".")
    module = importlib.import_module(f"repro.casestudies.{module_name}")
    return getattr(module, attr)


def _cycle(dotted: str, program: str, backend: str, monkeypatch):
    """profile → recompile → run under one backend; all observables."""
    monkeypatch.setenv("PGMP_BACKEND", backend)
    system = _factory(dotted)(policy="warn")
    assert system.backend == backend
    profiled = system.profile_run(program, "study.ss")
    optimized = system.compile(program, "study.ss")
    result = system.run(optimized)
    return (
        write_datum(strip_all(profiled.value)),
        {str(p): c for p, c in profiled.counters.snapshot().items()},
        write_datum(strip_all(result.value)),
    )


@pytest.mark.parametrize("dotted", sorted(CASE_STUDIES))
def test_case_study_cycle_parity(dotted, monkeypatch):
    program = CASE_STUDIES[dotted]
    outcomes = {
        b: _cycle(dotted, program, b, monkeypatch) for b in BACKENDS
    }
    assert outcomes["interp"] == outcomes["compile"]
    assert sum(outcomes["interp"][1].values()) > 0, "the workload was profiled"


# -- decision-provenance traces ------------------------------------------------------


def _traced_json(dotted: str, program: str, backend: str, db, cached: bool) -> str:
    system = _factory(dotted)(policy="warn")
    system.profile_db = db
    system.backend = backend
    reset_generated_points()
    tracer = Tracer()
    with using_tracer(tracer):
        if cached:
            system.compile_cached(program, "study.ss")
        else:
            system.compile(program, "study.ss")
    return render_trace_json(tracer)


@pytest.mark.parametrize("dotted", sorted(CASE_STUDIES))
def test_trace_parity_across_backends(dotted):
    # Decision provenance must not depend on how the optimized program is
    # subsequently *executed*: with real profile data loaded, tracing a
    # compile under either backend setting yields byte-identical JSON.
    program = CASE_STUDIES[dotted]
    seed = _factory(dotted)(policy="warn")
    seed.profile_run(program, "study.ss", mode=ProfileMode.EXPR)
    db = seed.profile_db

    docs = {b: _traced_json(dotted, program, b, db, cached=False) for b in BACKENDS}
    assert '"decisions"' in docs["interp"]
    assert docs["interp"] == docs["compile"]


def test_artifact_cache_decisions_are_themselves_traced():
    # The cache layer adds provenance rather than perturbing it: the
    # compile_cached path records an artifact_cache span with the outcome
    # and both fingerprints, on top of the same expansion trace.
    dotted = "exclusive_cond.make_case_system"
    program = CASE_STUDIES[dotted]
    seed = _factory(dotted)(policy="warn")
    seed.profile_run(program, "study.ss", mode=ProfileMode.EXPR)
    doc = _traced_json(dotted, program, "compile", seed.profile_db, cached=True)
    assert '"artifact_cache"' in doc
    assert '"outcome": "miss"' in doc
    assert '"source_fp"' in doc and '"profile_fp"' in doc
