"""End-to-end workflow tests across the whole stack."""

import pytest

from repro.casestudies.exclusive_cond import make_case_system
from repro.casestudies.if_r import make_if_r_system
from repro.core.database import ProfileDatabase
from repro.scheme.core_forms import unparse_string
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem


class TestProfileStorageWorkflow:
    """The full paper workflow with an on-disk profile between compiles —
    i.e. separate 'compiler invocations'."""

    PROGRAM = """
    (define (classify n)
      (if-r (< n 3) 'important 'spam))
    (define (run n acc)
      (if (= n 0) acc (run (- n 1) (cons (classify n) acc))))
    (run 20 '())
    """

    def test_cross_invocation_profile(self, tmp_path):
        path = tmp_path / "run.profile"

        # Invocation 1: instrument, run, store.
        first = make_if_r_system()
        first.profile_run(self.PROGRAM, "inv.ss")
        first.store_profile(path)

        # Invocation 2: a *fresh* system loads the profile and optimizes.
        second = make_if_r_system()
        second.load_profile(path)
        text = unparse_string(second.compile(self.PROGRAM, "inv.ss"))
        # spam ran 17 times vs important 3: branches swap.
        assert "(if (not (< n 3))" in text

    def test_deterministic_points_across_systems(self, tmp_path):
        """Generated profile points must line up across compiler instances
        (Figure 4's determinism requirement)."""
        source = """
        (define-syntax (tick stx)
          (syntax-case stx ()
            [(_ e) (annotate-expr #'e (make-profile-point))]))
        (define (f x) (tick (* x x)))
        (f 2) (f 3) (f 4)
        """
        one = SchemeSystem()
        one.profile_run(source, "det.ss")
        path = tmp_path / "det.profile"
        one.store_profile(path)

        two = SchemeSystem()
        two.load_profile(path)
        # Expanding in the fresh system regenerates the same point; its
        # weight must be the recorded one (3 executions of the hottest...).
        program = two.compile(source, "det.ss")
        from repro.core.profile_point import reset_generated_points, make_profile_point

        reset_generated_points()
        regenerated = make_profile_point()
        assert two.profile_db.known(regenerated)


class TestMultipleLibraries:
    def test_case_and_if_r_together(self):
        from repro.casestudies.exclusive_cond import (
            CASE_LIBRARY,
            EXCLUSIVE_COND_LIBRARY,
        )
        from repro.casestudies.if_r import IF_R_LIBRARY

        system = SchemeSystem()
        system.load_library(EXCLUSIVE_COND_LIBRARY, "ec.ss")
        system.load_library(CASE_LIBRARY, "case.ss")
        system.load_library(IF_R_LIBRARY, "if-r.ss")
        source = """
        (define (f n)
          (if-r (= n 0)
            'zero
            (case n [(1 2) 'small] [else 'big])))
        (map f (list 0 1 5))
        """
        assert str(system.run_source(source, "multi.ss").value) == "(zero small big)"


class TestFreshRuntime:
    def test_fresh_runtime_clears_definitions(self):
        system = make_case_system()
        system.run_source("(define leak 42)")
        assert str(system.run_source("leak").value) == "42"
        system.fresh_runtime()
        with pytest.raises(Exception, match="unbound"):
            system.run_source("leak")
        # Libraries survive the reset.
        assert str(system.run_source("(case 1 [(1) 'one] [else 'no])").value) == "one"


class TestImportanceWeighting:
    def test_weighted_datasets_shift_the_decision(self):
        """'Essentially a weighted average' — a heavily-weighted data set
        dominates the merge."""
        system = make_if_r_system()
        base = "(define (f x) (if-r (< x 5) 'lo 'hi))\n"
        lo_heavy = base + "(for-each f (list 1 1 1 1 1 9))"
        hi_heavy = base + "(for-each f (list 9 9 9 9 9 1))"
        system.profile_run(lo_heavy, "w.ss", importance=1.0)
        system.profile_run(hi_heavy, "w.ss", importance=10.0)
        text = unparse_string(system.compile(base, "w.ss"))
        assert "(if (not (< x 5))" in text  # hi dominates due to importance


class TestCallVsExprCounters:
    def test_call_counters_subset_of_expr_counters(self):
        """Section 4.2: the Racket strategy changes performance, 'it does
        not change the counters used to calculate profile weights' — for
        expressions that are calls, both modes agree."""
        source = "(define (f x) (* x (+ x 1)))\n(f 1) (f 2) (f 3)"
        a = SchemeSystem().run_source(source, "m.ss", instrument=ProfileMode.EXPR)
        b = SchemeSystem().run_source(source, "m.ss", instrument=ProfileMode.CALL)
        expr_counts = a.counters.snapshot()
        call_counts = b.counters.snapshot()
        for point, count in call_counts.items():
            assert expr_counts.get(point) == count
