"""Integration tests for the pgmp command-line interface."""

import json

import pytest

from repro.tools.cli import build_parser, main


PROGRAM = """
(define (classify n)
  (case (modulo n 5)
    [(0) 'zero]
    [(1 2) 'small]
    [(3 4) 'big]))
(define (run n acc)
  (if (= n 0) acc (run (- n 1) (cons (classify n) acc))))
(length (run 60 '()))
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.ss"
    path.write_text(PROGRAM)
    return str(path)


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run(program_file, capsys):
    assert main(["run", program_file, "--library", "case"]) == 0
    out = capsys.readouterr().out
    assert out.strip() == "60"


def test_run_instrumented(program_file, capsys):
    assert main(["run", program_file, "--library", "case", "--instrument", "expr"]) == 0
    captured = capsys.readouterr()
    assert "profiled" in captured.err


def test_expand(program_file, capsys):
    assert main(["expand", program_file, "--library", "case"]) == 0
    out = capsys.readouterr().out
    assert "(define classify" in out
    assert "key-in?" in out  # case was rewritten into membership tests


def test_profile_then_optimize(program_file, tmp_path, capsys):
    profile_path = str(tmp_path / "prog.profile")
    assert main(["profile", program_file, "--library", "case", "--out", profile_path]) == 0
    payload = json.loads(open(profile_path).read())
    assert payload["format"] == "pgmp-profile"
    capsys.readouterr()

    assert main([
        "optimize", program_file, "--library", "case", "--profile-file", profile_path,
    ]) == 0
    out = capsys.readouterr().out
    # small (24 hits) must be tested before zero (12 hits)
    assert out.index("'small") < out.index("'zero")


def test_optimize_requires_profile(program_file, capsys):
    assert main(["optimize", program_file]) == 2


def test_workflow(program_file, capsys):
    assert main(["workflow", program_file, "--library", "case"]) == 0
    out = capsys.readouterr().out
    assert "expansion stable:        True" in out
    assert "semantics preserved:     True" in out


def test_disasm(program_file, capsys):
    assert main(["disasm", program_file, "--library", "case"]) == 0
    out = capsys.readouterr().out
    assert "function" in out
    assert "entry:" in out


def test_missing_file(capsys):
    assert main(["run", "/nonexistent/x.ss"]) == 1
    assert "pgmp" in capsys.readouterr().err


def test_scheme_error_reported(tmp_path, capsys):
    path = tmp_path / "bad.ss"
    path.write_text("(error 'me \"nope\")")
    assert main(["run", str(path)]) == 1
    assert "nope" in capsys.readouterr().err


def test_custom_library_from_file(tmp_path, capsys):
    lib = tmp_path / "lib.ss"
    lib.write_text("(define (triple x) (* 3 x))")
    prog = tmp_path / "p.ss"
    prog.write_text("(triple 14)")
    assert main(["run", str(prog), "--library", str(lib)]) == 0
    assert capsys.readouterr().out.strip() == "42"


def test_stdin_program(monkeypatch, capsys):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO("(+ 40 2)"))
    assert main(["run", "-"]) == 0
    assert capsys.readouterr().out.strip() == "42"


def test_simplify_flag(tmp_path, capsys):
    program = tmp_path / "s.ss"
    program.write_text("(let ([x 5]) (* x x))")
    assert main(["expand", str(program), "--simplify"]) == 0
    captured = capsys.readouterr()
    assert captured.out.strip() == "(* 5 5)"
    assert "contracted 1" in captured.err


def test_simplify_flag_on_run(tmp_path, capsys):
    program = tmp_path / "s.ss"
    program.write_text("(let ([x 6]) (* x 7))")
    assert main(["run", str(program), "--simplify"]) == 0
    assert capsys.readouterr().out.strip() == "42"


def test_error_message_is_structured_one_liner(capsys):
    assert main(["run", "/nonexistent/x.ss"]) == 1
    err = capsys.readouterr().err.strip()
    assert err.startswith("pgmp: error: ")
    assert "\n" not in err
    assert "Traceback" not in err


def test_profile_policy_strict_fails_on_corrupt_profile(
    program_file, tmp_path, capsys
):
    profile = tmp_path / "p.json"
    profile.write_text("{ not json")
    assert main(["run", program_file, "--library", "case",
                 "--profile-file", str(profile)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("pgmp: error: ProfileFormatError:")


def test_profile_policy_warn_degrades_on_corrupt_profile(
    program_file, tmp_path, capsys
):
    profile = tmp_path / "p.json"
    profile.write_text("{ not json")
    assert main(["run", program_file, "--library", "case",
                 "--profile-file", str(profile),
                 "--profile-policy", "warn"]) == 0
    captured = capsys.readouterr()
    assert captured.out.strip() == "60"
    assert "pgmp: warning" in captured.err


def test_profile_policy_warn_flags_stale_profile(program_file, tmp_path, capsys):
    profile = tmp_path / "p.json"
    assert main(["profile", program_file, "--library", "case",
                 "--out", str(profile)]) == 0
    # Edit the program: the stored profile no longer matches its source.
    with open(program_file, "a", encoding="utf-8") as handle:
        handle.write("\n;; edited\n")
    capsys.readouterr()
    assert main(["run", program_file, "--library", "case",
                 "--profile-file", str(profile),
                 "--profile-policy", "warn"]) == 0
    assert "stale" in capsys.readouterr().err


def test_workflow_checkpoint_resume(program_file, tmp_path, capsys):
    ckpt = str(tmp_path / "ckpt")
    assert main(["workflow", program_file, "--library", "case",
                 "--checkpoint-dir", ckpt]) == 0
    first = capsys.readouterr().out
    assert "rung:                    three-pass" in first
    assert "resumed" not in first
    assert main(["workflow", program_file, "--library", "case",
                 "--checkpoint-dir", ckpt]) == 0
    second = capsys.readouterr().out
    assert "resumed from checkpoint: pass1, pass2" in second
    assert main(["workflow", program_file, "--library", "case",
                 "--checkpoint-dir", ckpt, "--no-resume"]) == 0
    assert "resumed" not in capsys.readouterr().out


def test_workflow_budget_degrades_under_warn(program_file, capsys):
    assert main(["workflow", program_file, "--library", "case",
                 "--pass-budget", "5", "--profile-policy", "warn"]) == 0
    captured = capsys.readouterr()
    assert "rung:                    unoptimized" in captured.out
    assert "degraded:" in captured.err


def test_workflow_budget_fails_under_strict(program_file, capsys):
    assert main(["workflow", program_file, "--library", "case",
                 "--pass-budget", "5"]) == 1
    assert "StepBudgetExceeded" in capsys.readouterr().err
