"""Tests for the profile report tool and its CLI command."""

import pytest

from repro.core.counters import CounterSet
from repro.core.database import ProfileDatabase
from repro.core.profile_point import ProfilePoint, make_profile_point, reset_generated_points
from repro.core.srcloc import SourceLocation
from repro.scheme.pipeline import SchemeSystem
from repro.tools.cli import main
from repro.tools.report import annotate_source, histogram, hottest_report


def _db_with(counts: dict[tuple[str, int], int]) -> ProfileDatabase:
    counters = CounterSet()
    for (filename, line), count in counts.items():
        loc = SourceLocation(filename, line * 100, line * 100 + 5, line=line, column=0)
        counters.increment(ProfilePoint.for_location(loc), by=count)
    db = ProfileDatabase()
    db.record_counters(counters)
    return db


class TestHottestReport:
    def test_empty(self):
        assert "(no profile data)" in hottest_report(ProfileDatabase())

    def test_sorted_hottest_first(self):
        db = _db_with({("a.ss", 1): 5, ("a.ss", 2): 50, ("a.ss", 3): 10})
        text = hottest_report(db, n=3)
        lines = text.splitlines()[1:]
        assert "a.ss:2" in lines[0]
        assert "a.ss:3" in lines[1]
        assert "a.ss:1" in lines[2]

    def test_limits_to_n(self):
        db = _db_with({("a.ss", i): i for i in range(1, 20)})
        assert len(hottest_report(db, n=5).splitlines()) == 6  # header + 5

    def test_marks_generated_points(self):
        reset_generated_points()
        point = make_profile_point(SourceLocation("a.ss", 0, 5, line=1))
        counters = CounterSet()
        counters.increment(point, by=3)
        db = ProfileDatabase()
        db.record_counters(counters)
        assert "(generated)" in hottest_report(db)


class TestAnnotateSource:
    SOURCE = "(define x 1)\n(display x)\n(newline)"

    def test_heat_column_alignment(self):
        db = _db_with({("p.ss", 2): 10, ("p.ss", 3): 5})
        text = annotate_source(self.SOURCE, "p.ss", db)
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("       |")
        assert lines[1].startswith("1.0000 |")
        assert lines[2].startswith("0.5000 |")

    def test_other_files_ignored(self):
        db = _db_with({("other.ss", 1): 10})
        text = annotate_source(self.SOURCE, "p.ss", db)
        assert "1.0000" not in text

    def test_generated_points_attributed_to_base_file(self):
        reset_generated_points()
        point = make_profile_point(SourceLocation("p.ss", 0, 5, line=1))
        counters = CounterSet()
        counters.increment(point, by=1)
        db = ProfileDatabase()
        db.record_counters(counters)
        text = annotate_source(self.SOURCE, "p.ss", db)
        assert text.splitlines()[0].startswith("1.0000 |")

    def test_real_profile_round_trip(self):
        system = SchemeSystem()
        source = "(define (f x) (* x x))\n(f 1)\n(f 2)\n(f 3)"
        system.profile_run(source, "real.ss")
        text = annotate_source(source, "real.ss", system.profile_db)
        # The (* x x) body line must be hot.
        assert text.splitlines()[0].startswith("1.0000 |") or "1.0000" in text


class TestHistogram:
    def test_empty(self):
        assert "(no profile data)" in histogram(ProfileDatabase())

    def test_buckets_and_bars(self):
        db = _db_with({("a.ss", 1): 100, ("a.ss", 2): 10, ("a.ss", 3): 9})
        text = histogram(db, buckets=10)
        lines = text.splitlines()
        assert len(lines) == 10
        assert lines[-1].endswith("#" * 40)  # the 1.0 bucket holds the max

    def test_counts_sum_to_points(self):
        db = _db_with({("a.ss", i): i * 7 for i in range(1, 30)})
        text = histogram(db, buckets=5)
        total = sum(int(line.split()[1]) for line in text.splitlines())
        assert total == db.point_count()


class TestCliReport:
    def test_report_command(self, tmp_path, capsys):
        program = tmp_path / "p.ss"
        program.write_text("(define (f x) (* x x))\n(f 1) (f 2) (f 3)\n")
        profile = tmp_path / "p.profile"
        assert main(["profile", str(program), "--out", str(profile)]) == 0
        capsys.readouterr()
        assert main([
            "report", str(program), "--profile-file", str(profile), "--histogram",
        ]) == 0
        out = capsys.readouterr().out
        assert "weight" in out
        assert "| (define (f x) (* x x))" in out
        assert "[0.00,0.10)" in out

    def test_report_requires_profile(self, tmp_path, capsys):
        program = tmp_path / "p.ss"
        program.write_text("1")
        assert main(["report", str(program)]) == 2
