"""Integration test: the calculator scenario (two PGOs composed)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import importlib.util
import sys
from pathlib import Path

from repro.casestudies.exclusive_cond import make_case_system
from repro.scheme.instrument import ProfileMode

_SPEC = importlib.util.spec_from_file_location(
    "calculator_example", Path(__file__).parents[2] / "examples" / "calculator.py"
)
calculator = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(calculator)

CALCULATOR = calculator.CALCULATOR


def run_calc(system, expression: str):
    return system.run_source(CALCULATOR + f'(calc "{expression}")', "calc.ss").value


class TestCalculatorSemantics:
    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("1 + 2", 3),
            ("10 - 4", 6),
            ("3 * 7", 21),
            ("20 / 4", 5),
            ("1 + 2 * 3", 9),  # left-to-right, no precedence
            ("100", 100),
            ("007 + 1", 8),
        ],
    )
    def test_basic(self, expression, expected):
        assert run_calc(make_case_system(), expression) == expected

    def test_optimized_pipeline_preserves_results(self):
        driver = CALCULATOR + calculator.DRIVER
        system = make_case_system()
        first = system.profile_run(driver, "calc.ss")
        second = system.run(system.compile(driver, "calc.ss"))
        assert str(first.value) == str(second.value)

    def test_training_reduces_work(self):
        driver = CALCULATOR + calculator.DRIVER
        baseline = make_case_system()
        before = baseline.run_source(
            driver, "calc.ss", instrument=ProfileMode.EXPR
        ).counters.total()
        system = make_case_system()
        system.profile_run(driver, "calc.ss")
        after = system.run(
            system.compile(driver, "calc.ss"), instrument=ProfileMode.EXPR
        ).counters.total()
        assert after < before


@given(
    st.lists(st.integers(min_value=0, max_value=999), min_size=1, max_size=6),
    st.lists(st.sampled_from(["+", "-", "*"]), min_size=5, max_size=5),
)
@settings(max_examples=20, deadline=None)
def test_calculator_matches_python_semantics(numbers, ops):
    """Differential test against a Python left-to-right evaluator."""
    expression = str(numbers[0])
    expected = numbers[0]
    for number, op in zip(numbers[1:], ops):
        expression += f" {op} {number}"
        if op == "+":
            expected += number
        elif op == "-":
            expected -= number
        else:
            expected *= number
    assert run_calc(make_case_system(), expression) == expected
