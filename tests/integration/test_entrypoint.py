"""The ``pgmp`` console-script entry point.

``pyproject.toml`` declares ``pgmp = "repro.tools.cli:main"``; these tests
pin that declaration to the module's actual ``main`` and prove that a
console script built from it dispatches identically to
``python -m repro.tools.cli`` — same stdout, same exit code — so either
invocation style is interchangeable in docs, CI, and user scripts.
"""

import importlib
import shutil
import subprocess
import sys
import tomllib
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _entry_point_spec() -> str:
    payload = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
    return payload["project"]["scripts"]["pgmp"]


def test_entry_point_declared():
    assert _entry_point_spec() == "repro.tools.cli:main"


def test_entry_point_resolves_to_cli_main():
    modname, _, attr = _entry_point_spec().partition(":")
    module = importlib.import_module(modname)
    resolved = getattr(module, attr)
    from repro.tools.cli import main

    assert resolved is main
    assert callable(resolved)


def _run(argv: list[str], entry: bool) -> subprocess.CompletedProcess:
    """Run the CLI as a console script would (``entry=True``) or as
    ``python -m repro.tools.cli`` (``entry=False``)."""
    if entry:
        modname, _, attr = _entry_point_spec().partition(":")
        stub = (
            "import sys\n"
            f"from {modname} import {attr}\n"
            f"sys.exit({attr}())\n"
        )
        cmd = [sys.executable, "-c", stub, *argv]
    else:
        cmd = [sys.executable, "-m", "repro.tools.cli", *argv]
    return subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": ""},
    )


def test_console_script_dispatch_matches_module_dispatch(tmp_path):
    prog = tmp_path / "prog.ss"
    prog.write_text("(+ 1 2)\n")
    argv = ["run", str(prog)]
    via_entry = _run(argv, entry=True)
    via_module = _run(argv, entry=False)
    assert via_entry.returncode == via_module.returncode == 0
    assert via_entry.stdout == via_module.stdout == "3\n"


def test_console_script_error_paths_match(tmp_path):
    argv = ["run", str(tmp_path / "missing.ss")]
    via_entry = _run(argv, entry=True)
    via_module = _run(argv, entry=False)
    assert via_entry.returncode == via_module.returncode == 1
    assert via_entry.stderr == via_module.stderr
    assert "pgmp: error:" in via_entry.stderr


@pytest.mark.skipif(shutil.which("pgmp") is None, reason="pgmp not installed")
def test_installed_console_script_smoke(tmp_path):
    prog = tmp_path / "prog.ss"
    prog.write_text("(+ 1 2)\n")
    result = subprocess.run(
        ["pgmp", "run", str(prog)], capture_output=True, text=True
    )
    assert result.returncode == 0
    assert result.stdout == "3\n"
