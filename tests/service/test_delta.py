"""The delta wire protocol: framing, validation, and the idempotency
ledger — every invariant the module docstring promises."""

import pytest

from repro.core.errors import DeltaFormatError
from repro.service.delta import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    DeltaLedger,
    FrameDecoder,
    ProfileDelta,
    encode_frame,
    read_frame,
    write_frame,
)


def _delta(seq: int = 1, **overrides) -> ProfileDelta:
    fields = dict(
        shipper="worker-1",
        seq=seq,
        dataset="requests",
        counts={"f.ss:1-2:1.0": 5, "f.ss:3-4:2.0": 7},
        fingerprints={"f.ss": "abcd1234"},
    )
    fields.update(overrides)
    return ProfileDelta(**fields)


# -- ProfileDelta ---------------------------------------------------------------


def test_delta_round_trips_through_json():
    delta = _delta()
    rebuilt = ProfileDelta.from_json_object(delta.to_json_object())
    assert rebuilt == delta
    assert rebuilt.total() == 12


def test_delta_wire_object_is_tagged_and_versioned():
    obj = _delta().to_json_object()
    assert obj["type"] == "delta"
    assert obj["v"] == WIRE_VERSION


def test_delta_without_fingerprints_omits_the_field():
    obj = _delta(fingerprints={}).to_json_object()
    assert "fingerprints" not in obj
    assert ProfileDelta.from_json_object(obj).fingerprints == {}


@pytest.mark.parametrize(
    "mutation",
    [
        {"type": "profile"},
        {"v": WIRE_VERSION + 1},
        {"shipper": ""},
        {"shipper": 7},
        {"seq": 0},
        {"seq": -3},
        {"seq": True},
        {"seq": "1"},
        {"dataset": ""},
        {"counts": [1, 2]},
        {"counts": {"k": -1}},
        {"counts": {"k": True}},
        {"counts": {"k": 1.5}},
        {"fingerprints": {"f.ss": 9}},
        {"fingerprints": "nope"},
    ],
)
def test_delta_validation_rejects_each_malformation(mutation):
    obj = _delta().to_json_object()
    obj.update(mutation)
    with pytest.raises(DeltaFormatError):
        ProfileDelta.from_json_object(obj)


def test_delta_from_non_object_rejected():
    with pytest.raises(DeltaFormatError):
        ProfileDelta.from_json_object([1, 2, 3])


# -- DeltaLedger ----------------------------------------------------------------


def test_ledger_marks_once_and_only_once():
    ledger = DeltaLedger()
    assert ledger.mark("w", 1) is True
    assert ledger.mark("w", 1) is False
    assert ledger.seen("w", 1)
    assert not ledger.seen("w", 2)


def test_ledger_tolerates_out_of_order_and_compacts():
    ledger = DeltaLedger()
    for seq in (3, 1, 5, 2):
        assert ledger.mark("w", seq) is True
    # 1..3 compacted into the watermark; 5 pending above the gap at 4.
    assert ledger.to_json_object() == {
        "watermark": {"w": 3},
        "pending": {"w": [5]},
    }
    assert ledger.mark("w", 4) is True
    assert ledger.to_json_object() == {"watermark": {"w": 5}, "pending": {}}
    assert ledger.applied_count("w") == 5


def test_ledger_tracks_shippers_independently():
    ledger = DeltaLedger()
    ledger.mark("a", 1)
    ledger.mark("b", 1)
    assert ledger.mark("a", 1) is False
    assert ledger.shippers() == ["a", "b"]
    assert ledger.applied_count("a") == 1


def test_ledger_json_round_trip_preserves_dedup():
    ledger = DeltaLedger()
    for seq in (1, 2, 7):
        ledger.mark("w", seq)
    restored = DeltaLedger.from_json_object(ledger.to_json_object())
    assert restored.mark("w", 2) is False
    assert restored.mark("w", 7) is False
    assert restored.mark("w", 3) is True


def test_ledger_rejects_malformed_json():
    with pytest.raises(DeltaFormatError):
        DeltaLedger.from_json_object("nope")
    with pytest.raises(DeltaFormatError):
        DeltaLedger.from_json_object({"watermark": {"w": "high"}})


# -- framing --------------------------------------------------------------------


def test_frame_round_trip_through_decoder():
    frames = [_delta(seq).to_json_object() for seq in (1, 2, 3)]
    wire = b"".join(encode_frame(obj) for obj in frames)
    decoder = FrameDecoder()
    assert list(decoder.feed(wire)) == frames
    assert not decoder.partial


def test_decoder_handles_byte_at_a_time_delivery():
    obj = _delta().to_json_object()
    wire = encode_frame(obj)
    decoder = FrameDecoder()
    seen = []
    for i in range(len(wire)):
        seen.extend(decoder.feed(wire[i : i + 1]))
    assert seen == [obj]
    assert not decoder.partial


def test_decoder_flags_torn_tail_as_partial():
    wire = encode_frame(_delta().to_json_object())
    decoder = FrameDecoder()
    assert list(decoder.feed(wire[:-3])) == []
    assert decoder.partial


def test_decoder_rejects_oversized_length_prefix():
    import struct

    decoder = FrameDecoder()
    with pytest.raises(DeltaFormatError):
        list(decoder.feed(struct.pack(">I", MAX_FRAME_BYTES + 1)))


def test_decoder_rejects_non_json_payload():
    import struct

    decoder = FrameDecoder()
    with pytest.raises(DeltaFormatError):
        list(decoder.feed(struct.pack(">I", 4) + b"\x00\xff\x00\xff"))


def test_stream_read_write_round_trip(tmp_path):
    path = tmp_path / "frames.bin"
    obj = _delta().to_json_object()
    with open(path, "wb") as handle:
        write_frame(handle, obj)
        write_frame(handle, {"type": "ping"})
    with open(path, "rb") as handle:
        assert read_frame(handle) == obj
        assert read_frame(handle) == {"type": "ping"}
        assert read_frame(handle) is None  # clean EOF


def test_stream_read_raises_on_torn_frame(tmp_path):
    path = tmp_path / "torn.bin"
    wire = encode_frame(_delta().to_json_object())
    path.write_bytes(wire[:-2])
    with open(path, "rb") as handle:
        with pytest.raises(DeltaFormatError):
            read_frame(handle)
