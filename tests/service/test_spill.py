"""The spill log: per-frame durability and torn-tail recovery."""

import logging

import pytest

from repro.core.errors import DeltaFormatError
from repro.service.spill import SpillLog
from repro.testing.faults import tear_spill_log


def _frames(n: int) -> list[dict]:
    return [{"type": "delta", "seq": i, "counts": {"k": i}} for i in range(1, n + 1)]


def test_append_replay_round_trip(tmp_path):
    log = SpillLog(tmp_path / "spill.bin")
    for frame in _frames(3):
        log.append(frame)
    frames, torn = log.replay()
    assert frames == _frames(3)
    assert not torn
    assert len(log) == 3


def test_missing_log_is_empty_not_torn(tmp_path):
    frames, torn = SpillLog(tmp_path / "absent.bin").replay()
    assert frames == []
    assert not torn


def test_clear_removes_the_log(tmp_path):
    log = SpillLog(tmp_path / "spill.bin")
    log.append({"a": 1})
    assert log.size_bytes() > 0
    log.clear()
    assert log.size_bytes() == 0
    log.clear()  # idempotent on a missing file


def test_torn_tail_recovers_every_complete_frame(tmp_path):
    log = SpillLog(tmp_path / "spill.bin")
    for frame in _frames(3):
        log.append(frame)
    tear_spill_log(log.path, drop_bytes=3)
    frames, torn = log.replay()
    assert frames == _frames(2), "everything before the tear is recovered"
    assert torn


def test_tear_inside_length_prefix_still_recovers_prefix_frames(tmp_path):
    log = SpillLog(tmp_path / "spill.bin")
    sizes = [log.append(frame) for frame in _frames(2)]
    # Leave only 2 bytes of the second frame: a torn length prefix.
    tear_spill_log(log.path, drop_bytes=sizes[1] - 2)
    frames, torn = log.replay()
    assert frames == _frames(1)
    assert torn


def test_corrupt_payload_stops_replay_at_the_damage(tmp_path):
    log = SpillLog(tmp_path / "spill.bin")
    log.append(_frames(1)[0])
    import struct

    with open(log.path, "ab") as handle:
        handle.write(struct.pack(">I", 4) + b"\x00\xffxx")
    frames, torn = log.replay()
    assert frames == _frames(1)
    assert torn


def test_corrupt_frame_logs_a_warning(tmp_path, caplog):
    import struct

    log = SpillLog(tmp_path / "spill.bin")
    log.append(_frames(1)[0])
    with open(log.path, "ab") as handle:
        handle.write(struct.pack(">I", 4) + b"\x00\xffxx")
    with caplog.at_level(logging.WARNING, logger="repro.service.spill"):
        frames, torn = log.replay()
    assert torn and frames == _frames(1)
    [record] = [r for r in caplog.records if "corrupt frame" in r.getMessage()]
    assert "1 recovered frame(s)" in record.getMessage()
    assert log.path in record.getMessage()


class _BuggyDecoder:
    """A decoder with a programming error, not corrupt input."""

    partial = False

    def feed(self, data):
        raise AttributeError("'NoneType' object has no attribute 'unpack'")


def test_decoder_bug_propagates_instead_of_reporting_torn(tmp_path, monkeypatch):
    # Regression: replay used to catch bare Exception, so a decoder *bug*
    # (AttributeError and friends) was silently misreported as a torn log
    # and the frames were dropped. Only DeltaFormatError means corruption.
    log = SpillLog(tmp_path / "spill.bin")
    log.append(_frames(1)[0])
    monkeypatch.setattr("repro.service.spill.FrameDecoder", _BuggyDecoder)
    with pytest.raises(AttributeError):
        log.replay()


class _RejectingDecoder:
    """A decoder that reports every byte stream as corrupt."""

    partial = False

    def feed(self, data):
        raise DeltaFormatError("frame 0: bad magic")


def test_decode_error_is_torn_with_zero_frames(tmp_path, monkeypatch, caplog):
    log = SpillLog(tmp_path / "spill.bin")
    log.append(_frames(1)[0])
    monkeypatch.setattr("repro.service.spill.FrameDecoder", _RejectingDecoder)
    with caplog.at_level(logging.WARNING, logger="repro.service.spill"):
        frames, torn = log.replay()
    assert frames == [] and torn
    assert any("corrupt frame" in r.getMessage() for r in caplog.records)
