"""The aggregation server: merge semantics, idempotency, quarantine,
checkpoint/restart, and the observability surface."""

import json
import socket
import struct
import urllib.request

import pytest

from repro.core.counters import CounterSet
from repro.core.database import ProfileDatabase, source_fingerprint
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.service import (
    ProfileAggregator,
    ProfileShipper,
    RecompileController,
    connect,
    parse_address,
    read_frame,
    write_frame,
)

POINTS = [
    ProfilePoint.for_location(SourceLocation("a.ss", n, n + 1)) for n in range(4)
]


def _delta_frame(shipper="w1", seq=1, dataset="ds", counts=None, fingerprints=None):
    frame = {
        "type": "delta",
        "v": 1,
        "shipper": shipper,
        "seq": seq,
        "dataset": dataset,
        "counts": counts if counts is not None else {POINTS[0].key(): 5},
    }
    if fingerprints:
        frame["fingerprints"] = fingerprints
    return frame


# -- in-process frame handling --------------------------------------------------


def test_applies_deltas_additively_across_shippers():
    agg = ProfileAggregator("127.0.0.1:0")
    for shipper in ("w1", "w2", "w3"):
        ack = agg.handle_frame(
            _delta_frame(shipper=shipper, counts={POINTS[0].key(): 4})
        )
        assert ack == {"type": "ack", "seq": 1, "status": "applied"}
    assert agg.total_counts() == 12


def test_duplicate_delta_is_acked_but_not_recounted():
    agg = ProfileAggregator("127.0.0.1:0")
    frame = _delta_frame()
    assert agg.handle_frame(frame)["status"] == "applied"
    assert agg.handle_frame(frame)["status"] == "duplicate"
    assert agg.total_counts() == 5
    assert agg.metrics.counter("deltas_duplicate_total") == 1


def test_out_of_order_deltas_all_apply():
    agg = ProfileAggregator("127.0.0.1:0")
    for seq in (3, 1, 2):
        ack = agg.handle_frame(
            _delta_frame(seq=seq, counts={POINTS[0].key(): 1})
        )
        assert ack["status"] == "applied"
    assert agg.total_counts() == 3


def test_malformed_delta_rejected_not_crashed():
    agg = ProfileAggregator("127.0.0.1:0", policy="ignore")
    ack = agg.handle_frame(_delta_frame(seq=-1))
    assert ack["status"] == "rejected"
    assert "seq" in ack["error"]
    assert agg.handle_frame("not even an object")["status"] == "rejected"
    assert agg.handle_frame({"type": "mystery"})["status"] == "rejected"
    assert agg.metrics.counter("deltas_rejected_total") == 3


def test_unparseable_count_keys_rejected_but_marked():
    agg = ProfileAggregator("127.0.0.1:0", policy="ignore")
    bad = _delta_frame(counts={"not a point key": 3})
    assert agg.handle_frame(bad)["status"] == "rejected"
    # Retrying the same bad delta must not loop: the ledger marked it.
    assert agg.handle_frame(bad)["status"] == "duplicate"
    assert agg.total_counts() == 0


def test_stale_fingerprints_are_quarantined():
    source = "(define x 1)\n"
    agg = ProfileAggregator(
        "127.0.0.1:0", sources={"a.ss": source}, policy="warn"
    )
    good = _delta_frame(
        seq=1, fingerprints={"a.ss": source_fingerprint(source)}
    )
    stale = _delta_frame(
        seq=2, fingerprints={"a.ss": source_fingerprint("(define x 2)\n")}
    )
    assert agg.handle_frame(good)["status"] == "applied"
    assert agg.handle_frame(stale)["status"] == "stale"
    assert agg.total_counts() == 5, "stale counts never merged"
    assert len(agg.quarantine) == 1
    assert "different source" in str(agg.quarantine.entries[0])
    assert agg.metrics.counter("deltas_quarantined_total") == 1
    assert any(
        "quarantined" in entry.fallback for entry in agg.degradations.entries()
    )


def test_unknown_fingerprints_pass_through():
    agg = ProfileAggregator(
        "127.0.0.1:0", expected_fingerprints={"a.ss": "aaaa"}
    )
    ack = agg.handle_frame(
        _delta_frame(fingerprints={"other.ss": "bbbb"})
    )
    assert ack["status"] == "applied"


def test_different_fingerprints_key_different_datasets():
    agg = ProfileAggregator("127.0.0.1:0")
    agg.handle_frame(
        _delta_frame(shipper="w1", fingerprints={"a.ss": "v1"})
    )
    agg.handle_frame(
        _delta_frame(shipper="w2", fingerprints={"a.ss": "v2"})
    )
    stats = agg.handle_frame({"type": "stats"})
    assert len(stats["datasets"]) == 2, "mixed source versions stay separate"
    db = agg.merged_database()
    assert db.dataset_count == 2


def test_merged_database_matches_direct_counting():
    agg = ProfileAggregator("127.0.0.1:0")
    agg.handle_frame(
        _delta_frame(counts={POINTS[0].key(): 10, POINTS[1].key(): 5})
    )
    agg.handle_frame(
        _delta_frame(seq=2, counts={POINTS[1].key(): 5})
    )

    direct = CounterSet(name="ds")
    direct.increment(POINTS[0], by=10)
    direct.increment(POINTS[1], by=10)
    expected = ProfileDatabase()
    expected.record_counters(direct)

    merged = agg.merged_database()
    for point in (POINTS[0], POINTS[1]):
        assert merged.query(point) == expected.query(point)


# -- checkpoint + restart -------------------------------------------------------


def test_state_checkpoint_resumes_counts_and_ledger(tmp_path):
    state = str(tmp_path / "state.json")
    checkpoint = str(tmp_path / "profile.json")
    agg = ProfileAggregator(
        "127.0.0.1:0", state_path=state, checkpoint_path=checkpoint
    )
    agg.handle_frame(_delta_frame(seq=1))
    agg.handle_frame(_delta_frame(seq=2, counts={POINTS[1].key(): 3}))
    assert agg.checkpoint()

    resumed = ProfileAggregator("127.0.0.1:0", state_path=state)
    assert resumed.total_counts() == 8
    # A replayed (retried) delta is recognized across the restart.
    assert resumed.handle_frame(_delta_frame(seq=2))["status"] == "duplicate"
    assert resumed.handle_frame(_delta_frame(seq=3))["status"] == "applied"

    # The public checkpoint is an ordinary stored profile.
    db = ProfileDatabase.load(checkpoint)
    assert db.query(POINTS[0]) == pytest.approx(1.0)


def test_missing_state_file_is_a_cold_start(tmp_path):
    agg = ProfileAggregator(
        "127.0.0.1:0", state_path=str(tmp_path / "absent.json")
    )
    assert agg.total_counts() == 0
    assert not agg.degradations.entries()


def test_corrupt_state_file_degrades_to_cold_start(tmp_path):
    state = tmp_path / "state.json"
    state.write_text("{ not json")
    agg = ProfileAggregator("127.0.0.1:0", state_path=str(state), policy="warn")
    assert agg.total_counts() == 0
    assert any(
        "cold start" in entry.fallback for entry in agg.degradations.entries()
    )


def test_wrong_state_version_degrades_to_cold_start(tmp_path):
    state = tmp_path / "state.json"
    state.write_text(
        json.dumps({"format": "pgmp-service-state", "version": 999, "datasets": []})
    )
    agg = ProfileAggregator("127.0.0.1:0", state_path=str(state), policy="warn")
    assert agg.total_counts() == 0
    assert any(
        "unsupported state version" in entry.reason
        for entry in agg.degradations.entries()
    )


# -- controller wiring ----------------------------------------------------------


def test_run_controller_swaps_on_fresh_data():
    controller = RecompileController(lambda db: ("artifact", db), threshold=0.05)
    agg = ProfileAggregator("127.0.0.1:0", controller=controller)
    agg.handle_frame(_delta_frame())
    decision = agg.run_controller()
    assert decision is not None and decision.recompiled
    assert controller.artifact() is not None


def test_controller_failure_degrades_and_keeps_serving():
    def explode(db):
        raise RuntimeError("compiler on fire")

    controller = RecompileController(explode, threshold=0.05)
    agg = ProfileAggregator("127.0.0.1:0", controller=controller, policy="warn")
    agg.handle_frame(_delta_frame())
    assert agg.run_controller() is None
    assert any(
        "controller raised" in entry.reason
        for entry in agg.degradations.entries()
    )
    # Ingest still works after the failed recompile.
    assert agg.handle_frame(_delta_frame(seq=2))["status"] == "applied"


# -- the live server ------------------------------------------------------------


def test_live_server_round_trip_and_stats():
    counters = CounterSet(name="live")
    counters.increment(POINTS[0], by=9)
    with ProfileAggregator("127.0.0.1:0") as agg:
        with ProfileShipper(counters, agg.address, shipper_id="w1") as shipper:
            shipper.flush()
        sock = connect(agg.address)
        stream = sock.makefile("rwb")
        write_frame(stream, {"type": "ping"})
        assert read_frame(stream) == {"type": "pong"}
        write_frame(stream, {"type": "stats"})
        stats = read_frame(stream)
        assert stats["shippers"] == {"w1": 1}
        assert stats["datasets"]["live"]["total"] == 9
        write_frame(stream, {"type": "metrics"})
        metrics = read_frame(stream)
        assert "pgmp_deltas_applied_total 1" in metrics["text"]
        sock.close()


def test_live_server_survives_torn_client_stream():
    with ProfileAggregator("127.0.0.1:0") as agg:
        raw = socket.create_connection(
            (agg.address.host, agg.address.port), timeout=5.0
        )
        # A length prefix promising bytes that never arrive: torn frame.
        raw.sendall(struct.pack(">I", 100) + b"short")
        raw.close()
        deadline = __import__("time").monotonic() + 5.0
        while (
            agg.metrics.counter("protocol_errors_total") < 1
            and __import__("time").monotonic() < deadline
        ):
            __import__("time").sleep(0.02)
        assert agg.metrics.counter("protocol_errors_total") == 1
        # And the server still accepts a healthy connection afterwards.
        sock = connect(agg.address)
        stream = sock.makefile("rwb")
        write_frame(stream, {"type": "ping"})
        assert read_frame(stream) == {"type": "pong"}
        sock.close()


def test_shutdown_frame_sets_the_event():
    with ProfileAggregator("127.0.0.1:0") as agg:
        sock = connect(agg.address)
        stream = sock.makefile("rwb")
        write_frame(stream, {"type": "shutdown"})
        assert agg.shutdown_requested.wait(timeout=5.0)
        sock.close()


def test_metrics_http_endpoint():
    with ProfileAggregator("127.0.0.1:0", metrics_port=0) as agg:
        agg.handle_frame(_delta_frame())
        host, port = agg.metrics_address
        with urllib.request.urlopen(f"http://{host}:{port}/metrics") as resp:
            body = resp.read().decode("utf-8")
            assert resp.headers["Content-Type"].startswith("text/plain")
        assert "pgmp_deltas_applied_total 1" in body
        assert "# TYPE pgmp_counts_ingested_total counter" in body
        with urllib.request.urlopen(f"http://{host}:{port}/healthz") as resp:
            assert resp.read() == b"ok\n"
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(f"http://{host}:{port}/nope")


def test_unix_socket_round_trip(tmp_path):
    if not hasattr(socket, "AF_UNIX"):
        pytest.skip("platform lacks unix-domain sockets")
    path = str(tmp_path / "pgmp.sock")
    counters = CounterSet(name="unix-ds")
    counters.increment(POINTS[0], by=2)
    with ProfileAggregator(f"unix:{path}") as agg:
        with ProfileShipper(counters, parse_address(f"unix:{path}")) as shipper:
            shipper.flush()
        assert agg.total_counts() == 2
