"""The rollout guard: canary, journal, breaker, and controller wiring."""

import socket
import time
import urllib.request

import pytest

from repro.core.counters import CounterSet
from repro.core.database import ProfileDatabase
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.scheme.pipeline import SchemeSystem
from repro.service import (
    ProfileAggregator,
    RecompileController,
    ServiceMetrics,
    connect,
    read_frame,
    scheme_canary,
    scheme_recompiler,
    write_frame,
)
from repro.service.rollout import (
    CanaryResult,
    CircuitBreaker,
    GenerationJournal,
    RolloutGuard,
)
from repro.testing.faults import poison_compiled_program


def _point(n: int) -> ProfilePoint:
    return ProfilePoint.for_location(SourceLocation("r.ss", n, n + 1))


def _db(counts: dict) -> ProfileDatabase:
    counters = CounterSet(name="rollout")
    for n, count in counts.items():
        counters.increment(_point(n), by=count)
    db = ProfileDatabase()
    db.record_counters(counters)
    return db


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- CircuitBreaker -----------------------------------------------------------


def test_breaker_closed_allows_and_success_resets():
    breaker = CircuitBreaker(failure_threshold=3)
    assert breaker.allow() == (True, 0.0)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    assert breaker.consecutive_failures == 0
    assert breaker.state == "closed"


def test_breaker_opens_after_threshold_with_backoff():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=2, backoff_base=10.0, clock=clock)
    assert not breaker.record_failure()
    assert breaker.record_failure()
    assert breaker.state == "open"
    allowed, retry_in = breaker.allow()
    assert not allowed
    assert retry_in == pytest.approx(10.0)


def test_breaker_half_open_admits_exactly_one_probe():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, backoff_base=10.0, clock=clock)
    breaker.record_failure()
    clock.advance(10.0)
    assert breaker.allow() == (True, 0.0)
    assert breaker.state == "half-open"
    allowed, _ = breaker.allow()
    assert not allowed, "only one probe per half-open period"
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow() == (True, 0.0)


def test_breaker_probe_failure_doubles_the_backoff():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, backoff_base=10.0, clock=clock)
    breaker.record_failure()  # open, 10s
    clock.advance(10.0)
    assert breaker.allow()[0]  # half-open probe
    breaker.record_failure()  # reopen, 20s
    assert breaker.state == "open"
    _, retry_in = breaker.allow()
    assert retry_in == pytest.approx(20.0)


def test_breaker_backoff_is_capped():
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=1, backoff_base=10.0, backoff_max=25.0, clock=clock
    )
    for _ in range(4):
        breaker.record_failure()
        clock.advance(breaker.allow()[1])
        breaker.allow()  # half-open
    breaker.record_failure()
    assert breaker.allow()[1] == pytest.approx(25.0)


def test_breaker_meters_state_and_opens(tmp_path):
    metrics = ServiceMetrics()
    breaker = CircuitBreaker(failure_threshold=1, metrics=metrics)
    assert metrics.gauge("breaker_state") == 0
    breaker.record_failure()
    assert metrics.gauge("breaker_state") == 1
    assert metrics.counter("breaker_opens_total") == 1


# -- GenerationJournal --------------------------------------------------------


def test_journal_records_and_supersedes():
    journal = GenerationJournal()
    journal.record(1, _db({1: 4}), {"a": 1.0})
    journal.record(2, _db({2: 4}), {"b": 1.0})
    live = journal.live()
    assert live is not None and live.generation == 2
    target = journal.rollback_target()
    assert target is not None and target.generation == 1
    assert [r.status for r in journal.generations()] == ["superseded", "live"]


def test_journal_roll_back_moves_live_pointer():
    journal = GenerationJournal()
    journal.record(1, _db({1: 4}), {})
    journal.record(2, _db({2: 4}), {})
    journal.roll_back(2, 1)
    live = journal.live()
    assert live is not None and live.generation == 1
    assert journal.generations()[-1].status == "rolled-back"
    # A rolled-back generation is never a rollback target again.
    assert journal.rollback_target() is None


def test_journal_snapshot_round_trips_the_merged_profile():
    journal = GenerationJournal()
    db = _db({1: 3, 2: 1})
    record = journal.record(1, db, {})
    restored = journal.load_snapshot(record)
    assert (
        restored.merged().as_key_mapping() == db.merged().as_key_mapping()
    )
    assert restored.merged_fingerprint() == db.merged_fingerprint()


def test_journal_persists_and_reloads(tmp_path):
    directory = tmp_path / "journal"
    journal = GenerationJournal(directory)
    journal.record(1, _db({1: 5}), {"k": 0.5})
    journal.record(2, _db({2: 5}), {"k": 1.0})
    journal.quarantine("fp-bad", 2, "test reason")

    reloaded = GenerationJournal(directory)
    live = reloaded.live()
    assert live is not None and live.generation == 2
    assert live.baseline == {"k": 1.0}
    assert reloaded.is_quarantined("fp-bad")
    target = reloaded.rollback_target()
    assert target is not None and target.generation == 1
    snapshot = reloaded.load_snapshot(target)
    assert snapshot.merged_fingerprint() == _db({1: 5}).merged_fingerprint()


def test_journal_prunes_old_generations(tmp_path):
    journal = GenerationJournal(tmp_path / "j", max_generations=2)
    for generation in (1, 2, 3, 4):
        journal.record(generation, _db({generation: 1}), {})
    records = journal.generations()
    assert [r.generation for r in records] == [3, 4]
    remaining = sorted(
        p.name for p in (tmp_path / "j").glob("gen-*.profile.json")
    )
    assert remaining == ["gen-00003.profile.json", "gen-00004.profile.json"]


def test_corrupt_journal_degrades_to_empty(tmp_path):
    directory = tmp_path / "j"
    journal = GenerationJournal(directory)
    journal.record(1, _db({1: 1}), {})
    (directory / "journal.json").write_text("{not json", encoding="utf-8")
    reloaded = GenerationJournal(directory)
    assert reloaded.live() is None
    # Still usable after the bad load.
    reloaded.record(1, _db({1: 1}), {})
    assert reloaded.live() is not None


def test_journal_quarantine_clear():
    journal = GenerationJournal()
    journal.quarantine("fp", 1, "why")
    journal.quarantine("fp", 1, "why again")  # deduplicated
    assert len(journal.quarantine_entries()) == 1
    assert journal.clear_quarantine("fp") == 1
    assert not journal.is_quarantined("fp")


def test_journal_needs_room_to_roll_back():
    with pytest.raises(ValueError):
        GenerationJournal(max_generations=1)


# -- scheme_canary ------------------------------------------------------------

PROGRAM = """
(define (double n) (* n 2))
(display (double 20))
(double 21)
"""


def _system() -> SchemeSystem:
    return SchemeSystem(policy="warn")


def test_canary_passes_a_healthy_candidate():
    system = _system()
    candidate = system.compile(PROGRAM, "canary.ss")
    validate = scheme_canary(system)
    result = validate(candidate)
    assert result.passed, result.failures
    assert result.probes == 1
    assert result.latencies


def test_canary_catches_a_misbehaving_artifact():
    system = _system()
    candidate = system.compile(PROGRAM, "canary.ss")
    poison_compiled_program(candidate, value=999)
    result = scheme_canary(system)(candidate)
    assert not result.passed
    assert any("diverged" in failure for failure in result.failures)


def test_canary_budget_sanity_check():
    system = _system()
    candidate = system.compile(PROGRAM, "canary.ss")
    result = scheme_canary(system, budget=1)(candidate)
    assert not result.passed
    assert any("budget" in failure for failure in result.failures)


def test_canary_runs_extra_probes():
    system = _system()
    candidate = system.compile(PROGRAM, "canary.ss")
    probe = "(+ 1 2)"
    result = scheme_canary(system, probes=[(probe, "probe.ss")])(candidate)
    assert result.passed, result.failures
    assert result.probes == 2


# -- RolloutGuard -------------------------------------------------------------


def test_guard_without_validator_trivially_passes():
    guard = RolloutGuard()
    result = guard.validate(object())
    assert result.passed and result.probes == 0


def test_guard_counts_canary_failures():
    metrics = ServiceMetrics()
    guard = RolloutGuard(
        validator=lambda candidate: CanaryResult(
            passed=False, probes=1, failures=("nope",)
        ),
        metrics=metrics,
    )
    assert not guard.validate(object()).passed
    assert metrics.counter("canary_failures_total") == 1


def test_guard_watch_window_blows_error_budget():
    clock = FakeClock()
    guard = RolloutGuard(rollback_window=30.0, error_budget=2, clock=clock)
    guard.begin_watch(1)
    assert guard.observe(True) is None
    assert guard.observe(False) is None
    trigger = guard.observe(False)
    assert trigger is not None and "error budget" in trigger


def test_guard_watch_window_expires_quietly():
    clock = FakeClock()
    guard = RolloutGuard(rollback_window=30.0, error_budget=1, clock=clock)
    guard.begin_watch(1)
    clock.advance(31.0)
    assert guard.observe(False) is None, "window over: rollout is confirmed"
    assert not guard.watching


def test_guard_latency_slo_breaches():
    clock = FakeClock()
    guard = RolloutGuard(
        rollback_window=30.0,
        error_budget=100,
        latency_slo=0.1,
        latency_breach_limit=2,
        clock=clock,
    )
    guard.begin_watch(1)
    assert guard.observe(True, latency=0.5) is None
    assert guard.observe(True, latency=0.05) is None  # resets the streak
    assert guard.observe(True, latency=0.5) is None
    trigger = guard.observe(True, latency=0.5)
    assert trigger is not None and "latency SLO" in trigger


# -- controller wiring --------------------------------------------------------


def _controller(metrics=None, guard=None, **kwargs):
    system = _system()
    controller = RecompileController(
        scheme_recompiler(system, PROGRAM, "rollout.ss"),
        threshold=0.05,
        metrics=metrics,
        guard=guard,
        **kwargs,
    )
    return system, controller


def test_guarded_swap_journals_and_watches():
    metrics = ServiceMetrics()
    guard = RolloutGuard(metrics=metrics)
    _, controller = _controller(metrics=metrics, guard=guard)
    decision = controller.maybe_recompile(_db({1: 10}))
    assert decision.recompiled
    live = guard.journal.live()
    assert live is not None and live.generation == 1
    assert guard.watching
    assert metrics.counter("rollouts_total") == 1
    assert metrics.gauge("rollout_generation") == 1


def test_canary_failure_keeps_the_deployed_artifact():
    metrics = ServiceMetrics()
    system = _system()
    guard = RolloutGuard(validator=scheme_canary(system), metrics=metrics)
    controller = RecompileController(
        scheme_recompiler(system, PROGRAM, "rollout.ss"),
        threshold=0.05,
        metrics=metrics,
        guard=guard,
    )
    first = controller.maybe_recompile(_db({1: 10}))
    assert first.recompiled
    deployed = controller.artifact()

    from repro.testing.faults import poisoned_recompiles

    with poisoned_recompiles(controller):
        decision = controller.maybe_recompile(_db({2: 10}))
    assert not decision.recompiled
    assert decision.reason.startswith("canary failed")
    assert controller.artifact() is deployed
    assert controller.generation == 1
    assert metrics.counter("canary_failures_total") == 1
    live = guard.journal.live()
    assert live is not None and live.generation == 1


def test_recompile_exception_counts_against_the_breaker():
    guard = RolloutGuard(
        breaker=CircuitBreaker(failure_threshold=1, backoff_base=60.0)
    )

    def explode(db):
        raise RuntimeError("codegen bug")

    controller = RecompileController(explode, guard=guard)
    with pytest.raises(RuntimeError):
        controller.maybe_recompile(_db({1: 10}))
    assert guard.breaker.state == "open"
    decision = controller.maybe_recompile(_db({1: 10}))
    assert not decision.recompiled
    assert decision.reason.startswith("circuit breaker open")


def test_quarantined_fingerprint_blocks_recompiles():
    guard = RolloutGuard()
    _, controller = _controller(guard=guard)
    db = _db({1: 10})
    guard.journal.quarantine(db.merged_fingerprint(), 0, "known bad")
    decision = controller.maybe_recompile(db)
    assert not decision.recompiled
    assert "quarantined" in decision.reason
    assert controller.artifact() is None


def test_manual_rollback_restores_previous_generation():
    metrics = ServiceMetrics()
    guard = RolloutGuard(metrics=metrics)
    _, controller = _controller(metrics=metrics, guard=guard)
    controller.maybe_recompile(_db({1: 10}))
    first_artifact = controller.artifact()
    controller.maybe_recompile(_db({1: 10, 2: 40}))
    assert controller.generation == 2

    decision = controller.rollback(reason="operator says so")
    assert decision.recompiled
    assert decision.generation == 1
    assert "rolled back generation 2 -> 1" in decision.reason
    assert controller.artifact() is first_artifact
    assert metrics.counter("rollbacks_total") == 1
    live = guard.journal.live()
    assert live is not None and live.generation == 1
    # The offending generation's profile is quarantined.
    assert guard.journal.is_quarantined(
        _db({1: 10, 2: 40}).merged_fingerprint()
    )


def test_rollback_without_history_is_a_noop():
    guard = RolloutGuard()
    _, controller = _controller(guard=guard)
    decision = controller.rollback()
    assert not decision.recompiled
    assert decision.reason == "nothing to roll back to"


def test_rollback_without_guard_is_a_noop():
    _, controller = _controller()
    decision = controller.rollback()
    assert not decision.recompiled
    assert decision.reason == "no rollout guard configured"


def test_observe_health_triggers_automatic_rollback():
    guard = RolloutGuard(rollback_window=60.0, error_budget=2)
    _, controller = _controller(guard=guard)
    controller.maybe_recompile(_db({1: 10}))
    controller.maybe_recompile(_db({2: 10}))
    assert controller.observe_health(True) is None
    assert controller.observe_health(False) is None
    decision = controller.observe_health(False)
    assert decision is not None and decision.recompiled
    assert decision.generation == 1
    assert "error budget" in decision.reason


def test_resume_from_journal(tmp_path):
    journal_dir = tmp_path / "journal"
    guard = RolloutGuard(journal=GenerationJournal(journal_dir))
    _, controller = _controller(guard=guard)
    controller.maybe_recompile(_db({1: 10}))
    baseline = controller.baseline_weights()

    # A fresh process: new system, new controller, same journal.
    guard2 = RolloutGuard(journal=GenerationJournal(journal_dir))
    _, restarted = _controller(guard=guard2)
    decision = restarted.resume_from_journal()
    assert decision is not None and decision.recompiled
    assert decision.reason == "resumed generation 1 from journal"
    assert restarted.generation == 1
    assert restarted.artifact() is not None
    assert restarted.baseline_weights() == baseline
    # Same profile again: nothing drifted, nothing recompiles.
    follow_up = restarted.maybe_recompile(_db({1: 10}))
    assert follow_up.reason == "drift within threshold"


def test_resume_is_a_noop_once_deployed():
    guard = RolloutGuard()
    _, controller = _controller(guard=guard)
    controller.maybe_recompile(_db({1: 10}))
    assert controller.resume_from_journal() is None


# -- aggregator integration ---------------------------------------------------


def _guarded_aggregator(**kwargs):
    metrics = ServiceMetrics()
    system = _system()
    guard = RolloutGuard(metrics=metrics)
    controller = RecompileController(
        scheme_recompiler(system, PROGRAM, "rollout.ss"),
        threshold=0.05,
        metrics=metrics,
        guard=guard,
    )
    return ProfileAggregator(
        "127.0.0.1:0", controller=controller, metrics=metrics, **kwargs
    )


def test_stats_frame_reports_rollout_state():
    with _guarded_aggregator() as agg:
        agg.controller.maybe_recompile(_db({1: 10}))
        stats = agg.handle_frame({"type": "stats"})
        assert stats["rollout"]["generation"] == 1
        assert stats["rollout"]["breaker"] == "closed"
        assert stats["rollout"]["quarantined"] == 0


def test_stats_frame_without_guard_has_no_rollout_section():
    controller = RecompileController(lambda db: "artifact")
    with ProfileAggregator("127.0.0.1:0", controller=controller) as agg:
        assert "rollout" not in agg.handle_frame({"type": "stats"})


def test_rollback_frame_over_the_wire():
    with _guarded_aggregator() as agg:
        agg.controller.maybe_recompile(_db({1: 10}))
        agg.controller.maybe_recompile(_db({2: 10}))
        sock = connect(agg.address)
        stream = sock.makefile("rwb")
        write_frame(stream, {"type": "rollback", "reason": "wire test"})
        stream.flush()
        response = read_frame(stream)
        sock.close()
        assert response["type"] == "rollback"
        assert response["status"] == "ok"
        assert response["generation"] == 1
        assert agg.controller.guard.journal.live().generation == 1
        # Nothing left to roll back to now.
        again = agg.handle_frame({"type": "rollback"})
        assert again["status"] == "unavailable"


def test_rollback_frame_without_controller():
    with ProfileAggregator("127.0.0.1:0") as agg:
        response = agg.handle_frame({"type": "rollback"})
        assert response["status"] == "unavailable"


def test_observe_frame_feeds_the_watch_window():
    with _guarded_aggregator() as agg:
        agg.controller.guard.error_budget = 1
        agg.controller.maybe_recompile(_db({1: 10}))
        agg.controller.maybe_recompile(_db({2: 10}))
        ack = agg.handle_frame({"type": "observe", "ok": True})
        assert ack["status"] == "observed" and not ack["rolled_back"]
        ack = agg.handle_frame({"type": "observe", "ok": False})
        assert ack["rolled_back"]
        assert ack["generation"] == 1
        bad = agg.handle_frame({"type": "observe", "ok": "yes"})
        assert bad["status"] == "rejected"


def test_healthz_reports_generation_and_breaker():
    with _guarded_aggregator(metrics_port=0) as agg:
        agg.controller.maybe_recompile(_db({1: 10}))
        host, port = agg.metrics_address
        with urllib.request.urlopen(f"http://{host}:{port}/healthz") as resp:
            assert resp.read() == b"ok generation=1 breaker=closed\n"


# -- read timeout + stop result ----------------------------------------------


def test_stalled_client_is_dropped_after_read_timeout():
    with ProfileAggregator("127.0.0.1:0", read_timeout=0.2) as agg:
        raw = socket.create_connection(
            (agg.address.host, agg.address.port), timeout=5.0
        )
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if agg.metrics.counter("handler_read_timeouts_total") >= 1:
                    break
                time.sleep(0.05)
            assert agg.metrics.counter("handler_read_timeouts_total") >= 1
        finally:
            raw.close()
        # Healthy clients are still served.
        sock = connect(agg.address)
        stream = sock.makefile("rwb")
        write_frame(stream, {"type": "ping"})
        assert read_frame(stream) == {"type": "pong"}
        sock.close()


def test_zero_read_timeout_disables_the_deadline():
    agg = ProfileAggregator("127.0.0.1:0", read_timeout=0)
    assert agg.read_timeout is None


def test_stop_returns_a_clean_result():
    agg = ProfileAggregator("127.0.0.1:0").start()
    result = agg.stop()
    assert result.clean
    assert result.stuck_threads == []
    assert str(result) == "stopped cleanly"


def test_stop_reports_a_stuck_thread():
    import threading

    agg = ProfileAggregator("127.0.0.1:0").start()
    release = threading.Event()
    wedged = threading.Thread(
        target=release.wait, name="pgmp-test-wedged", daemon=True
    )
    wedged.start()
    # Simulate a handler/housekeeper that ignores the stop signal.
    agg._housekeeper = wedged
    try:
        result = agg.stop(join_timeout=0.1)
        assert not result.clean
        assert "pgmp-test-wedged" in result.stuck_threads
        assert "stuck thread" in str(result)
    finally:
        release.set()


# -- static verification (pre-canary) ------------------------------------------


def test_static_verifier_passes_a_healthy_candidate():
    from repro.service import scheme_static_verifier

    system = _system()
    candidate = system.compile(PROGRAM, "rollout.ss")
    verify = scheme_static_verifier()
    result = verify(candidate)
    assert result.passed
    assert result.artifacts == 4
    assert "static verify passed" in str(result)


def test_static_verifier_rejects_a_poisoned_candidate():
    from repro.service import scheme_static_verifier

    system = _system()
    candidate = system.compile(PROGRAM, "rollout.ss")
    poison_compiled_program(candidate)
    result = scheme_static_verifier()(candidate)
    assert not result.passed
    assert result.findings
    assert "PGMP" in result.findings[0]
    assert "static verify FAILED" in str(result)


def test_guard_without_static_verifier_passes_vacuously():
    guard = RolloutGuard()
    result = guard.verify(object())
    assert result.passed
    assert result.artifacts == 0


def test_guard_verify_records_metrics():
    from repro.service import scheme_static_verifier

    metrics = ServiceMetrics()
    system = _system()
    guard = RolloutGuard(static_verifier=scheme_static_verifier(), metrics=metrics)
    healthy = system.compile(PROGRAM, "rollout.ss")
    assert guard.verify(healthy).passed
    assert metrics.counter("artifact_verify_passes_total") == 4
    poisoned = SchemeSystem(policy="warn").compile(PROGRAM, "rollout.ss")
    poison_compiled_program(poisoned)
    assert not guard.verify(poisoned).passed
    assert metrics.counter("artifact_verify_failures_total") == 1


def test_poisoned_candidate_is_rejected_statically_before_the_canary():
    """The mutation gate: a tampered artifact must die at the static
    verifier — the canary (disabled here: it would fail the test if it
    ever ran) never spends a probe on it."""
    from repro.service import scheme_static_verifier

    def canary_must_not_run(candidate):
        raise AssertionError("canary ran on a statically-invalid candidate")

    metrics = ServiceMetrics()
    system = _system()
    guard = RolloutGuard(
        static_verifier=scheme_static_verifier(),
        validator=canary_must_not_run,
        metrics=metrics,
        breaker=CircuitBreaker(failure_threshold=2, backoff_base=60.0),
    )
    controller = RecompileController(
        scheme_recompiler(system, PROGRAM, "rollout.ss"),
        threshold=0.05,
        metrics=metrics,
        guard=guard,
    )

    from repro.testing.faults import poisoned_recompiles

    with poisoned_recompiles(controller):
        decision = controller.maybe_recompile(_db({1: 10}))
    assert not decision.recompiled
    assert decision.reason.startswith("static verify failed")
    assert controller.artifact() is None, "nothing was deployed"
    assert controller.generation == 0
    assert metrics.counter("artifact_verify_failures_total") == 1
    assert metrics.counter("canary_failures_total") == 0
    assert guard.breaker.consecutive_failures == 1, "static failure strikes"
    assert guard.journal.live() is None


def test_static_pass_hands_off_to_the_canary():
    from repro.service import scheme_static_verifier

    metrics = ServiceMetrics()
    system = _system()
    canary_ran = []

    def tracking_canary(candidate):
        canary_ran.append(candidate)
        return scheme_canary(system)(candidate)

    guard = RolloutGuard(
        static_verifier=scheme_static_verifier(),
        validator=tracking_canary,
        metrics=metrics,
    )
    controller = RecompileController(
        scheme_recompiler(system, PROGRAM, "rollout.ss"),
        threshold=0.05,
        metrics=metrics,
        guard=guard,
    )
    decision = controller.maybe_recompile(_db({1: 10}))
    assert decision.recompiled
    assert len(canary_ran) == 1, "static pass then canary, in that order"
    assert metrics.counter("artifact_verify_passes_total") == 4
    assert metrics.counter("artifact_verify_failures_total") == 0
