"""Drift measurement and the online recompilation controller."""

import pytest

from repro.core.counters import CounterSet
from repro.core.database import ProfileDatabase
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.service.controller import (
    RecompilationLog,
    RecompileController,
    weight_drift,
)
from repro.service.metrics import ServiceMetrics


def _point(n: int) -> ProfilePoint:
    return ProfilePoint.for_location(SourceLocation("c.ss", n, n + 1))


def _db(counts: dict[int, int]) -> ProfileDatabase:
    counters = CounterSet(name="ctrl")
    for n, count in counts.items():
        counters.increment(_point(n), by=count)
    db = ProfileDatabase()
    db.record_counters(counters)
    return db


# -- weight_drift ---------------------------------------------------------------


def test_drift_of_identical_mappings_is_zero():
    weights = {"a": 0.5, "b": 1.0}
    assert weight_drift(weights, weights) == 0.0
    assert weight_drift({}, {}) == 0.0


def test_drift_is_the_largest_single_move():
    before = {"a": 0.2, "b": 0.9}
    after = {"a": 0.25, "b": 0.5}
    assert weight_drift(before, after) == pytest.approx(0.4)


def test_drift_counts_new_and_vanished_points():
    assert weight_drift({}, {"a": 1.0}) == 1.0
    assert weight_drift({"a": 0.7}, {}) == pytest.approx(0.7)


def test_drift_is_symmetric():
    before, after = {"a": 0.1}, {"a": 0.9, "b": 0.3}
    assert weight_drift(before, after) == weight_drift(after, before)


# -- RecompileController --------------------------------------------------------


def test_no_data_no_baseline_skips():
    calls = []
    controller = RecompileController(lambda db: calls.append(db))
    decision = controller.maybe_recompile(ProfileDatabase())
    assert not decision.recompiled
    assert decision.reason == "no profile data yet"
    assert calls == []
    assert controller.artifact() is None


def test_first_data_always_recompiles():
    controller = RecompileController(lambda db: "artifact-1", threshold=0.9)
    decision = controller.maybe_recompile(_db({1: 10, 2: 5}))
    assert decision.recompiled
    assert decision.reason == "first optimization"
    assert decision.drift == 1.0  # hottest point went 0 -> 1
    assert decision.generation == 1
    assert controller.artifact() == "artifact-1"
    assert controller.baseline_weights() is not None
    assert decision.pause_seconds >= 0.0


def test_within_threshold_keeps_the_artifact():
    controller = RecompileController(lambda db: object(), threshold=0.5)
    controller.maybe_recompile(_db({1: 10, 2: 5}))
    first = controller.artifact()
    # Same ratios -> same weights -> zero drift.
    decision = controller.maybe_recompile(_db({1: 20, 2: 10}))
    assert not decision.recompiled
    assert decision.reason == "drift within threshold"
    assert controller.artifact() is first
    assert controller.generation == 1


def test_drift_past_threshold_swaps():
    artifacts = iter(["gen1", "gen2"])
    controller = RecompileController(lambda db: next(artifacts), threshold=0.3)
    controller.maybe_recompile(_db({1: 10, 2: 5}))
    # Point 2 goes from weight 0.5 to 1.0 and point 1 from 1.0 to 0.1.
    decision = controller.maybe_recompile(_db({1: 1, 2: 10}))
    assert decision.recompiled
    assert decision.reason == "drift exceeded threshold"
    assert controller.artifact() == "gen2"
    assert controller.generation == 2


def test_failed_recompile_changes_nothing():
    controller = RecompileController(lambda db: "ok", threshold=0.1)
    controller.maybe_recompile(_db({1: 10}))
    baseline = controller.baseline_weights()

    def explode(db):
        raise RuntimeError("compiler on fire")

    controller._recompile = explode
    with pytest.raises(RuntimeError):
        controller.maybe_recompile(_db({2: 10}))
    assert controller.artifact() == "ok"
    assert controller.baseline_weights() == baseline
    assert controller.generation == 1


def test_decisions_are_logged_and_metrics_recorded():
    log = RecompilationLog()
    metrics = ServiceMetrics()
    controller = RecompileController(
        lambda db: "a", threshold=0.5, log=log, metrics=metrics
    )
    controller.maybe_recompile(ProfileDatabase())
    controller.maybe_recompile(_db({1: 3}))
    controller.maybe_recompile(_db({1: 6}))
    assert len(log) == 3
    assert len(log.recompilations()) == 1
    assert metrics.counter("recompilations_total") == 1
    assert metrics.gauge("recompile_generation") == 1
    assert metrics.latency_count("recompile_pause") == 1
    assert "gen 1" in str(log.recompilations()[0])


def test_threshold_must_be_a_probability():
    with pytest.raises(ValueError):
        RecompileController(lambda db: None, threshold=1.5)
    with pytest.raises(ValueError):
        RecompileController(lambda db: None, threshold=-0.1)
