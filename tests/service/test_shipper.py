"""The shipper client: delta cutting, backpressure, reconnect, spill."""

import socket
import time

import pytest

from repro.core.counters import CounterSet, ShardedCounterSet
from repro.core.errors import BackpressureError
from repro.core.policy import ProfilePolicy
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.service import ProfileAggregator, ProfileShipper
from repro.service.spill import SpillLog

POINTS = [
    ProfilePoint.for_location(SourceLocation("w.ss", n, n + 1)) for n in range(4)
]


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _dead_address() -> str:
    return f"127.0.0.1:{_free_port()}"


@pytest.fixture
def aggregator():
    with ProfileAggregator("127.0.0.1:0") as agg:
        yield agg


def test_flush_ships_only_increments_since_last_flush(aggregator):
    counters = CounterSet(name="ds")
    with ProfileShipper(counters, aggregator.address) as shipper:
        counters.increment(POINTS[0], by=5)
        first = shipper.flush()
        assert first is not None and first.total() == 5
        counters.increment(POINTS[0], by=2)
        counters.increment(POINTS[1], by=3)
        second = shipper.flush()
        assert second is not None and second.total() == 5
        assert second.counts[POINTS[0].key()] == 2
        assert shipper.flush() is None  # nothing accumulated
    assert aggregator.total_counts() == 10
    assert shipper.shipped_deltas == 2


def test_maybe_flush_respects_threshold(aggregator):
    counters = CounterSet(name="ds")
    with ProfileShipper(
        counters, aggregator.address, flush_threshold=10
    ) as shipper:
        counters.increment(POINTS[0], by=9)
        assert shipper.maybe_flush() is None
        assert shipper.pending_counts() == 9
        counters.increment(POINTS[0], by=1)
        delta = shipper.maybe_flush()
        assert delta is not None and delta.total() == 10


def test_sharded_counters_ship_cleanly(aggregator):
    counters = ShardedCounterSet(name="ds")
    counters.increment(POINTS[0], by=4)
    with ProfileShipper(counters, aggregator.address) as shipper:
        shipper.flush()
    assert aggregator.total_counts() == 4


def test_unreachable_aggregator_buffers_and_backs_off():
    counters = CounterSet(name="ds")
    shipper = ProfileShipper(
        counters,
        _dead_address(),
        policy=ProfilePolicy.IGNORE,
        backoff_base=30.0,  # long enough that the retry gate stays shut
    )
    counters.increment(POINTS[0], by=3)
    assert shipper.flush() is not None
    assert shipper.shipped_deltas == 0
    assert len(shipper._queue) == 1
    assert shipper._retry_at > time.monotonic()
    degr = shipper.degradations.entries()
    assert any("unreachable" in entry.reason for entry in degr)


def test_backoff_schedule_is_exponential_and_capped():
    counters = CounterSet(name="ds")
    shipper = ProfileShipper(
        counters,
        _dead_address(),
        policy=ProfilePolicy.IGNORE,
        backoff_base=0.05,
        backoff_max=0.2,
        backoff_jitter=0.0,  # pin the nominal schedule for exact checks
    )
    delays = []
    for _ in range(4):
        shipper._retry_at = 0.0  # reopen the gate for the next attempt
        before = time.monotonic()
        counters.increment(POINTS[0])
        shipper.flush()
        delays.append(shipper._retry_at - before)
    assert delays[0] == pytest.approx(0.05, abs=0.03)
    assert delays[1] == pytest.approx(0.10, abs=0.03)
    assert delays[2] == pytest.approx(0.20, abs=0.03)
    assert delays[3] == pytest.approx(0.20, abs=0.03)  # capped


def test_backoff_jitter_decorrelates_retries():
    """The thundering-herd regression: two shippers failing in lockstep
    must not compute identical retry instants (unless jitter is 0)."""
    import random

    def delays_for(rng):
        counters = CounterSet(name="ds")
        shipper = ProfileShipper(
            counters,
            _dead_address(),
            policy=ProfilePolicy.IGNORE,
            backoff_base=0.05,
            backoff_max=100.0,  # never capped: pure schedule comparison
            backoff_jitter=0.5,
            rng=rng,
        )
        out = []
        for _ in range(4):
            shipper._retry_at = 0.0
            before = time.monotonic()
            counters.increment(POINTS[0])
            shipper.flush()
            out.append(shipper._retry_at - before)
        return out

    a = delays_for(random.Random(1))
    b = delays_for(random.Random(2))
    assert a != b  # de-correlated schedules
    for i, (da, db) in enumerate(zip(a, b)):
        nominal = 0.05 * (2**i)
        # each delay stays within ±50% of its nominal exponential step
        # (loose upper slack for scheduler latency between the failure
        # and the clock read)
        assert 0.5 * nominal <= da <= 1.5 * nominal + 0.05
        assert 0.5 * nominal <= db <= 1.5 * nominal + 0.05
    # determinism: the same seed reproduces the same schedule (modulo
    # clock noise), which is what makes jitter testable at all
    c = delays_for(random.Random(1))
    assert all(abs(x - y) < 0.05 for x, y in zip(a, c))


def test_queue_overflow_without_spill_drops_oldest():
    counters = CounterSet(name="ds")
    shipper = ProfileShipper(
        counters,
        _dead_address(),
        policy=ProfilePolicy.IGNORE,
        max_pending=2,
        backoff_base=30.0,
    )
    for _ in range(4):
        counters.increment(POINTS[0])
        shipper.flush()
    assert len(shipper._queue) == 2
    assert shipper.dropped_deltas == 2
    # The queue holds the *newest* deltas; the oldest were sacrificed.
    assert [delta.seq for delta in shipper._queue] == [3, 4]


def test_queue_overflow_under_strict_raises_backpressure():
    from repro.core.errors import ProfileError

    counters = CounterSet(name="ds")
    shipper = ProfileShipper(
        counters,
        _dead_address(),
        policy=ProfilePolicy.STRICT,
        max_pending=1,
        backoff_base=30.0,
    )
    counters.increment(POINTS[0])
    # Strict surfaces the unreachable aggregator immediately; the delta
    # stays queued for whoever catches and retries.
    with pytest.raises(ProfileError):
        shipper.flush()
    counters.increment(POINTS[0])
    with pytest.raises(BackpressureError):
        shipper.flush()


def test_queue_overflow_spills_to_disk_and_replays(tmp_path):
    spill_path = tmp_path / "spill.bin"
    counters = CounterSet(name="ds")
    dead = _dead_address()
    shipper = ProfileShipper(
        counters,
        dead,
        policy=ProfilePolicy.IGNORE,
        max_pending=1,
        spill_path=spill_path,
        backoff_base=30.0,
    )
    for _ in range(3):
        counters.increment(POINTS[0])
        shipper.flush()
    assert shipper.spilled_deltas == 2
    assert shipper.dropped_deltas == 0
    assert len(SpillLog(spill_path)) == 2

    # The aggregator comes up on the address the shipper was aiming at.
    with ProfileAggregator(dead) as aggregator:
        shipper._retry_at = 0.0
        shipper.flush()
        shipper.close()
        assert aggregator.total_counts() == 3, "spilled + queued all arrive"
    assert shipper.replayed_deltas == 2
    assert shipper.shipped_deltas == 3
    assert SpillLog(spill_path).size_bytes() == 0, "spill cleared after replay"


def test_close_spills_undelivered_deltas(tmp_path):
    spill_path = tmp_path / "spill.bin"
    counters = CounterSet(name="ds")
    shipper = ProfileShipper(
        counters,
        _dead_address(),
        policy=ProfilePolicy.IGNORE,
        spill_path=spill_path,
        backoff_base=30.0,
    )
    counters.increment(POINTS[0], by=7)
    shipper.flush()
    shipper.close()
    frames, torn = SpillLog(spill_path).replay()
    assert not torn
    assert len(frames) == 1
    assert frames[0]["counts"] == {POINTS[0].key(): 7}


def test_close_without_spill_drops_and_degrades():
    counters = CounterSet(name="ds")
    shipper = ProfileShipper(
        counters,
        _dead_address(),
        policy=ProfilePolicy.IGNORE,
        backoff_base=30.0,
    )
    counters.increment(POINTS[0])
    shipper.flush()
    shipper.close()
    assert shipper.dropped_deltas == 1
    assert any(
        "undelivered at close" in entry.reason
        for entry in shipper.degradations.entries()
    )


def test_counter_rewind_rebaselines_with_degradation(aggregator):
    counters = CounterSet(name="ds")
    with ProfileShipper(
        counters, aggregator.address, policy=ProfilePolicy.IGNORE
    ) as shipper:
        counters.increment(POINTS[0], by=10)
        shipper.flush()
        counters.clear()
        counters.increment(POINTS[0], by=4)
        delta = shipper.flush()
        assert delta is not None
        assert delta.counts == {POINTS[0].key(): 4}
        assert any(
            "went backwards" in entry.reason
            for entry in shipper.degradations.entries()
        )
    assert aggregator.total_counts() == 14


def test_background_thread_flushes_periodically(aggregator):
    counters = CounterSet(name="ds")
    shipper = ProfileShipper(
        counters, aggregator.address, flush_interval=0.05
    ).start()
    try:
        counters.increment(POINTS[0], by=6)
        deadline = time.monotonic() + 5.0
        while aggregator.total_counts() < 6 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert aggregator.total_counts() == 6
    finally:
        shipper.close()
