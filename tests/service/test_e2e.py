"""End-to-end acceptance for the continuous-profiling service.

Three contracts the whole pipeline — counters → shipper → wire →
aggregator → merged database → controller — must honor:

1. four *concurrent* shippers lose zero counts (the acked at-least-once
   protocol plus ledger dedup is exact, not approximate);
2. the online recompilation controller's re-expansion reproduces the
   exact optimization decisions the offline ``pgmp optimize`` workflow
   makes on the same merged profile (byte-identical expansion);
3. the shipped fleet works over the real CLI: ``pgmp serve`` plus four
   ``pgmp ship`` worker *processes*, with the aggregator's ingest totals
   matching the workers' shipped totals exactly.
"""

import os
import re
import subprocess
import sys
import threading

from repro.core.counters import CounterSet
from repro.core.database import source_fingerprint
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.scheme.core_forms import unparse_string
from repro.scheme.pipeline import SchemeSystem
from repro.service import (
    ProfileAggregator,
    ProfileShipper,
    RecompileController,
    connect,
    scheme_recompiler,
    write_frame,
)

POINTS = [
    ProfilePoint.for_location(SourceLocation("e2e.ss", n, n + 1)) for n in range(8)
]

CASE_PROGRAM = """
(define (classify n)
  (case (modulo n 7)
    [(0) 'zero]
    [(1 2) 'small]
    [(3 4) 'mid]
    [(5 6) 'big]))
(define (run n acc)
  (if (= n 0) acc (run (- n 1) (cons (classify n) acc))))
(length (run 40 '()))
"""


# -- 1: four concurrent shippers, zero loss -------------------------------------


def test_four_concurrent_shippers_lose_zero_counts():
    workers = 4
    rounds = 25
    with ProfileAggregator("127.0.0.1:0") as agg:
        errors: list[BaseException] = []
        shippers: list[ProfileShipper] = []

        def worker(index: int) -> None:
            counters = CounterSet(name="fleet")
            shipper = ProfileShipper(
                counters, agg.address, dataset="fleet", flush_threshold=1
            )
            shippers.append(shipper)
            try:
                for round_no in range(rounds):
                    for offset, point in enumerate(POINTS):
                        counters.increment(point, by=index + offset + 1)
                    if round_no % 3 == index % 3:
                        shipper.flush()
                shipper.close()  # final flush drains whatever is pending
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(index,)) for index in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors

        expected = sum(
            rounds * (index + offset + 1)
            for index in range(workers)
            for offset in range(len(POINTS))
        )
        assert agg.total_counts() == expected, "no count lost or double-applied"
        assert sum(s.shipped_counts for s in shippers) == expected
        assert sum(s.dropped_deltas for s in shippers) == 0
        stats = agg.handle_frame({"type": "stats"})
        assert len(stats["shippers"]) == workers


# -- 2: online recompilation == offline optimize --------------------------------


def _case_system() -> SchemeSystem:
    from repro.casestudies import CASE_LIBRARY, EXCLUSIVE_COND_LIBRARY

    system = SchemeSystem(policy="warn")
    system.load_library(EXCLUSIVE_COND_LIBRARY, "exclusive-cond.ss")
    system.load_library(CASE_LIBRARY, "case.ss")
    return system


def test_online_recompile_matches_offline_optimize():
    # Collect a profile the way a worker would: one instrumented run.
    profiling = _case_system()
    counters = CounterSet(name="app")
    profiling.profile_run(CASE_PROGRAM, "app.ss", counters=counters)

    # Offline workflow: load the recorded profile, re-expand (pgmp optimize).
    offline = _case_system()
    offline.hot_swap_profile(profiling.profile_db)
    offline_text = unparse_string(offline.compile(CASE_PROGRAM, "app.ss"))

    # Online workflow: the same counters travel the wire and the controller
    # re-expands against the *merged* database.
    with ProfileAggregator(
        "127.0.0.1:0", sources={"app.ss": CASE_PROGRAM}
    ) as agg:
        shipper = ProfileShipper(
            counters,
            agg.address,
            dataset="app",
            fingerprints={"app.ss": source_fingerprint(CASE_PROGRAM)},
        )
        shipper.flush()
        shipper.close()
        assert agg.total_counts() == counters.total()
        merged = agg.merged_database()

    online = _case_system()
    controller = RecompileController(
        scheme_recompiler(online, CASE_PROGRAM, "app.ss"), threshold=0.05
    )
    decision = controller.maybe_recompile(merged)
    assert decision.recompiled
    online_text = unparse_string(controller.artifact())

    assert online_text == offline_text, (
        "the controller's re-expansion must reproduce the offline "
        "optimization decisions exactly"
    )
    # And the profile actually changed the expansion — the equality above
    # is not vacuous.
    unoptimized = _case_system()
    unoptimized_text = unparse_string(unoptimized.compile(CASE_PROGRAM, "app.ss"))
    assert online_text != unoptimized_text


# -- 3: the real CLI, four worker processes -------------------------------------

# No libraries needed: plain core forms keep the subprocess startup cheap.
CLI_PROGRAM = """
(define (spin n acc)
  (if (= n 0) acc (spin (- n 1) (+ acc n))))
(spin 25 0)
"""

_SHIPPED = re.compile(r";; shipped (\d+) counts in (\d+) delta\(s\)")
_APPLIED = re.compile(r"applied (\d+) delta\(s\) carrying (\d+) counts; (\d+) quarantined")


def _cli_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def test_fleet_of_cli_worker_processes(tmp_path):
    program = tmp_path / "app.ss"
    program.write_text(CLI_PROGRAM)
    env = _cli_env()

    serve = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.tools.cli",
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--checkpoint",
            str(tmp_path / "profile.json"),
        ],
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        banner = serve.stderr.readline()
        match = re.search(r"listening on (\S+)", banner)
        assert match, f"no listen banner in {banner!r}"
        address = match.group(1)

        workers = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.tools.cli",
                    "ship",
                    str(program),
                    "--connect",
                    address,
                    "--dataset",
                    "app",
                    "--runs",
                    "2",
                ],
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            for _ in range(4)
        ]
        shipped_counts = 0
        for worker in workers:
            _, stderr = worker.communicate(timeout=120)
            assert worker.returncode == 0, stderr
            match = _SHIPPED.search(stderr)
            assert match, f"no shipping summary in {stderr!r}"
            shipped_counts += int(match.group(1))
            assert "dropped 0" in stderr

        sock = connect(address)
        write_frame(sock.makefile("rwb"), {"type": "shutdown"})
        sock.close()
        _, serve_stderr = serve.communicate(timeout=60)
        assert serve.returncode == 0, serve_stderr
        match = _APPLIED.search(serve_stderr)
        assert match, f"no ingest summary in {serve_stderr!r}"
        applied_counts = int(match.group(2))
        assert applied_counts == shipped_counts > 0, "fleet lost zero counts"
        assert int(match.group(3)) == 0
        # The checkpoint the service left behind is an ordinary profile.
        from repro.core.database import ProfileDatabase

        assert ProfileDatabase.load(str(tmp_path / "profile.json")).point_count() > 0
    finally:
        if serve.poll() is None:
            serve.kill()
            serve.wait(timeout=30)
