"""Consistent-hash ring: routing stability, determinism, remap bounds."""

import subprocess
import sys

import pytest

from repro.core.errors import ServiceError
from repro.service.fleet import HashRing

KEYS = [f"file-{n}.scm:0-{n + 1}:1.0" for n in range(2000)]


def test_route_is_deterministic_and_total():
    ring = HashRing(["a", "b", "c"])
    first = [ring.route(key) for key in KEYS]
    second = [ring.route(key) for key in KEYS]
    assert first == second
    assert set(first) <= {"a", "b", "c"}


def test_every_member_owns_some_keys():
    ring = HashRing([str(n) for n in range(8)])
    owners = {ring.route(key) for key in KEYS}
    assert owners == set(ring.members)


def test_distribution_is_roughly_uniform():
    members = [str(n) for n in range(4)]
    ring = HashRing(members)
    load = {member: 0 for member in members}
    for key in KEYS:
        load[ring.route(key)] += 1
    expected = len(KEYS) / len(members)
    for member, count in load.items():
        # 64 virtual nodes per member keeps the spread well inside 2x.
        assert 0.4 * expected <= count <= 2.0 * expected, (member, load)


def test_adding_a_member_remaps_about_one_nth():
    ring = HashRing(["0", "1", "2", "3"])
    before = {key: ring.route(key) for key in KEYS}
    ring.add("4")
    moved = sum(1 for key in KEYS if ring.route(key) != before[key])
    # Ideal is 1/5 of keys; allow generous slack but require that the
    # vast majority of keys did NOT move (the whole point of the ring).
    assert moved / len(KEYS) < 0.35
    assert moved > 0
    # Every key that moved must have moved TO the new member.
    for key in KEYS:
        if ring.route(key) != before[key]:
            assert ring.route(key) == "4"


def test_removing_a_member_only_remaps_its_keys():
    ring = HashRing(["0", "1", "2", "3"])
    before = {key: ring.route(key) for key in KEYS}
    ring.remove("2")
    for key in KEYS:
        if before[key] == "2":
            assert ring.route(key) != "2"
        else:
            assert ring.route(key) == before[key], "unaffected key moved"


def test_add_then_remove_roundtrips():
    ring = HashRing(["0", "1", "2"])
    before = {key: ring.route(key) for key in KEYS}
    ring.add("3")
    ring.remove("3")
    assert {key: ring.route(key) for key in KEYS} == before


def test_add_and_remove_are_idempotent():
    ring = HashRing(["a", "b"])
    ring.add("a")
    assert ring.members == ["a", "b"]
    ring.remove("zz")
    assert ring.members == ["a", "b"]


def test_empty_ring_and_bad_members_are_rejected():
    with pytest.raises(ServiceError):
        HashRing([]).route("k")
    with pytest.raises(ServiceError):
        HashRing([""])
    with pytest.raises(ServiceError):
        HashRing(["a"], replicas=0)


def test_routing_is_identical_across_processes():
    """The property Python's salted ``hash()`` would break: a shipper in
    one process and a shard in another must agree on ownership."""
    probe_keys = KEYS[:50]
    script = (
        "from repro.service.fleet import HashRing\n"
        "ring = HashRing(['0', '1', '2', '3'])\n"
        f"for key in {probe_keys!r}:\n"
        "    print(ring.route(key))\n"
    )
    runs = [
        subprocess.check_output(
            [sys.executable, "-c", script], text=True
        ).split()
        for _ in range(2)
    ]
    local = [HashRing(["0", "1", "2", "3"]).route(key) for key in probe_keys]
    assert runs[0] == runs[1] == local
