"""The metrics registry and its Prometheus text rendering."""

import threading

from repro.service.metrics import LATENCY_WINDOW, ServiceMetrics


def test_counters_and_gauges():
    m = ServiceMetrics()
    m.inc("deltas_applied_total")
    m.inc("deltas_applied_total", 4)
    m.set_gauge("datasets", 3)
    assert m.counter("deltas_applied_total") == 5
    assert m.gauge("datasets") == 3
    assert m.counter("never_touched") == 0


def test_latency_quantiles_are_nearest_rank():
    m = ServiceMetrics()
    for i in range(1, 101):
        m.observe_latency("ingest_latency", i / 100.0)
    assert m.latency_count("ingest_latency") == 100
    assert m.latency_quantile("ingest_latency", 0.5) == 0.51
    assert m.latency_quantile("ingest_latency", 0.95) == 0.96
    assert m.latency_quantile("ingest_latency", 1.0) == 1.0
    assert m.latency_quantile("untouched", 0.5) == 0.0


def test_latency_window_is_bounded():
    m = ServiceMetrics()
    for i in range(LATENCY_WINDOW + 500):
        m.observe_latency("ingest_latency", float(i))
    assert m.latency_count("ingest_latency") == LATENCY_WINDOW
    # The oldest 500 samples fell out of the sliding window.
    assert m.latency_quantile("ingest_latency", 0.0) == 500.0


def test_render_is_prometheus_text_format():
    m = ServiceMetrics()
    m.describe("deltas_applied_total", "Profile deltas applied")
    m.inc("deltas_applied_total", 2)
    m.set_gauge("datasets", 1)
    m.observe_latency("ingest_latency", 0.25)
    text = m.render()
    assert "# HELP pgmp_deltas_applied_total Profile deltas applied" in text
    assert "# TYPE pgmp_deltas_applied_total counter" in text
    assert "pgmp_deltas_applied_total 2" in text
    assert "# TYPE pgmp_datasets gauge" in text
    assert "pgmp_datasets 1" in text
    assert "# TYPE pgmp_ingest_latency_seconds summary" in text
    assert 'pgmp_ingest_latency_seconds{quantile="0.5"} 0.25' in text
    assert "pgmp_ingest_latency_seconds_count 1" in text
    assert "pgmp_ingest_latency_seconds_sum 0.25" in text
    assert text.endswith("\n")


def test_namespace_is_configurable():
    m = ServiceMetrics(namespace="acme")
    m.inc("x")
    assert "acme_x 1" in m.render()


def test_snapshot_shape():
    m = ServiceMetrics()
    m.inc("a", 2)
    m.set_gauge("g", 7)
    m.observe_latency("l", 0.1)
    assert m.snapshot() == {
        "counters": {"a": 2},
        "labeled_counters": {},
        "gauges": {"g": 7},
        "labeled_gauges": {},
        "latency_counts": {"l": 1},
        "latency_quantiles": {"l": {"0.5": 0.1, "0.95": 0.1, "0.99": 0.1}},
    }


def test_concurrent_increments_do_not_lose_counts():
    m = ServiceMetrics()

    def bump():
        for _ in range(2_000):
            m.inc("hits")

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert m.counter("hits") == 16_000
