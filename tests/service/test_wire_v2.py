"""Wire protocol v2: hello negotiation, batches, compression, v1 interop."""

import io
import zlib

import pytest

from repro.core.counters import CounterSet
from repro.core.errors import DeltaFormatError
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.service import ProfileAggregator, ProfileShipper
from repro.service.delta import (
    MAX_BATCH_DELTAS,
    MAX_FRAME_BYTES,
    WIRE_FEATURES,
    WIRE_VERSION,
    DeltaBatch,
    ProfileDelta,
    encode_frame,
    hello_frame,
    negotiated_features,
    read_frame,
    write_frame,
)

POINTS = [
    ProfilePoint.for_location(SourceLocation("w.ss", n, n + 1)) for n in range(4)
]


def _delta(seq: int, count: int = 1, shipper: str = "s") -> ProfileDelta:
    return ProfileDelta(
        shipper=shipper,
        seq=seq,
        dataset="ds",
        counts={POINTS[0].key(): count},
    )


# -- framing ---------------------------------------------------------------


def test_compressed_frame_roundtrips_and_sets_the_flag():
    obj = {"type": "delta", "payload": "x" * 10_000}
    raw = encode_frame(obj, compress=True)
    assert raw[0] & 0x80, "top bit of the length prefix marks compression"
    assert len(raw) < 10_000, "compression actually shrank the frame"
    assert read_frame(io.BytesIO(raw)) == obj


def test_uncompressed_frame_is_plain_v1_framing():
    obj = {"type": "delta", "n": 1}
    raw = encode_frame(obj)
    assert not raw[0] & 0x80
    assert read_frame(io.BytesIO(raw)) == obj


def test_write_frame_compress_flag_is_readable_by_read_frame():
    stream = io.BytesIO()
    write_frame(stream, {"a": 1}, compress=True)
    write_frame(stream, {"b": 2})
    stream.seek(0)
    assert read_frame(stream) == {"a": 1}
    assert read_frame(stream) == {"b": 2}
    assert read_frame(stream) is None


def test_decompression_bomb_is_rejected():
    # A tiny compressed frame claiming to inflate past MAX_FRAME_BYTES
    # must be refused without the giant allocation.
    bomb = zlib.compress(b"[" + b"0," * (MAX_FRAME_BYTES // 2) + b"0]", 9)
    assert len(bomb) < MAX_FRAME_BYTES  # the bomb itself passes the prefix
    framed = (
        int.to_bytes(len(bomb) | 0x8000_0000, 4, "big") + bomb
    )
    with pytest.raises(DeltaFormatError):
        read_frame(io.BytesIO(framed))


def test_corrupt_compressed_payload_is_a_format_error():
    framed = int.to_bytes(4 | 0x8000_0000, 4, "big") + b"\x00\x01\x02\x03"
    with pytest.raises(DeltaFormatError):
        read_frame(io.BytesIO(framed))


# -- hello negotiation -----------------------------------------------------


def test_hello_negotiates_the_feature_intersection():
    assert negotiated_features(hello_frame()) == set(WIRE_FEATURES)
    assert negotiated_features(hello_frame(["zlib"])) == {"zlib"}
    assert negotiated_features(hello_frame(["zlib", "quic"])) == {"zlib"}


def test_malformed_hello_negotiates_nothing():
    assert negotiated_features({"type": "delta"}) == set()
    assert negotiated_features({"type": "hello", "v": 99}) == set()
    assert negotiated_features({"type": "hello", "v": 2, "features": "x"}) == set()
    assert negotiated_features(None) == set()
    assert negotiated_features("hello") == set()


# -- batch frames ----------------------------------------------------------


def test_batch_roundtrips_with_shard_tag():
    batch = DeltaBatch(deltas=(_delta(1), _delta(2)), shard="3")
    rebuilt = DeltaBatch.from_json_object(batch.to_json_object())
    assert rebuilt == batch
    assert rebuilt.total() == 2
    assert batch.to_json_object()["v"] == WIRE_VERSION


def test_batch_rejects_empty_and_oversized():
    with pytest.raises(DeltaFormatError):
        DeltaBatch.from_json_object(
            {"type": "batch", "v": 2, "deltas": []}
        )
    too_many = [_delta(n + 1).to_json_object() for n in range(2)]
    frame = {"type": "batch", "v": 2, "deltas": too_many * (MAX_BATCH_DELTAS)}
    with pytest.raises(DeltaFormatError):
        DeltaBatch.from_json_object(frame)


def test_delta_emits_v2_but_accepts_v1():
    delta = _delta(1)
    assert delta.to_json_object()["v"] == WIRE_VERSION
    v1 = delta.to_json_object()
    v1["v"] = 1
    assert ProfileDelta.from_json_object(v1) == delta


# -- aggregator integration ------------------------------------------------


def test_aggregator_answers_hello_and_accepts_a_batch():
    with ProfileAggregator("127.0.0.1:0") as aggregator:
        hello_ack = aggregator.handle_frame(hello_frame(peer="t"))
        assert negotiated_features(hello_ack) == set(WIRE_FEATURES)
        batch = DeltaBatch(deltas=(_delta(1, 5), _delta(2, 7)))
        ack = aggregator.handle_frame(batch.to_json_object())
        assert ack["type"] == "ack"
        assert ack["status"] == "batch"
        assert ack["applied"] == 2
        # All-applied batches get the condensed ack: no per-delta list.
        assert "acks" not in ack
        assert aggregator.total_counts() == 12


def test_batch_acks_are_per_delta_and_idempotent():
    with ProfileAggregator("127.0.0.1:0") as aggregator:
        batch = DeltaBatch(deltas=(_delta(1, 5), _delta(1, 5), _delta(2, 7)))
        ack = aggregator.handle_frame(batch.to_json_object())
        statuses = [a["status"] for a in ack["acks"]]
        assert statuses == ["applied", "duplicate", "applied"]
        assert aggregator.total_counts() == 12, "duplicate seq not re-counted"


def test_v2_shipper_negotiates_batches_over_the_wire():
    counters = CounterSet(name="ds")
    with ProfileAggregator("127.0.0.1:0") as aggregator:
        with ProfileShipper(counters, aggregator.address) as shipper:
            # Pre-load a queue of deltas (as if cut while disconnected)
            # so the first drain has something to batch.
            for n in range(5):
                shipper._queue.append(
                    _delta(n + 1, n + 1, shipper=shipper.shipper_id)
                )
            shipper._seq = 5
            shipper.flush()
            assert shipper._features == set(WIRE_FEATURES)
            assert shipper.shipped_deltas == 5
        assert aggregator.total_counts() == 15
        assert aggregator.metrics.counter("deltas_applied_total") == 5
        # one batch frame carried all five deltas
        assert aggregator.metrics.latency_count("batch_latency") == 1


def test_v1_client_still_interoperates():
    """A pre-v2 shipper never sends hello and expects lone-delta acks."""
    counters = CounterSet(name="ds")
    with ProfileAggregator("127.0.0.1:0") as aggregator:
        shipper = ProfileShipper(
            counters, aggregator.address, negotiate=False
        )
        counters.increment(POINTS[0], by=9)
        shipper.flush()
        counters.increment(POINTS[1], by=4)
        shipper.flush()
        shipper.close()
        assert shipper._features == set()
        assert aggregator.total_counts() == 13


def test_mixed_v1_and_v2_clients_share_one_aggregator():
    with ProfileAggregator("127.0.0.1:0") as aggregator:
        old = CounterSet(name="ds")
        new = CounterSet(name="ds")
        with ProfileShipper(
            old, aggregator.address, shipper_id="v1", negotiate=False
        ) as legacy, ProfileShipper(
            new, aggregator.address, shipper_id="v2"
        ) as modern:
            old.increment(POINTS[0], by=3)
            legacy.flush()
            new.increment(POINTS[0], by=4)
            modern.flush()
        assert aggregator.total_counts() == 7
        stats = aggregator.handle_frame({"type": "stats"})
        assert stats["shippers"] == {"v1": 1, "v2": 1}
