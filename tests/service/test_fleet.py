"""The sharded fleet: WAL durability, shard uplink, root merge, slices."""

import time

import pytest

from repro.core.counters import CounterSet
from repro.core.errors import ServiceError
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.service.delta import ProfileDelta
from repro.service.fleet import (
    FleetShipper,
    FleetSupervisor,
    HashRing,
    RootMerger,
    ShardAggregator,
    WriteAheadLog,
    fetch_ring,
)
from repro.service.fleet.shipper import _ShardSlice

POINTS = [
    ProfilePoint.for_location(SourceLocation("w.ss", n, n + 1)) for n in range(8)
]


def _delta_frame(seq: int, count: int = 1, shipper: str = "s") -> dict:
    return ProfileDelta(
        shipper=shipper,
        seq=seq,
        dataset="ds",
        counts={POINTS[seq % len(POINTS)].key(): count},
    ).to_json_object()


# -- write-ahead log -------------------------------------------------------


def test_wal_replays_appended_frames(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal")
    wal.append({"a": 1})
    wal.append({"b": 2})
    wal.close()
    frames, torn = WriteAheadLog(tmp_path / "wal").replay()
    assert frames == [{"a": 1}, {"b": 2}]
    assert torn == 0


def test_wal_tolerates_a_torn_tail(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal")
    wal.append({"a": 1})
    wal.close()
    segments = sorted((tmp_path / "wal").glob("wal-*.jsonl"))
    with open(segments[-1], "a", encoding="utf-8") as handle:
        handle.write('{"b": 2, "trunc')  # the crash mid-write
    frames, torn = WriteAheadLog(tmp_path / "wal").replay()
    assert frames == [{"a": 1}]
    assert torn == 1


def test_wal_rotate_and_prune_drop_sealed_segments(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal")
    wal.append({"a": 1})
    sealed = wal.rotate()
    assert len(sealed) == 1
    wal.append({"b": 2})  # lands in the new live segment
    wal.prune(sealed)
    frames, _ = wal.replay()
    assert frames == [{"b": 2}], "pruned segment no longer replays"
    wal.close()


# -- shard aggregator: WAL durability --------------------------------------


def test_shard_recovers_unacked_counts_from_wal(tmp_path):
    shard = ShardAggregator(
        "127.0.0.1:0",
        shard_id="0",
        wal_path=tmp_path / "wal",
        state_path=str(tmp_path / "state.json"),
        async_transport=False,
    )
    for seq in (1, 2, 3):
        ack = shard.handle_frame(_delta_frame(seq, count=5))
        assert ack["status"] == "applied"
    assert shard.total_counts() == 15
    # Crash: no final checkpoint, state.json never written.
    shard.stop(checkpoint=False)

    revived = ShardAggregator(
        "127.0.0.1:0",
        shard_id="0",
        wal_path=tmp_path / "wal",
        state_path=str(tmp_path / "state.json"),
        async_transport=False,
    )
    assert revived.total_counts() == 15, "WAL replay restored every count"
    # Replay marked the ledger too: the shipper's resend is a duplicate.
    ack = revived.handle_frame(_delta_frame(2, count=5))
    assert ack["status"] == "duplicate"
    assert revived.total_counts() == 15
    revived.stop(checkpoint=False)


def test_shard_checkpoint_prunes_wal(tmp_path):
    shard = ShardAggregator(
        "127.0.0.1:0",
        shard_id="0",
        wal_path=tmp_path / "wal",
        state_path=str(tmp_path / "state.json"),
        async_transport=False,
    )
    shard.handle_frame(_delta_frame(1, count=5))
    assert shard._wal.size_bytes() > 0
    assert shard.checkpoint()
    assert shard._wal.size_bytes() == 0, "checkpointed frames leave the WAL"
    shard.stop()


# -- shard -> root uplink --------------------------------------------------


@pytest.fixture
def root(tmp_path):
    with RootMerger(
        "127.0.0.1:0", state_path=str(tmp_path / "root-state.json")
    ) as merger:
        yield merger


def _shard(tmp_path, root, shard_id="0", **kwargs):
    return ShardAggregator(
        "127.0.0.1:0",
        shard_id=shard_id,
        uplink=root.address,
        wal_path=tmp_path / f"wal-{shard_id}",
        state_path=str(tmp_path / f"state-{shard_id}.json"),
        async_transport=False,
        **kwargs,
    )


def test_checkpoint_uplinks_merged_counts_to_root(tmp_path, root):
    shard = _shard(tmp_path, root)
    shard.handle_frame(_delta_frame(1, count=5, shipper="w1"))
    shard.handle_frame(_delta_frame(1, count=7, shipper="w2"))
    assert shard.checkpoint()
    assert root.total_counts() == 12
    # The root saw ONE uplink identity, not the two leaf shippers.
    stats = root.handle_frame({"type": "stats"})
    assert list(stats["shippers"]) == ["shard-0"]
    # Idempotence: a second checkpoint with no new counts sends nothing.
    assert shard.checkpoint()
    assert root.total_counts() == 12
    shard.stop()


def test_uplink_survives_crash_without_double_count(tmp_path, root):
    shard = _shard(tmp_path, root)
    shard.handle_frame(_delta_frame(1, count=5))
    assert shard.checkpoint()  # uplinked: root at 5
    shard.handle_frame(_delta_frame(2, count=3))  # WALed, not yet uplinked
    shard.stop(checkpoint=False)  # crash

    revived = _shard(tmp_path, root)
    assert revived.total_counts() == 8, "state + WAL replay"
    assert revived.checkpoint()
    assert root.total_counts() == 8, "only the unsent 3 arrived"
    revived.stop()
    assert root.total_counts() == 8


def test_uplink_buffers_while_root_is_down(tmp_path):
    with RootMerger("127.0.0.1:0") as merger:
        address = merger.address
    # Root is now down; the shard checkpoints into its pending buffer.
    shard = ShardAggregator(
        "127.0.0.1:0",
        shard_id="0",
        uplink=address,
        wal_path=tmp_path / "wal",
        state_path=str(tmp_path / "state.json"),
        async_transport=False,
    )
    shard.handle_frame(_delta_frame(1, count=5))
    assert shard.checkpoint(), "checkpoint succeeds; the uplink just waits"
    assert len(shard._uplink_pending) == 1
    # Root returns on the same address; the next checkpoint delivers
    # (after the uplink's retry backoff has expired).
    with RootMerger(address) as merger:
        time.sleep(0.2)
        shard.handle_frame(_delta_frame(2, count=2))
        assert shard.checkpoint()
        assert merger.total_counts() == 7
        assert not shard._uplink_pending
    shard.stop(checkpoint=False)


# -- root merger -----------------------------------------------------------


def test_root_tracks_shard_registry(root):
    root.note_shard("0", "127.0.0.1:1111")
    root.note_shard("1", "127.0.0.1:2222")
    ring = root.handle_frame({"type": "ring"})
    assert ring["type"] == "ring"
    assert ring["shards"]["0"] == {"address": "127.0.0.1:1111", "up": True}
    root.mark_shard_down("1")
    ring = root.handle_frame({"type": "ring"})
    assert ring["shards"]["1"]["up"] is False
    assert "shards_up=1/2" in root._healthz_body()


def test_register_frame_updates_the_registry(root):
    ack = root.handle_frame(
        {"type": "register", "shard": "3", "address": "127.0.0.1:3333"}
    )
    assert ack["type"] == "ack"
    assert root.shard_map()["3"].address == "127.0.0.1:3333"
    assert root.metrics.labeled_gauge("fleet_shard_up", {"shard": "3"}) == 1.0


def test_fetch_ring_over_the_wire(root):
    root.note_shard("0", "127.0.0.1:1111")
    shards = fetch_ring(root.address)
    assert shards == {"0": {"address": "127.0.0.1:1111", "up": True}}


# -- fleet shipper ---------------------------------------------------------


def test_shard_slices_partition_the_counter_set_exactly():
    counters = CounterSet(name="ds")
    for n, point in enumerate(POINTS):
        counters.increment(point, by=n + 1)
    ring = HashRing(["0", "1", "2"])
    slices = [_ShardSlice(counters, ring, member) for member in ("0", "1", "2")]
    merged = {}
    for shard_slice in slices:
        snap = shard_slice.snapshot()
        assert not set(merged) & set(snap), "slices must be disjoint"
        merged.update(snap)
    assert merged == counters.snapshot()
    with pytest.raises(ServiceError):
        slices[0].increment(POINTS[0])
    with pytest.raises(ServiceError):
        slices[0].clear()


def test_fleet_shipper_ships_everything_once(tmp_path, root):
    shards = {
        shard_id: _shard(tmp_path, root, shard_id=shard_id)
        for shard_id in ("0", "1")
    }
    for shard in shards.values():
        shard.start()
    try:
        counters = CounterSet(name="ds")
        total = 0
        for n, point in enumerate(POINTS):
            counters.increment(point, by=n + 1)
            total += n + 1
        fleet = FleetShipper(
            counters,
            {shard_id: str(s.address) for shard_id, s in shards.items()},
            shipper_id="worker",
        )
        deltas = fleet.flush()
        assert fleet.shipped_counts == total
        assert sum(d.total() for d in deltas) == total
        fleet.close()
        shard_total = sum(s.total_counts() for s in shards.values())
        assert shard_total == total
        for shard in shards.values():
            assert shard.checkpoint()
        assert root.total_counts() == total
    finally:
        for shard in shards.values():
            shard.stop(checkpoint=False)


def test_fleet_shipper_reresolves_in_place(tmp_path, root):
    shard = _shard(tmp_path, root).start()
    root.note_shard("0", str(shard.address))
    counters = CounterSet(name="ds")
    fleet = FleetShipper(
        counters, {"0": str(shard.address)}, root=root.address
    )
    original = fleet.shippers["0"]
    counters.increment(POINTS[0], by=4)
    fleet.flush()
    assert fleet.shipped_counts == 4

    # The shard dies and comes back on a different port.
    shard.stop(checkpoint=False)
    revived = _shard(tmp_path, root).start()
    try:
        root.note_shard("0", str(revived.address))
        changed = fleet.re_resolve()
        assert changed == ["0"]
        assert fleet.shippers["0"] is original, "same shipper object"
        assert fleet.shippers["0"].address == revived.address
        counters.increment(POINTS[0], by=2)
        fleet.flush()
        assert fleet.shipped_counts == 6
        assert revived.total_counts() == 6, "restored slice + new delta"
        fleet.close()
    finally:
        revived.stop(checkpoint=False)


# -- supervisor (in-process mode) ------------------------------------------


def test_supervisor_runs_a_fleet_in_process(tmp_path):
    with FleetSupervisor(2, tmp_path / "fleet", in_process=True) as fleet:
        assert fleet.wait_all_up(timeout=5.0)
        addresses = fleet.shard_addresses()
        assert set(addresses) == {"0", "1"}
        counters = CounterSet(name="ds")
        for n, point in enumerate(POINTS):
            counters.increment(point, by=n + 1)
        shipper = FleetShipper(
            counters, addresses, root=fleet.root.address
        )
        shipper.flush()
        shipper.close()
        for slot in fleet._slots.values():
            assert slot.aggregator.checkpoint()
        assert fleet.root.total_counts() == sum(
            n + 1 for n in range(len(POINTS))
        )
        stats = fleet.stats()
        assert set(stats["shard_stats"]) == {"0", "1"}
        assert stats["fleet"]["up"] == 2


def test_supervisor_restart_preserves_shard_state(tmp_path):
    with FleetSupervisor(
        2, tmp_path / "fleet", in_process=True, checkpoint_interval=60.0
    ) as fleet:
        addresses = fleet.shard_addresses()
        counters = CounterSet(name="ds")
        for point in POINTS:
            counters.increment(point, by=3)
        shipper = FleetShipper(counters, addresses, root=fleet.root.address)
        shipper.flush()
        before = {
            shard_id: slot.aggregator.total_counts()
            for shard_id, slot in fleet._slots.items()
        }
        fleet.kill_shard("0")
        assert fleet.root.shard_map()["0"].up is False
        fleet.restart_shard("0")
        assert fleet.root.shard_map()["0"].up is True
        slot = fleet._slots["0"]
        assert slot.aggregator.total_counts() == before["0"], "WAL restore"
        assert slot.restarts == 1
        shipper.close()
