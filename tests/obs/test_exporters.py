"""The text and JSON exporters, and the stored-trace reader."""

import json

import pytest

from repro.analysis.diagnostics import JSON_RENDER_VERSION
from repro.obs.export import (
    decisions_from_json_object,
    render_trace_json,
    render_trace_text,
    trace_to_json_object,
)
from repro.obs.tracer import TRACE_SCHEMA_VERSION, Tracer


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("program", "p.ss", substrate="scheme"):
        with tracer.span("expand", "if-r", location="p.ss:2:0"):
            tracer.record_query("p.ss:3:4", 0.25)
            tracer.record_query("p.ss:4:4", 0.75)

            class Loc:
                filename = "p.ss"
                line = 2

                def __str__(self) -> str:
                    return "p.ss:2:0"

            tracer.decision(
                "if-r",
                "scheme",
                chosen=("swapped-branches",),
                rejected=("source-order",),
                location=Loc(),
                note="false branch hotter",
            )
        tracer.event("degradation", "load-profile", reason="corrupt")
    tracer.close()
    return tracer


def test_json_document_shape_and_versions():
    document = trace_to_json_object(_sample_tracer())
    assert document["schema"] == "pgmp-trace"
    assert document["version"] == JSON_RENDER_VERSION
    assert document["trace_schema_version"] == TRACE_SCHEMA_VERSION
    assert document["summary"]["decisions"] == 1
    assert document["summary"]["queries"] == 2
    assert document["summary"]["data_driven_decisions"] == 1
    # Spans carry their queries/decisions/events inline.
    expand = document["spans"][2]
    assert expand["kind"] == "expand"
    assert [q["point"] for q in expand["queries"]] == ["p.ss:3:4", "p.ss:4:4"]
    assert expand["decisions"][0]["chosen"] == ["swapped-branches"]
    assert expand["decisions"][0]["margin"] == 0.5


def test_json_rendering_is_stable_text():
    tracer = _sample_tracer()
    text = render_trace_json(tracer)
    assert json.loads(text) == trace_to_json_object(tracer)
    # Canonical form: sorted keys, 2-space indent, pure ASCII.
    assert text == json.dumps(
        json.loads(text), indent=2, sort_keys=True, ensure_ascii=True
    )


def test_text_rendering_mentions_everything():
    text = render_trace_text(_sample_tracer())
    assert "1 decision(s) (1 data-driven)" in text
    assert "? profile-query p.ss:3:4 -> 0.25" in text
    assert "* decision if-r at p.ss:2:0" in text
    assert "rejected: source-order" in text
    assert "! degradation: load-profile reason=corrupt" in text
    assert "note:     false branch hotter" in text


def test_decisions_from_json_object_roundtrip():
    document = trace_to_json_object(_sample_tracer())
    decisions = decisions_from_json_object(json.loads(json.dumps(document)))
    assert len(decisions) == 1
    assert decisions[0]["construct"] == "if-r"
    assert decisions[0]["inputs"] == [
        {"point": "p.ss:3:4", "weight": 0.25},
        {"point": "p.ss:4:4", "weight": 0.75},
    ]


def test_decisions_from_json_object_rejects_other_schemas():
    with pytest.raises(ValueError):
        decisions_from_json_object({"schema": "pgmp-report"})
    with pytest.raises(ValueError):
        decisions_from_json_object({})
