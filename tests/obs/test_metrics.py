"""The promoted obs metrics registry: p99, HELP coverage, render age."""

from repro.obs.metrics import (
    RENDER_QUANTILES,
    RENDER_TIMESTAMP_GAUGE,
    ServiceMetrics,
)
from repro.service.aggregator import ProfileAggregator
from repro.service.controller import RecompileController


def test_p99_quantile_is_rendered():
    assert 0.99 in RENDER_QUANTILES
    m = ServiceMetrics()
    for i in range(1, 101):
        m.observe_latency("ingest_latency", i / 100.0)
    assert m.latency_quantile("ingest_latency", 0.99) == 1.0
    assert 'quantile="0.99"' in m.render()


def test_render_stamps_timestamp_gauge():
    m = ServiceMetrics()
    text = m.render(now=123.5)
    assert f"pgmp_{RENDER_TIMESTAMP_GAUGE} 123.5" in text
    assert m.gauge(RENDER_TIMESTAMP_GAUGE) == 123.5


def test_timestamp_gauge_has_help():
    m = ServiceMetrics()
    m.render()
    assert m.undocumented_names() == []
    assert m.help_for(RENDER_TIMESTAMP_GAUGE)


def test_undocumented_names_flags_missing_help():
    m = ServiceMetrics()
    m.inc("mystery_total")
    assert m.undocumented_names() == ["mystery_total"]
    m.describe("mystery_total", "No longer a mystery")
    assert m.undocumented_names() == []


def test_every_service_metric_has_help_in_a_real_scrape():
    """No help-less names: every metric the aggregator + controller can
    emit carries a ``# HELP`` line in the rendered exposition."""
    metrics = ServiceMetrics()
    aggregator = ProfileAggregator(
        listen="tcp://127.0.0.1:0", metrics=metrics
    )
    controller = RecompileController(lambda db: object(), metrics=metrics)
    # Touch the controller-set gauges the way a recompile would.
    metrics.set_gauge("recompile_generation", 1)
    metrics.set_gauge("recompile_decisions_changed", 0)
    text = metrics.render()
    assert aggregator is not None and controller is not None
    assert metrics.undocumented_names() == []
    for line in text.splitlines():
        if line.startswith("#") or not line:
            continue
        name = line.split("{")[0].split(" ")[0]
        base = name.removeprefix("pgmp_")
        if not metrics.help_for(base):
            # Latency summaries render as <name>_seconds{,_count,_sum}.
            for suffix in ("_seconds_count", "_seconds_sum", "_seconds"):
                if base.endswith(suffix):
                    base = base[: -len(suffix)]
                    break
        assert metrics.help_for(base), f"metric without HELP: {name}"


def test_back_compat_import_path_is_the_same_class():
    from repro.service import metrics as service_metrics

    assert service_metrics.ServiceMetrics is ServiceMetrics
    assert service_metrics.RENDER_QUANTILES is RENDER_QUANTILES
