"""The promoted obs metrics registry: p99, HELP coverage, render age."""

from repro.obs.metrics import (
    RENDER_QUANTILES,
    RENDER_TIMESTAMP_GAUGE,
    ServiceMetrics,
)
from repro.service.aggregator import ProfileAggregator
from repro.service.controller import RecompileController


def test_p99_quantile_is_rendered():
    assert 0.99 in RENDER_QUANTILES
    m = ServiceMetrics()
    for i in range(1, 101):
        m.observe_latency("ingest_latency", i / 100.0)
    assert m.latency_quantile("ingest_latency", 0.99) == 1.0
    assert 'quantile="0.99"' in m.render()


def test_render_stamps_timestamp_gauge():
    m = ServiceMetrics()
    text = m.render(now=123.5)
    assert f"pgmp_{RENDER_TIMESTAMP_GAUGE} 123.5" in text
    assert m.gauge(RENDER_TIMESTAMP_GAUGE) == 123.5


def test_timestamp_gauge_has_help():
    m = ServiceMetrics()
    m.render()
    assert m.undocumented_names() == []
    assert m.help_for(RENDER_TIMESTAMP_GAUGE)


def test_undocumented_names_flags_missing_help():
    m = ServiceMetrics()
    m.inc("mystery_total")
    assert m.undocumented_names() == ["mystery_total"]
    m.describe("mystery_total", "No longer a mystery")
    assert m.undocumented_names() == []


def test_every_service_metric_has_help_in_a_real_scrape():
    """No help-less names: every metric the aggregator + controller can
    emit carries a ``# HELP`` line in the rendered exposition."""
    metrics = ServiceMetrics()
    aggregator = ProfileAggregator(
        listen="tcp://127.0.0.1:0", metrics=metrics
    )
    controller = RecompileController(lambda db: object(), metrics=metrics)
    # Touch the controller-set gauges the way a recompile would.
    metrics.set_gauge("recompile_generation", 1)
    metrics.set_gauge("recompile_decisions_changed", 0)
    text = metrics.render()
    assert aggregator is not None and controller is not None
    assert metrics.undocumented_names() == []
    for line in text.splitlines():
        if line.startswith("#") or not line:
            continue
        name = line.split("{")[0].split(" ")[0]
        base = name.removeprefix("pgmp_")
        if not metrics.help_for(base):
            # Latency summaries render as <name>_seconds{,_count,_sum}.
            for suffix in ("_seconds_count", "_seconds_sum", "_seconds"):
                if base.endswith(suffix):
                    base = base[: -len(suffix)]
                    break
        assert metrics.help_for(base), f"metric without HELP: {name}"


def test_back_compat_import_path_is_the_same_class():
    from repro.service import metrics as service_metrics

    assert service_metrics.ServiceMetrics is ServiceMetrics
    assert service_metrics.RENDER_QUANTILES is RENDER_QUANTILES


# -- labeled counters ----------------------------------------------------------


def test_labeled_counter_accumulates_per_label_set():
    m = ServiceMetrics()
    m.inc_labeled("backend_fallbacks_total", {"reason": "nested-define"})
    m.inc_labeled("backend_fallbacks_total", {"reason": "nested-define"}, 2)
    m.inc_labeled("backend_fallbacks_total", {"reason": "other"})
    assert (
        m.labeled_counter("backend_fallbacks_total", {"reason": "nested-define"})
        == 3
    )
    assert m.labeled_counter("backend_fallbacks_total", {"reason": "other"}) == 1
    assert m.labeled_counter("backend_fallbacks_total", {"reason": "never"}) == 0


def test_labeled_key_is_order_insensitive():
    m = ServiceMetrics()
    m.inc_labeled("x_total", {"a": "1", "b": "2"})
    m.inc_labeled("x_total", {"b": "2", "a": "1"})
    assert m.labeled_counter("x_total", {"b": "2", "a": "1"}) == 2
    assert m.labeled_series("x_total") == {(("a", "1"), ("b", "2")): 2}


def test_empty_labels_are_a_programming_error():
    import pytest

    m = ServiceMetrics()
    with pytest.raises(ValueError, match="at least one label"):
        m.inc_labeled("x_total", {})


def test_labeled_samples_render_within_one_family():
    m = ServiceMetrics()
    m.describe("backend_fallbacks_total", "Interpreter fallbacks")
    m.inc("backend_fallbacks_total", 3)
    m.inc_labeled("backend_fallbacks_total", {"reason": "nested-define"}, 2)
    m.inc_labeled("backend_fallbacks_total", {"reason": "other"})
    text = m.render()
    assert text.count("# HELP pgmp_backend_fallbacks_total") == 1
    assert text.count("# TYPE pgmp_backend_fallbacks_total counter") == 1
    assert "pgmp_backend_fallbacks_total 3" in text
    assert 'pgmp_backend_fallbacks_total{reason="nested-define"} 2' in text
    assert 'pgmp_backend_fallbacks_total{reason="other"} 1' in text


def test_snapshot_includes_labeled_counters():
    m = ServiceMetrics()
    m.inc_labeled("backend_fallbacks_total", {"reason": "other"})
    snap = m.snapshot()
    assert snap["labeled_counters"] == {
        "backend_fallbacks_total": {"reason=other": 1}
    }


def test_fallback_reason_slugs_are_low_cardinality():
    from repro.scheme.pipeline import fallback_reason_slug

    assert fallback_reason_slug("nested define") == "nested-define"
    assert (
        fallback_reason_slug("expand-time form TemplateExpr at run time")
        == "expand-time-form"
    )
    assert (
        fallback_reason_slug("cannot translate constant of type Procedure")
        == "untranslatable-constant"
    )
    assert fallback_reason_slug("core form WeirdExpr") == "unsupported-core-form"
    assert fallback_reason_slug("anything else") == "other"


def test_pipeline_fallback_is_labeled_by_reason():
    from repro.obs.metrics import get_global_metrics
    from repro.scheme.pipeline import SchemeSystem

    metrics = get_global_metrics()
    labels = {"reason": "expand-time-form"}
    before = metrics.labeled_counter("backend_fallbacks_total", labels)
    system = SchemeSystem(backend="compile")
    program = system.compile("(define stx #'(a b)) (pair? 1)", "<fb>")
    system.run(program)
    assert (
        metrics.labeled_counter("backend_fallbacks_total", labels) == before + 1
    )
