"""``pgmp trace``/``pgmp explain``/``pgmp report --trace`` end to end."""

import json

import pytest

from repro.obs.explain import decision_cause, explain_at, parse_at
from repro.obs.tracer import Tracer
from repro.tools import cli

PROGRAM = """(define (classify email)
  (if-r (< email 5)
    'important
    'spam))
(map classify (list 1 2 3 6 7 8 9 10 11 12 13 14))
"""


@pytest.fixture
def program_path(tmp_path):
    path = tmp_path / "prog.ss"
    path.write_text(PROGRAM, encoding="utf-8")
    return str(path)


@pytest.fixture
def profile_path(program_path, tmp_path, capsys):
    out = str(tmp_path / "prog.profile")
    assert cli.main(
        ["profile", program_path, "--library", "if-r", "--out", out]
    ) == 0
    capsys.readouterr()
    return out


def test_parse_at():
    assert parse_at("prog.ss:12") == ("prog.ss", 12)
    assert parse_at("C:/x/prog.ss:3") == ("C:/x/prog.ss", 3)
    with pytest.raises(ValueError):
        parse_at("prog.ss")
    with pytest.raises(ValueError):
        parse_at("prog.ss:abc")


def test_decision_cause_tiers():
    tracer = Tracer()
    with tracer.span("expand", "x"):
        no_inputs = tracer.decision("case", "scheme", chosen=("a",), inputs=())
        all_zero = tracer.decision(
            "case", "scheme", chosen=("a",), inputs=(("p", 0.0),)
        )
        driven = tracer.decision(
            "case", "scheme", chosen=("a",),
            inputs=(("p", 0.25), ("q", 0.75)),
        )
    assert "no profile points consulted" in decision_cause(no_inputs)
    assert "no profile data" in decision_cause(all_zero)
    assert "profile-guided: 2 of 2" in decision_cause(driven)


def test_explain_at_reports_decision_and_degradations():
    tracer = Tracer()
    with tracer.span("expand", "if-r"):

        class Loc:
            filename = "prog.ss"
            line = 2

            def __str__(self):
                return "prog.ss:2:2"

        tracer.record_query("prog.ss:3:4", 0.25)
        tracer.record_query("prog.ss:4:4", 0.75)
        tracer.decision(
            "if-r", "scheme",
            chosen=("swapped-branches",), rejected=("source-order",),
            location=Loc(),
        )
    text = explain_at(tracer, "prog.ss", 2, ["stale profile quarantined"])
    assert "1 profile-guided decision(s) at prog.ss:2" in text
    assert "decision: swapped-branches" in text
    assert "rejected: source-order" in text
    assert "prog.ss:3:4 -> 0.250000" in text
    assert "degradations during this compile:" in text
    assert "stale profile quarantined" in text


def test_explain_at_misses_point_to_recorded_anchors():
    tracer = Tracer()
    with tracer.span("expand", "if-r"):

        class Loc:
            filename = "prog.ss"
            line = 7

        tracer.decision("if-r", "scheme", chosen=("x",), location=Loc())
    text = explain_at(tracer, "prog.ss", 99)
    assert "no profile-guided decisions recorded at prog.ss:99" in text
    assert "prog.ss:7" in text


def test_cli_trace_text_and_exit_codes(program_path, profile_path, capsys):
    assert cli.main(
        ["trace", program_path, "--library", "if-r",
         "--profile-file", profile_path]
    ) == 0
    out = capsys.readouterr().out
    assert "* decision if-r" in out
    assert "1 data-driven" in out


def test_cli_trace_counts_toward_traces_total(
    program_path, profile_path, capsys
):
    from repro.obs.metrics import get_global_metrics

    counters = get_global_metrics().snapshot()["counters"]
    before = counters.get("traces_total", 0)
    assert cli.main(
        ["trace", program_path, "--library", "if-r",
         "--profile-file", profile_path]
    ) == 0
    capsys.readouterr()
    counters = get_global_metrics().snapshot()["counters"]
    after = counters.get("traces_total", 0)
    assert after == before + 1


def test_cli_trace_json_out_file(program_path, profile_path, tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    assert cli.main(
        ["trace", program_path, "--library", "if-r",
         "--profile-file", profile_path,
         "--format", "json", "--out", str(out_path)]
    ) == 0
    err = capsys.readouterr().err
    assert "wrote json trace" in err
    document = json.loads(out_path.read_text(encoding="utf-8"))
    assert document["schema"] == "pgmp-trace"
    assert document["summary"]["data_driven_decisions"] == 1


def test_cli_explain_found_and_not_found(program_path, profile_path, capsys):
    assert cli.main(
        ["explain", program_path, "--library", "if-r",
         "--profile-file", profile_path, "--at", "prog.ss:2"]
    ) == 0
    out = capsys.readouterr().out
    assert "profile-guided decision(s) at prog.ss:2" in out
    assert "swapped-branches" in out
    assert "cause: profile-guided" in out

    assert cli.main(
        ["explain", program_path, "--library", "if-r",
         "--profile-file", profile_path, "--at", "prog.ss:999"]
    ) == 1
    assert "no profile-guided decisions" in capsys.readouterr().out

    assert cli.main(
        ["explain", program_path, "--library", "if-r", "--at", "nope"]
    ) == 2


def test_cli_report_trace_join(program_path, profile_path, tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    assert cli.main(
        ["trace", program_path, "--library", "if-r",
         "--profile-file", profile_path,
         "--format", "json", "--out", str(trace_path)]
    ) == 0
    capsys.readouterr()
    assert cli.main(
        ["report", program_path, "--profile-file", profile_path,
         "--trace", str(trace_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "1 decision(s) in trace" in out
    assert "chose: swapped-branches, negated-test" in out
    assert "every consulted weight is unchanged" in out


def test_cli_report_trace_rejects_non_trace_json(
    program_path, profile_path, tmp_path, capsys
):
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"schema": "something-else"}', encoding="utf-8")
    assert cli.main(
        ["report", program_path, "--profile-file", profile_path,
         "--trace", str(bogus)]
    ) == 2
    assert "not a pgmp trace document" in capsys.readouterr().err
