"""The ``repro`` logger hierarchy and ``pgmp --log-level`` wiring."""

import io
import logging

from repro.obs.logs import (
    LOG_LEVELS,
    ROOT_LOGGER_NAME,
    configure_logging,
    get_logger,
)


def _reset_root():
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_pgmp_configured", False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


def test_root_logger_has_a_null_handler():
    root = logging.getLogger(ROOT_LOGGER_NAME)
    assert any(
        isinstance(handler, logging.NullHandler) for handler in root.handlers
    )


def test_get_logger_builds_the_hierarchy():
    assert get_logger("repro.scheme.pipeline").name == "repro.scheme.pipeline"
    assert get_logger("service.shipper").name == "repro.service.shipper"
    assert get_logger().name == ROOT_LOGGER_NAME


def test_silent_by_default():
    """Without configure_logging, library logging emits nothing.

    The NullHandler on the ``repro`` root means records never reach
    ``logging.lastResort`` — the stdlib's handler-of-last-resort check is
    ``logger.callHandlers`` finding at least one handler up the chain.
    """
    _reset_root()
    previous = logging.lastResort
    logging.lastResort = None
    try:
        # Would raise "No handlers could be found" noise (or hit
        # lastResort) without the NullHandler; with it, this is silent.
        get_logger("scheme.pipeline").error("should vanish")
    finally:
        logging.lastResort = previous


def test_configure_logging_emits_and_is_idempotent():
    _reset_root()
    stream = io.StringIO()
    configure_logging("info", stream=stream)
    configure_logging("info", stream=stream)  # replaces, not duplicates
    get_logger("scheme.pipeline").info("hello %s", "world")
    lines = [line for line in stream.getvalue().splitlines() if line]
    assert len(lines) == 1
    assert "repro.scheme.pipeline" in lines[0]
    assert "hello world" in lines[0]
    _reset_root()


def test_configure_logging_respects_level():
    _reset_root()
    stream = io.StringIO()
    configure_logging("warning", stream=stream)
    get_logger("scheme.pipeline").info("filtered")
    get_logger("scheme.pipeline").warning("kept")
    assert "filtered" not in stream.getvalue()
    assert "kept" in stream.getvalue()
    _reset_root()


def test_cli_exposes_every_log_level():
    from repro.tools.cli import build_parser

    parser = build_parser()
    for level in LOG_LEVELS:
        args = parser.parse_args(["--log-level", level, "expand", "x.ss"])
        assert args.log_level == level
    args = parser.parse_args(["expand", "x.ss"])
    assert args.log_level is None
