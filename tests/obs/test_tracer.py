"""The Tracer core: spans, queries, decisions, and the ambient ContextVar."""

import threading

from repro.obs.tracer import (
    DecisionRecord,
    Tracer,
    active_tracer,
    decision_margin,
    maybe_span,
    using_tracer,
)


def test_disabled_by_default():
    assert active_tracer() is None


def test_using_tracer_installs_and_restores():
    tracer = Tracer()
    with using_tracer(tracer):
        assert active_tracer() is tracer
    assert active_tracer() is None


def test_span_nesting_and_ticks():
    tracer = Tracer()
    with tracer.span("program", "p.ss"):
        with tracer.span("expand", "if-r"):
            pass
        with tracer.span("expand", "case"):
            pass
    tracer.close()
    kinds = [(s.kind, s.name) for s in tracer.spans[1:]]
    assert kinds == [("program", "p.ss"), ("expand", "if-r"), ("expand", "case")]
    program, if_r, case = tracer.spans[1:]
    assert if_r.parent_id == program.span_id
    assert case.parent_id == program.span_id
    # The logical clock is strictly increasing: child spans nest inside
    # the parent's tick interval, siblings do not overlap.
    assert program.start_tick < if_r.start_tick <= if_r.end_tick
    assert if_r.end_tick < case.start_tick <= case.end_tick <= program.end_tick


def test_span_kind_vocabulary_is_open():
    """Exporters treat the kind as an opaque category — custom kinds work."""
    tracer = Tracer()
    with tracer.span("my-subsystem", "x"):
        pass
    assert tracer.spans[1].kind == "my-subsystem"


def test_queries_are_claimed_by_the_next_decision():
    tracer = Tracer()
    with tracer.span("expand", "if-r"):
        tracer.record_query("a.ss:1:0", 0.25)
        tracer.record_query("a.ss:2:0", 0.75)
        record = tracer.decision(
            "if-r", "scheme", chosen=("swap",), rejected=("keep",)
        )
        assert record.inputs == (("a.ss:1:0", 0.25), ("a.ss:2:0", 0.75))
        # Claimed queries are not handed to a second decision.
        second = tracer.decision("if-r", "scheme", chosen=("keep",))
        assert second.inputs == ()


def test_decision_margin_and_data_driven():
    assert decision_margin([("a", 0.25), ("b", 0.75)]) == 0.5
    assert decision_margin([("a", 0.25)]) == 0.0
    record = DecisionRecord(
        construct="if-r",
        substrate="scheme",
        filename="a.ss",
        line=1,
        location="a.ss:1:0",
        inputs=(("a", 0.0), ("b", 0.0)),
        chosen=("keep",),
        rejected=(),
        tick=1,
        span_id=1,
    )
    assert not record.data_driven
    assert record.margin == 0.0


def test_decisions_at_matches_exact_and_basename():
    tracer = Tracer()
    with tracer.span("expand", "if-r", location="/tmp/prog.ss:3:0"):

        class Loc:
            filename = "/tmp/prog.ss"
            line = 3

        tracer.decision("if-r", "scheme", chosen=("swap",), location=Loc())
    assert tracer.decisions_at("/tmp/prog.ss", 3)
    assert tracer.decisions_at("prog.ss", 3)
    assert not tracer.decisions_at("prog.ss", 4)
    assert not tracer.decisions_at("other.ss", 3)


def test_events_record_in_current_span():
    tracer = Tracer()
    with tracer.span("profile_load", "db.json"):
        tracer.event("degradation", "load-profile", reason="corrupt")
    span = tracer.spans[1]
    assert [e.kind for e in span.events] == ["degradation"]
    assert dict(span.events[0].attrs)["reason"] == "corrupt"


def test_maybe_span_is_nullcontext_when_disabled():
    with maybe_span("program", "p.ss"):
        assert active_tracer() is None
    tracer = Tracer()
    with using_tracer(tracer), maybe_span("program", "p.ss"):
        pass
    assert [s.kind for s in tracer.spans[1:]] == ["program"]


def test_ambient_tracer_is_contextvar_scoped_per_thread():
    """A tracer installed in one thread is invisible to another."""
    seen = {}

    def probe():
        seen["other"] = active_tracer()

    tracer = Tracer()
    with using_tracer(tracer):
        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        assert active_tracer() is tracer
    assert seen["other"] is None


def test_close_is_idempotent():
    tracer = Tracer()
    with tracer.span("program", "p.ss"):
        pass
    tracer.close()
    ticks = tracer.ticks
    tracer.close()
    assert tracer.ticks == ticks
