"""Trace determinism: same program + same merged profile ⇒ byte-identical
JSON, across both substrates, every case-study library, and every example.

Mirrors the determinism pin in ``tests/service/test_e2e.py`` — a trace
that isn't reproducible can't serve as decision *provenance*.
"""

import glob
import os

import pytest

from repro.core.api import reset_generated_points
from repro.obs.export import render_trace_json
from repro.obs.tracer import Tracer, using_tracer
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem
from repro.tools import cli

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

#: (library names, program) per Scheme case study — each program exercises
#: the library's profile-guided construct.
CASE_STUDIES = {
    "if-r": (
        ["if-r"],
        "(define (f n) (if-r (< n 5) 'lo 'hi))\n"
        "(map f (list 1 6 7 8 9))",
    ),
    "case": (
        ["case"],
        "(define (g n) (case n ((1 2) 'small) ((8 9) 'big) (else 'mid)))\n"
        "(map g (list 8 8 8 9 1 5))",
    ),
    "oop": (
        ["oop"],
        "(class Circle ((r 0)) (define-method (area this) (field this r)))\n"
        "(class Square ((s 0)) (define-method (area this) (field this s)))\n"
        "(define shapes (list (make-Circle 2) (make-Circle 3) (make-Square 4)))\n"
        "(map (lambda (s) (method s area)) shapes)",
    ),
    "boolean": (
        ["boolean"],
        "(define (h n) (and-r (> n 0) (< n 10)))\n"
        "(map h (list -1 5 20))",
    ),
    "inliner": (
        ["inliner"],
        "(define-inlinable (sq n) (* n n))\n"
        "(define (k n) (sq (+ n 1)))\n"
        "(map k (list 1 2 3 4 5))",
    ),
}


def _traced_json(libraries, program, profile_db) -> str:
    """One traced compile of ``program`` against ``profile_db``."""
    system = SchemeSystem()
    for name in libraries:
        for source, filename in cli._resolve_library_sources([name]):
            system.load_library(source, filename)
    system.profile_db = profile_db
    reset_generated_points()
    tracer = Tracer()
    with using_tracer(tracer):
        system.compile(program, "unit.ss")
    return render_trace_json(tracer)


@pytest.mark.parametrize("name", sorted(CASE_STUDIES))
def test_scheme_case_study_traces_are_byte_identical(name):
    libraries, program = CASE_STUDIES[name]
    # Collect real profile data first so the traces are data-driven.
    system = SchemeSystem()
    for library in libraries:
        for source, filename in cli._resolve_library_sources([library]):
            system.load_library(source, filename)
    system.profile_run(program, "unit.ss", mode=ProfileMode.EXPR)
    db = system.profile_db
    first = _traced_json(libraries, program, db)
    second = _traced_json(libraries, program, db)
    assert first == second
    assert '"decisions"' in first


@pytest.mark.parametrize(
    "example",
    sorted(
        os.path.basename(path)
        for path in glob.glob(os.path.join(EXAMPLES_DIR, "*.py"))
    ),
)
def test_example_traces_are_byte_identical(example, capsys):
    """``pgmp trace examples/X.py --format json`` twice ⇒ identical bytes."""
    path = os.path.join(EXAMPLES_DIR, example)
    argv = [
        "trace", path, "--format", "json",
        "--library", "if-r", "--library", "case", "--library", "oop",
        "--library", "boolean", "--library", "inliner",
    ]
    code_one = cli.main(argv)
    first = capsys.readouterr().out
    code_two = cli.main(argv)
    second = capsys.readouterr().out
    assert code_one == code_two
    assert first == second
    if code_one == 0:
        assert '"schema": "pgmp-trace"' in first
