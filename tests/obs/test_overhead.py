"""The zero-overhead pin: tracing off ⇒ no trace objects are built.

A counting hook (installed via :func:`set_decision_record_hook`) fires in
``DecisionRecord.__post_init__``, so it counts *constructions*, not
recordings — if a disabled code path ever builds a record "just in case",
this suite catches it.
"""

from repro.core.api import reset_generated_points
from repro.obs.tracer import Tracer, set_decision_record_hook, using_tracer
from repro.pyast.system import PyAstSystem
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem
from repro.tools import cli

PROGRAM = """
(define (f n) (if-r (< n 5) 'lo 'hi))
(map f (list 1 6 7 8 9))
"""


def _if_r_system() -> SchemeSystem:
    system = SchemeSystem()
    for source, filename in cli._resolve_library_sources(["if-r"]):
        system.load_library(source, filename)
    return system


def _counting_hook():
    constructed = []
    previous = set_decision_record_hook(
        lambda record: constructed.append(record)
    )
    return constructed, previous


def test_disabled_tracing_constructs_no_decision_records_scheme():
    constructed, previous = _counting_hook()
    try:
        system = _if_r_system()
        system.profile_run(PROGRAM, "unit.ss", mode=ProfileMode.EXPR)
        reset_generated_points()
        system.compile(PROGRAM, "unit.ss")  # optimized compile, no tracer
        assert constructed == []
    finally:
        set_decision_record_hook(previous)


def test_disabled_tracing_constructs_no_decision_records_pyast():
    from repro.pyast.casestudies import pycase

    def classify(c):
        return pycase(c, (("a",), 1), (("b", "c"), 2), default=0)

    constructed, previous = _counting_hook()
    try:
        system = PyAstSystem()
        instrumented = system.expand(classify)
        system.profile(instrumented, [(c,) for c in "abcbcbc"])
        system.expand(classify)
        assert constructed == []
    finally:
        set_decision_record_hook(previous)


def test_enabled_tracing_constructs_records():
    """The same compile under a tracer does build records — the hook works."""
    constructed, previous = _counting_hook()
    try:
        system = _if_r_system()
        system.profile_run(PROGRAM, "unit.ss", mode=ProfileMode.EXPR)
        reset_generated_points()
        with using_tracer(Tracer()):
            system.compile(PROGRAM, "unit.ss")
        assert len(constructed) == 1
        assert constructed[0].construct == "if-r"
    finally:
        set_decision_record_hook(previous)
