"""The Chrome ``trace_event`` exporter: Perfetto-loadable structure."""

import json

from repro.obs.export import render_chrome_trace
from repro.obs.tracer import TRACE_SCHEMA_VERSION, Tracer


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("program", "p.ss"):
        with tracer.span("expand", "case"):
            tracer.record_query("p.ss:3:4", 0.5)
            tracer.decision("case", "scheme", chosen=("reordered",))
        tracer.event("error", "unit-1", error="boom")
    tracer.close()
    return tracer


def test_chrome_document_structure():
    document = json.loads(render_chrome_trace(_sample_tracer()))
    assert document["otherData"]["schema"] == "pgmp-trace-chrome"
    assert document["otherData"]["trace_schema_version"] == TRACE_SCHEMA_VERSION
    assert document["otherData"]["clock"] == "logical-ticks"
    events = document["traceEvents"]
    assert events, "no events emitted"
    # Spans are complete events, queries/decisions/events are instants.
    phases = {event["name"]: event["ph"] for event in events}
    assert phases["p.ss"] == "X"
    assert phases["case"] == "X"
    assert phases["profile-query p.ss:3:4"] == "i"
    assert phases["case decision"] == "i"


def test_chrome_events_have_required_fields_and_are_sorted():
    events = json.loads(render_chrome_trace(_sample_tracer()))["traceEvents"]
    for event in events:
        assert {"name", "cat", "ph", "ts", "pid", "tid"} <= event.keys()
        if event["ph"] == "X":
            assert event["dur"] >= 1
        else:
            assert event["s"] == "t"
    stamps = [(event["ts"], event["name"]) for event in events]
    assert stamps == sorted(stamps)


def test_chrome_decision_args_carry_the_record():
    events = json.loads(render_chrome_trace(_sample_tracer()))["traceEvents"]
    decision = next(e for e in events if e["cat"] == "decision")
    assert decision["args"]["chosen"] == ["reordered"]
    assert decision["args"]["inputs"] == [
        {"point": "p.ss:3:4", "weight": 0.5}
    ]
