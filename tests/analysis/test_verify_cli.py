"""End-to-end tests for the ``pgmp verify`` subcommand (and the
``pgmp lint --verify-artifacts`` bridge)."""

from __future__ import annotations

import json

import pytest

from repro.tools.cli import main

CLEAN = """
(define (loop n acc) (if (= n 0) acc (loop (- n 1) (+ acc n))))
(loop 5 0)
"""

FALLBACK = "(define stx #'(a b)) (pair? 1)\n"

EMBEDDED = '''
SCHEME = """
(define (inc x) (+ x 1))
(inc 41)
"""
'''


@pytest.fixture
def write(tmp_path):
    def _write(name: str, text: str) -> str:
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return _write


@pytest.fixture
def cache_dir(tmp_path):
    """A populated ArtifactCache directory and a tamper helper."""
    from repro.scheme.compile_py.cache import ArtifactCache
    from repro.scheme.pipeline import SchemeSystem

    directory = tmp_path / "cache"
    directory.mkdir()
    SchemeSystem().compile_cached(CLEAN, "<cli>", cache=ArtifactCache(directory))
    return directory


class TestExitCodes:
    def test_clean_file_exits_0(self, write, capsys):
        assert main(["verify", write("f.ss", CLEAN)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_fallback_is_info_and_exits_0(self, write, capsys):
        assert main(["verify", write("f.ss", FALLBACK)]) == 0
        out = capsys.readouterr().out
        assert "PGMP506" in out
        assert "interpreter fallback" in out

    def test_no_inputs_is_usage_error(self, capsys):
        assert main(["verify"]) == 2
        assert "nothing to verify" in capsys.readouterr().err

    def test_missing_file_is_a_cli_error(self, capsys):
        assert main(["verify", "/nonexistent/f.ss"]) == 1
        assert capsys.readouterr().err.startswith("pgmp: error:")

    def test_unparsable_program_is_reported_not_raised(self, write, capsys):
        assert main(["verify", write("f.ss", "(define (f x)")]) == 0
        out = capsys.readouterr().out
        assert "PGMP001" in out
        assert "could not be expanded" in out


class TestInputs:
    def test_directory_recurses(self, write, tmp_path, capsys):
        write("a.ss", CLEAN)
        write("b.py", EMBEDDED)
        assert main(["verify", str(tmp_path)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_embedded_python_programs_are_verified(self, write, capsys):
        assert main(["verify", write("m.py", EMBEDDED)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_cache_dir_clean(self, cache_dir, capsys):
        assert main(["verify", "--cache-dir", str(cache_dir)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_cache_dir_tamper_is_an_error(self, cache_dir, capsys):
        (path,) = sorted(cache_dir.glob("*.py"))
        path.write_text(path.read_text().replace("_B = GB.bindings", "pass", 1))
        assert main(["verify", "--cache-dir", str(cache_dir)]) == 1
        out = capsys.readouterr().out
        assert "PGMP503" in out
        assert "checksum mismatch" in out

    def test_files_and_cache_dir_combine(self, write, cache_dir, capsys):
        assert main(
            ["verify", write("f.ss", CLEAN), "--cache-dir", str(cache_dir)]
        ) == 0
        assert "no findings" in capsys.readouterr().out


class TestJsonOutput:
    def test_json_shares_the_lint_schema(self, write, capsys):
        assert main(["verify", write("f.ss", FALLBACK), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "pgmp-lint"
        assert payload["version"] == 1
        codes = {d["code"] for d in payload["diagnostics"]}
        assert codes == {"PGMP506"}
        assert payload["summary"]["error"] == 0

    def test_severity_gate_hides_infos(self, write, capsys):
        assert main(
            ["verify", write("f.ss", FALLBACK), "--severity", "warning"]
        ) == 0
        assert "PGMP506" not in capsys.readouterr().out


class TestLintBridge:
    def test_lint_verify_artifacts_appends_pgmp5_diagnostics(
        self, write, capsys
    ):
        target = write("f.ss", FALLBACK)
        assert main(
            ["lint", target, "--verify-artifacts", "--severity", "info"]
        ) == 0
        assert "PGMP506" in capsys.readouterr().out

    def test_lint_without_flag_never_compiles(self, write, capsys):
        assert main(["lint", write("f.ss", FALLBACK), "--severity", "info"]) == 0
        assert "PGMP506" not in capsys.readouterr().out

    def test_lint_directory_recurses(self, write, tmp_path, capsys):
        write("a.ss", CLEAN)
        nested = tmp_path / "sub"
        nested.mkdir()
        (nested / "b.ss").write_text(CLEAN)
        assert main(["lint", str(tmp_path)]) == 0
        assert "no findings" in capsys.readouterr().out
