"""Golden-output tests for the diagnostics framework and its renderers."""

from __future__ import annotations

import json

import pytest

from repro.analysis.diagnostics import (
    CODE_CATALOG,
    AnalysisReport,
    Diagnostic,
    Severity,
    render_json,
    render_text,
)
from repro.core.srcloc import SourceLocation


def sample_report() -> AnalysisReport:
    report = AnalysisReport()
    report.emit(
        "PGMP101",
        "test has a side effect",
        location=SourceLocation("f.ss", 10, 20, 3, 4),
        pass_name="effects",
    )
    report.emit(
        "PGMP103",
        "test purity cannot be proved",
        location=SourceLocation("f.ss", 30, 40, 5, 2),
        pass_name="effects",
    )
    report.emit("PGMP302", "profile knows no branch", pass_name="coverage")
    return report


GOLDEN_TEXT = """\
f.ss:3:4: error: PGMP101: test has a side effect
f.ss:5:2: warning: PGMP103: test purity cannot be proved
<no location>: info: PGMP302: profile knows no branch
pgmp lint: 1 error(s), 1 warning(s), 1 info"""


GOLDEN_JSON_OBJECT = {
    "format": "pgmp-lint",
    "version": 1,
    "diagnostics": [
        {
            "code": "PGMP101",
            "severity": "error",
            "pass": "effects",
            "message": "test has a side effect",
            "location": {
                "filename": "f.ss",
                "line": 3,
                "column": 4,
                "start": 10,
                "end": 20,
            },
        },
        {
            "code": "PGMP103",
            "severity": "warning",
            "pass": "effects",
            "message": "test purity cannot be proved",
            "location": {
                "filename": "f.ss",
                "line": 5,
                "column": 2,
                "start": 30,
                "end": 40,
            },
        },
        {
            "code": "PGMP302",
            "severity": "info",
            "pass": "coverage",
            "message": "profile knows no branch",
        },
    ],
    "summary": {"error": 1, "warning": 1, "info": 1},
}


class TestTextRenderer:
    def test_golden_full_output(self):
        assert render_text(sample_report()) == GOLDEN_TEXT

    def test_severity_gate_hides_lower_findings(self):
        text = render_text(sample_report(), min_severity="error")
        assert "PGMP101" in text
        assert "PGMP103" not in text
        assert "PGMP302" not in text
        assert text.endswith("pgmp lint: 1 error(s), 0 warning(s), 0 info")

    def test_empty_report_is_clean_line(self):
        assert render_text(AnalysisReport()) == "pgmp lint: no findings"

    def test_gate_that_hides_everything_is_clean_line(self):
        report = AnalysisReport()
        report.emit("PGMP302", "nothing", pass_name="coverage")
        assert render_text(report, min_severity="error") == "pgmp lint: no findings"


class TestJsonRenderer:
    def test_golden_full_output(self):
        rendered = render_json(sample_report())
        assert json.loads(rendered) == GOLDEN_JSON_OBJECT
        # The serialized form itself is stable (sorted keys, 2-space indent).
        assert rendered == json.dumps(GOLDEN_JSON_OBJECT, indent=2, sort_keys=True)

    def test_severity_gate(self):
        payload = json.loads(render_json(sample_report(), min_severity="warning"))
        assert [d["code"] for d in payload["diagnostics"]] == ["PGMP101", "PGMP103"]
        assert payload["summary"] == {"error": 1, "warning": 1, "info": 0}


class TestSeverity:
    def test_coerce_accepts_names_and_values(self):
        assert Severity.coerce("error") is Severity.ERROR
        assert Severity.coerce("WARNING") is Severity.WARNING
        assert Severity.coerce(Severity.INFO) is Severity.INFO

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.coerce("fatal")

    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO


class TestCatalog:
    def test_unknown_code_is_a_programming_error(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic.make("PGMP999", "nope")

    def test_every_pass_family_is_represented(self):
        families = {code[:5] for code in CODE_CATALOG}
        assert families == {
            "PGMP0", "PGMP1", "PGMP2", "PGMP3", "PGMP4", "PGMP5",
        }

    def test_default_severities_come_from_catalog(self):
        diag = Diagnostic.make("PGMP203", "points differ")
        assert diag.severity is Severity.ERROR
        diag = Diagnostic.make("PGMP203", "points differ", severity=Severity.INFO)
        assert diag.severity is Severity.INFO


class TestReportHelpers:
    def test_codes_and_by_code_and_max_severity(self):
        report = sample_report()
        assert report.codes() == ["PGMP101", "PGMP103", "PGMP302"]
        assert len(report.by_code("PGMP103")) == 1
        assert report.max_severity() is Severity.ERROR
        assert AnalysisReport().max_severity() is None

    def test_extend_concatenates_in_order(self):
        a, b = sample_report(), sample_report()
        a.extend(b)
        assert len(a) == 6
        assert bool(a) and not bool(AnalysisReport())
