"""One test per diagnostic code, over the Python-AST substrate."""

from __future__ import annotations

import ast
import inspect
import textwrap

from repro.analysis import AnalysisReport, analyze_python_function, analyze_python_source
from repro.analysis.pyast_passes import _check_py_coverage
from repro.core.counters import CounterSet
from repro.core.database import ProfileDatabase, source_fingerprint
from repro.core.profile_point import ProfilePoint
from repro.pyast.casestudies import pycase  # noqa: F401 (expanded sources)
from repro.pyast.macros import MacroRegistry, expand_function
from repro.pyast.system import PyAstSystem


def codes(report) -> set[str]:
    return set(report.codes())


# -- PGMP0xx ------------------------------------------------------------------


class TestParseAndExpansionFailure:
    def test_pgmp001_on_unparsable_source(self):
        report = analyze_python_source("def f(:\n", "bad.py")
        assert codes(report) == {"PGMP001"}

    def test_pgmp001_when_expansion_raises(self):
        registry = MacroRegistry()

        @registry.macro("boom")
        def _boom(node, ctx):
            from repro.core.errors import MacroError

            raise MacroError("no")

        def uses_boom(x):
            return boom(x)  # noqa: F821 — expanded away (or not, here)

        report = analyze_python_function(
            uses_boom, expand=lambda fn: expand_function(fn, registry)
        )
        assert "PGMP001" in codes(report)


# -- PGMP1xx ------------------------------------------------------------------


class TestEffectsAndExclusivity:
    def test_pgmp101_mutating_constants_expression(self):
        source = """
def f(k, acc):
    return pycase(k, ((1,), 'a'), ((acc.pop(),), 'b'), default=None)
"""
        report = analyze_python_source(source, "f.py")
        diags = report.by_code("PGMP101")
        assert len(diags) == 1
        assert "pop" in diags[0].message

    def test_pgmp102_shared_constants_between_clauses(self):
        source = """
def f(k):
    return pycase(k, ((1, 2), 'a'), ((2, 3), 'b'), default=None)
"""
        report = analyze_python_source(source, "f.py")
        diags = report.by_code("PGMP102")
        assert len(diags) == 1
        assert "repeats 2" in diags[0].message

    def test_pgmp103_computed_constants_are_unprovable(self):
        source = """
def f(k, lookup):
    return pycase(k, ((lookup(0),), 'a'), ((2,), 'b'), default=None)
"""
        report = analyze_python_source(source, "f.py")
        assert len(report.by_code("PGMP103")) == 1
        assert not report.errors()

    def test_if_r_has_no_effects_obligation(self):
        # if_r's test runs exactly once in both expansions; effects in it
        # are reorder-safe.
        source = """
def f(xs):
    return if_r(xs.pop() > 0, 'pos', 'neg')
"""
        report = analyze_python_source(source, "f.py")
        assert "PGMP101" not in codes(report)
        assert "PGMP103" not in codes(report)

    def test_clean_pycase_has_no_findings(self):
        source = """
def f(k):
    return pycase(k, ((1, 2), 'a'), ((3, 4), 'b'), default='z')
"""
        report = analyze_python_source(source, "f.py")
        assert not report.diagnostics


class TestEmbeddedScheme:
    def test_embedded_program_surface_analyzed(self):
        source = '''
PROGRAM = """
(case x
  [(1 2) 'a]
  [(2) 'b]
  [else 'c])
"""
'''
        report = analyze_python_source(source, "f.py")
        diags = report.by_code("PGMP102")
        assert len(diags) == 1
        assert diags[0].location is not None
        assert diags[0].location.filename.startswith("f.py#L")

    def test_fstring_templates_are_skipped(self):
        source = """
def render(n):
    return f"(case {n} [(1) 'a] [(1) 'b])"
"""
        report = analyze_python_source(source, "f.py")
        assert not report.diagnostics

    def test_non_scheme_strings_are_ignored(self):
        report = analyze_python_source(
            "x = '(case closed — not a scheme program'\n", "f.py"
        )
        assert not report.diagnostics


# -- PGMP2xx ------------------------------------------------------------------


def _aliasing_registry() -> MacroRegistry:
    registry = MacroRegistry()

    @registry.macro("both")
    def _both(node, ctx):
        point = ctx.make_profile_point(node)
        a = ctx.annotate(node.args[0], point)
        b = ctx.annotate(node.args[1], point)
        out = ast.BoolOp(op=ast.And(), values=[a, b])
        return ast.copy_location(out, node)

    return registry


def _splitting_registry() -> MacroRegistry:
    registry = MacroRegistry()

    @registry.macro("twice")
    def _twice(node, ctx):
        first = ctx.make_profile_point(node)
        second = ctx.make_profile_point(node)
        doubled = ctx.annotate(ctx.annotate(node.args[0], first), second)
        out = ast.BoolOp(op=ast.Or(), values=[doubled, ast.Constant(value=False)])
        return ast.copy_location(out, node)

    return registry


def _nondeterministic_registry() -> MacroRegistry:
    registry = MacroRegistry()
    state = {"n": 0}

    @registry.macro("flaky")
    def _flaky(node, ctx):
        state["n"] += 1
        if state["n"] % 2:
            return ctx.annotate(node.args[0], ctx.make_profile_point(node))
        return node.args[0]

    return registry


class TestHygiene:
    def test_pgmp201_one_point_many_locations(self):
        def uses_both(x, y):
            return both(x + 1, y + 2)  # noqa: F821 — expanded away

        registry = _aliasing_registry()
        report = analyze_python_function(
            uses_both, expand=lambda fn: expand_function(fn, registry)
        )
        diags = report.by_code("PGMP201")
        assert len(diags) == 1
        assert "counters alias" in diags[0].message

    def test_pgmp202_one_expression_many_points(self):
        def uses_twice(x):
            return twice(x + 1)  # noqa: F821 — expanded away

        registry = _splitting_registry()
        report = analyze_python_function(
            uses_twice, expand=lambda fn: expand_function(fn, registry)
        )
        diags = report.by_code("PGMP202")
        assert len(diags) == 1
        assert "split" in diags[0].message

    def test_pgmp203_nondeterministic_generated_points(self):
        def uses_flaky(x):
            return flaky(x + 1)  # noqa: F821 — expanded away

        registry = _nondeterministic_registry()
        report = analyze_python_function(
            uses_flaky, expand=lambda fn: expand_function(fn, registry)
        )
        assert len(report.by_code("PGMP203")) == 1

    def test_shipped_macros_are_hygienic(self):
        def classify(k):
            return pycase(k, ((1,), "a"), ((2,), "b"), default="z")

        report = PyAstSystem().analyze(classify)
        assert not report.diagnostics


# -- PGMP3xx ------------------------------------------------------------------


class TestCoverage:
    def test_pgmp301_branch_without_position(self):
        report = AnalysisReport()
        construct = ast.Call(
            func=ast.Name(id="if_r", ctx=ast.Load()),
            args=[ast.Name(id="t", ctx=ast.Load()),
                  ast.Name(id="a", ctx=ast.Load()),
                  ast.Name(id="b", ctx=ast.Load())],
            keywords=[],
        )
        _check_py_coverage(
            report, "if_r", construct, list(construct.args[1:3]), "f.py", None
        )
        assert len(report.by_code("PGMP301")) == 2

    def test_pgmp302_profile_knows_no_branch(self):
        def classify(k):
            return pycase(k, ((1,), "a"), ((2,), "b"), default="z")

        system = PyAstSystem()
        # Data exists, but for an unrelated point in an unrelated file.
        counters = CounterSet(name="other")
        counters.increment(ProfilePoint.from_key("other.py:10-20:1.0"))
        system.profile_db.record_counters(counters)

        source = textwrap.dedent(inspect.getsource(classify))
        report = analyze_python_source(source, "f.py", db=system.profile_db)
        assert len(report.by_code("PGMP302")) == 1

    def test_no_pgmp302_after_real_profiling(self):
        def classify(k):
            return pycase(k, ((1,), "a"), ((2,), "b"), default="z")

        system = PyAstSystem()
        instrumented = system.expand(classify)
        system.profile(instrumented, [(1,), (2,)])
        report = system.analyze(classify)
        assert "PGMP302" not in codes(report)


# -- PGMP4xx ------------------------------------------------------------------


class TestStaleness:
    def test_pgmp402_fingerprint_mismatch(self):
        def classify(k):
            return pycase(k, ((1,), "a"), ((2,), "b"), default="z")

        filename = inspect.getsourcefile(classify)
        system = PyAstSystem()
        instrumented = system.expand(classify)
        system.profile(
            instrumented,
            [(1,)],
            fingerprints={filename: source_fingerprint("an older revision")},
        )
        report = system.analyze(classify)
        diags = report.by_code("PGMP402")
        assert len(diags) == 1
        assert "different source" in diags[0].message

    def test_pgmp401_dead_point_in_analyzed_file(self):
        def classify(k):
            return pycase(k, ((1,), "a"), ((2,), "b"), default="z")

        filename = inspect.getsourcefile(classify)
        db = ProfileDatabase()
        counters = CounterSet(name="stale")
        # A counter for a location this file cannot produce.
        counters.increment(
            ProfilePoint.from_key(f"{filename}:999990000-999990009:99999.0")
        )
        db.record_counters(counters)
        report = analyze_python_function(classify, db=db)
        assert len(report.by_code("PGMP401")) == 1

    def test_live_points_are_not_flagged(self):
        def classify(k):
            return pycase(k, ((1,), "a"), ((2,), "b"), default="z")

        system = PyAstSystem()
        instrumented = system.expand(classify)
        system.profile(instrumented, [(1,), (2,)])
        report = system.analyze(classify)
        assert "PGMP401" not in codes(report)
        assert "PGMP402" not in codes(report)
