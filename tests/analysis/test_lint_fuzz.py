"""Property fuzzing of the linter: it must never crash.

The contract of ``pgmp lint`` is that any program the reader accepts is
analyzable — the passes may find nothing, but they may not raise. The
generators bias toward the optimizable heads (``case``, ``exclusive-cond``,
``and-r``, …) so the passes actually execute, including on malformed uses
of those heads (a clause that is an atom, an ``else`` in the wrong place),
which is exactly where a naive pass would crash.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import AnalysisReport, analyze_scheme_source
from repro.analysis.scheme_passes import analyze_scheme_forms
from repro.analysis.runner import lint_source
from repro.scheme.reader import read_string

_atoms = st.sampled_from(
    ["1", "42", "#t", "foo", '"s"', "#\\c", "2/3", "else",
     "case", "exclusive-cond", "if-r", "and-r", "or-r", "=>"]
)
_forms = st.recursive(
    _atoms,
    lambda sub: st.lists(sub, min_size=0, max_size=4).map(
        lambda items: "(" + " ".join(items) + ")"
    ),
    max_leaves=16,
)


@given(st.lists(_forms, min_size=0, max_size=4))
@settings(max_examples=60, deadline=None)
def test_surface_passes_never_crash(items):
    source = "\n".join(items)
    forms = read_string(source, "fuzz.ss")
    report = analyze_scheme_forms(forms, AnalysisReport())
    for diagnostic in report:
        assert diagnostic.code in {
            "PGMP101", "PGMP102", "PGMP103", "PGMP301", "PGMP302"
        }


@given(st.lists(_forms, min_size=1, max_size=3))
@settings(max_examples=30, deadline=None)
def test_full_analysis_never_crashes(items):
    # Full pipeline, expansion included: random programs mostly fail to
    # expand (unbound names, malformed core forms) — that must degrade to
    # PGMP001, not propagate.
    source = "\n".join(items)
    report = lint_source(source, "fuzz.ss", kind="scheme")
    assert isinstance(report, AnalysisReport)


@given(_forms, _forms, _forms)
@settings(max_examples=30, deadline=None)
def test_malformed_optimizable_heads_never_crash(a, b, c):
    # Deliberately ill-shaped uses of every optimizable construct.
    source = (
        f"(case {a} {b} {c})\n"
        f"(exclusive-cond {a} {b})\n"
        f"(if-r {a})\n"
        f"(and-r)\n"
        f"(or-r {a} {b} {c})\n"
        f"(case)\n"
        f"(exclusive-cond [else {a}] {b})\n"
    )
    report = analyze_scheme_source(source, "fuzz.ss")
    assert isinstance(report, AnalysisReport)
