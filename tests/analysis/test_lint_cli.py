"""End-to-end tests for the ``pgmp lint`` subcommand."""

from __future__ import annotations

import glob
import json

import pytest

from repro.tools.cli import main

OVERLAPPING = """
(define (f x)
  (case x [(1 2) 'a] [(2 3) 'b] [else 'c]))
"""

UNPROVABLE = """
(define (f x)
  (exclusive-cond [(hot? x) 'a] [else 'b]))
"""

CLEAN = """
(define (f x)
  (case x [(1 2) 'a] [(3 4) 'b] [else 'c]))
"""


@pytest.fixture
def write(tmp_path):
    def _write(name: str, text: str) -> str:
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return _write


class TestExitCodes:
    def test_error_finding_exits_1(self, write, capsys):
        assert main(["lint", write("f.ss", OVERLAPPING)]) == 1
        out = capsys.readouterr().out
        assert "PGMP102" in out
        assert "1 error(s)" in out

    def test_warning_only_exits_0(self, write, capsys):
        assert main(["lint", write("f.ss", UNPROVABLE)]) == 0
        out = capsys.readouterr().out
        assert "PGMP103" in out

    def test_clean_file_exits_0(self, write, capsys):
        assert main(["lint", write("f.ss", CLEAN)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_missing_file_is_a_cli_error(self, capsys):
        assert main(["lint", "/nonexistent/f.ss"]) == 1
        assert capsys.readouterr().err.startswith("pgmp: error:")


class TestSeverityGate:
    def test_gate_hides_warnings_but_exit_still_reflects_errors(
        self, write, capsys
    ):
        target = write("f.ss", OVERLAPPING + UNPROVABLE)
        assert main(["lint", target, "--severity", "error"]) == 1
        out = capsys.readouterr().out
        assert "PGMP102" in out
        assert "PGMP103" not in out

    def test_gated_out_warnings_do_not_flip_exit_code(self, write, capsys):
        assert main(["lint", write("f.ss", UNPROVABLE),
                     "--severity", "error"]) == 0
        assert "no findings" in capsys.readouterr().out


class TestJsonFormat:
    def test_json_is_parsable_and_versioned(self, write, capsys):
        assert main(["lint", write("f.ss", OVERLAPPING),
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "pgmp-lint"
        assert payload["version"] == 1
        assert [d["code"] for d in payload["diagnostics"]] == ["PGMP102"]
        assert payload["diagnostics"][0]["location"]["filename"].endswith("f.ss")


class TestMultipleFilesAndKinds:
    def test_findings_accumulate_across_files(self, write, capsys):
        a = write("a.ss", OVERLAPPING)
        b = write("b.py", "def f(k):\n"
                  "    return pycase(k, ((1, 2), 'x'), ((2,), 'y'), default=0)\n")
        assert main(["lint", a, b]) == 1
        out = capsys.readouterr().out
        assert out.count("PGMP102") == 2

    def test_python_files_are_never_executed(self, write, capsys):
        target = write("evil.py", "import sys\nsys.exit(99)\n"
                       "raise RuntimeError('executed!')\n")
        assert main(["lint", target]) == 0
        assert "no findings" in capsys.readouterr().out


class TestLibrariesAndProfiles:
    def test_library_file_enables_macro_passes(self, write, capsys):
        lib = write("flaky.ss", """
(meta (define flip #f))
(define-syntax (flaky syn)
  (syntax-case syn ()
    [(_ e)
     (begin
       (set! flip (not flip))
       (if flip
           (annotate-expr #'e (make-profile-point syn))
           #'e))]))
""")
        target = write("f.ss", "(flaky (+ 1 2))")
        assert main(["lint", target, "--library", lib]) == 1
        assert "PGMP203" in capsys.readouterr().out

    def test_stale_profile_reports_pgmp402_instead_of_refusing(
        self, write, tmp_path, capsys
    ):
        program = write("prog.ss", "(define (f x) (case x [(1) 'a] [else 'b]))\n(f 1)\n")
        profile = str(tmp_path / "prog.profile")
        assert main(["profile", program, "--library", "case",
                     "--out", profile]) == 0
        with open(program, "a", encoding="utf-8") as handle:
            handle.write(";; edited since profiling\n")
        capsys.readouterr()
        assert main(["lint", program, "--library", "case",
                     "--profile-file", profile]) == 1
        out = capsys.readouterr().out
        assert "PGMP402" in out

    def test_fresh_profile_is_not_stale(self, write, tmp_path, capsys):
        program = write("prog.ss", "(define (f x) (case x [(1) 'a] [else 'b]))\n(f 1)\n")
        profile = str(tmp_path / "prog.profile")
        assert main(["profile", program, "--library", "case",
                     "--out", profile]) == 0
        capsys.readouterr()
        assert main(["lint", program, "--library", "case",
                     "--profile-file", profile]) == 0


class TestShippedExamples:
    @pytest.mark.parametrize(
        "example", sorted(glob.glob("examples/*.py")) or ["<missing>"]
    )
    def test_examples_lint_clean(self, example, capsys):
        assert example != "<missing>", "examples/ directory not found"
        assert main(["lint", example]) == 0
