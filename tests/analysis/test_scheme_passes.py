"""One test per diagnostic code, over the Scheme substrate."""

from __future__ import annotations

from repro.analysis import AnalysisReport, analyze_scheme_source
from repro.analysis.scheme_passes import analyze_scheme_forms
from repro.casestudies.boolean_reorder import BOOLEAN_REORDER_LIBRARY
from repro.casestudies.exclusive_cond import make_case_system
from repro.scheme.datum import Symbol, scheme_list
from repro.scheme.pipeline import SchemeSystem
from repro.scheme.syntax import datum_to_syntax


def codes(report) -> set[str]:
    return set(report.codes())


# -- PGMP0xx ------------------------------------------------------------------


class TestExpansionFailure:
    def test_pgmp001_when_expansion_fails_surface_passes_still_run(self):
        # `(if)` is a malformed core form: expansion fails, but the surface
        # passes still see the duplicate test.
        source = """
        (define (f x)
          (exclusive-cond [(> x 0) 'a] [(> x 0) 'b] [else 'c]))
        (if)
        """
        report = SchemeSystem().analyze(source, "f.ss")
        assert "PGMP001" in codes(report)
        assert "PGMP102" in codes(report)


# -- PGMP1xx ------------------------------------------------------------------


class TestEffectsAndExclusivity:
    def test_pgmp101_side_effecting_test(self):
        source = """
        (define (f x)
          (exclusive-cond
            [(begin (set! x 1) (> x 0)) 'pos]
            [else 'neg]))
        """
        report = make_case_system().analyze(source, "f.ss")
        diags = report.by_code("PGMP101")
        assert len(diags) == 1
        assert "set!" in diags[0].message

    def test_pgmp101_impure_primitive_in_and_r_operand(self):
        system = SchemeSystem()
        system.load_library(BOOLEAN_REORDER_LIBRARY, "boolean-reorder.ss")
        report = system.analyze("(and-r (begin (display 1) #t) #f)", "f.ss")
        assert "PGMP101" in codes(report)

    def test_pgmp102_overlapping_case_constants(self):
        source = """
        (define (f x)
          (case x [(1 2) 'a] [(2 3) 'b] [else 'c]))
        """
        report = make_case_system().analyze(source, "f.ss")
        diags = report.by_code("PGMP102")
        assert len(diags) == 1
        assert "repeats 2" in diags[0].message

    def test_pgmp102_duplicate_exclusive_cond_test(self):
        source = """
        (define (f x)
          (exclusive-cond [(> x 0) 'a] [(> x 0) 'b] [else 'c]))
        """
        report = make_case_system().analyze(source, "f.ss")
        assert len(report.by_code("PGMP102")) == 1

    def test_pgmp103_unprovable_test_purity_is_warning_not_error(self):
        source = "(define (f x) (exclusive-cond [(hot? x) 'a] [else 'b]))"
        report = make_case_system().analyze(source, "f.ss")
        diags = report.by_code("PGMP103")
        assert len(diags) == 1
        assert not report.errors()

    def test_pure_tests_and_disjoint_constants_are_clean(self):
        source = """
        (define (f x)
          (case x [(1 2) 'a] [(3 4) 'b] [else 'c]))
        (define (g x)
          (exclusive-cond [(< x 0) 'neg] [(= x 0) 'zero] [else 'pos]))
        """
        report = make_case_system().analyze(source, "f.ss")
        assert not report.diagnostics


# -- PGMP2xx ------------------------------------------------------------------

#: A macro that annotates two *different* expressions with one point:
#: their counters alias (PGMP201).
ALIASING_LIBRARY = r"""
(define-syntax (same-point-twice syn)
  (syntax-case syn ()
    [(_ a b)
     (let ([pt (make-profile-point syn)])
       #`(if #,(annotate-expr #'a pt) #,(annotate-expr #'b pt) #f))]))
"""

#: A macro that copies its argument and re-annotates only one copy: the
#: source expression now carries two points (PGMP202).
SPLITTING_LIBRARY = r"""
(define-syntax (dup syn)
  (syntax-case syn ()
    [(_ e)
     (let ([pt (make-profile-point syn)])
       #`(if #,(annotate-expr #'e pt) e #f))]))
"""

#: A macro whose fresh-point generation depends on mutable meta-level
#: state that persists across compiles: expansion is nondeterministic
#: (PGMP203).
NONDETERMINISTIC_LIBRARY = r"""
(meta (define flip #f))
(define-syntax (flaky syn)
  (syntax-case syn ()
    [(_ e)
     (begin
       (set! flip (not flip))
       (if flip
           (annotate-expr #'e (make-profile-point syn))
           #'e))]))
"""


class TestHygiene:
    def test_pgmp201_one_point_many_locations(self):
        system = SchemeSystem()
        system.load_library(ALIASING_LIBRARY, "aliasing.ss")
        report = system.analyze("(same-point-twice (+ 1 2) (+ 3 4))", "f.ss")
        diags = report.by_code("PGMP201")
        assert len(diags) == 1
        assert "counters alias" in diags[0].message

    def test_pgmp202_one_expression_many_points(self):
        system = SchemeSystem()
        system.load_library(SPLITTING_LIBRARY, "splitting.ss")
        report = system.analyze("(dup (+ 1 2))", "f.ss")
        diags = report.by_code("PGMP202")
        assert len(diags) == 1
        assert "split" in diags[0].message

    def test_pgmp203_nondeterministic_generated_points(self):
        system = SchemeSystem()
        system.load_library(NONDETERMINISTIC_LIBRARY, "flaky.ss")
        report = system.analyze("(flaky (+ 1 2))", "f.ss")
        diags = report.by_code("PGMP203")
        assert len(diags) == 1
        assert report.errors()

    def test_deterministic_generated_points_are_clean(self):
        system = SchemeSystem()
        system.load_library(BOOLEAN_REORDER_LIBRARY, "boolean-reorder.ss")
        report = system.analyze("(and-r (> 1 0) (> 2 0))", "f.ss")
        assert "PGMP203" not in codes(report)
        assert "PGMP201" not in codes(report)
        assert "PGMP202" not in codes(report)


# -- PGMP3xx ------------------------------------------------------------------


class TestCoverage:
    def test_pgmp301_branch_without_location_has_no_point(self):
        # Surface syntax manufactured without source locations — the shape a
        # careless meta-program hands to the analyzer.
        form = datum_to_syntax(
            scheme_list(Symbol("if-r"), Symbol("t"), Symbol("a"), Symbol("b"))
        )
        report = analyze_scheme_forms([form], AnalysisReport())
        assert len(report.by_code("PGMP301")) == 2  # both branches

    def test_pgmp302_profile_knows_no_branch_of_construct(self):
        system = make_case_system()
        system.profile_run("(case 1 [(1) 'a] [else 'b])", "a.ss")
        report = system.analyze(
            "(define (h x) (case x [(5) 'v] [else 'w]))", "b.ss"
        )
        diags = report.by_code("PGMP302")
        assert len(diags) == 1
        assert diags[0].severity.name == "INFO"

    def test_no_pgmp302_when_profile_covers_the_construct(self):
        system = make_case_system()
        source = "(define (f x) (case x [(1) 'a] [else 'b]))\n(f 1)"
        system.profile_run(source, "a.ss")
        report = system.analyze(source, "a.ss")
        assert "PGMP302" not in codes(report)


# -- PGMP4xx ------------------------------------------------------------------


class TestStaleness:
    def test_pgmp402_and_pgmp401_after_source_rewrite(self):
        system = make_case_system()
        old = """
        (define (f x) (case x [(1) 'one] [(2) 'two] [else 'o]))
        (f 1)
        (f 2)
        """
        system.profile_run(old, "prog.ss")
        new = "(define (g y) y)\n(g 5)\n"
        report = system.analyze(new, "prog.ss")
        assert len(report.by_code("PGMP402")) == 1  # fingerprint mismatch
        assert report.by_code("PGMP401")  # f's points are dead in g

    def test_same_source_is_not_stale(self):
        system = make_case_system()
        source = "(define (f x) (case x [(1) 'a] [else 'b]))\n(f 1)\n"
        system.profile_run(source, "prog.ss")
        report = system.analyze(source, "prog.ss")
        assert "PGMP401" not in codes(report)
        assert "PGMP402" not in codes(report)

    def test_points_of_unanalyzed_files_are_left_alone(self):
        system = make_case_system()
        system.profile_run("(case 1 [(1) 'a] [else 'b])", "other.ss")
        report = analyze_scheme_source(
            "(+ 1 2)", "this.ss", system=system, db=system.profile_db
        )
        assert "PGMP401" not in codes(report)


# -- direct API ----------------------------------------------------------------


class TestAnalyzeMethod:
    def test_analyze_does_not_mutate_system_state(self):
        system = make_case_system()
        source = "(define (f x) (case x [(1) 'a] [else 'b]))\n(f 1)\n"
        system.profile_run(source, "prog.ss")
        db_before = system.profile_db
        system.analyze(source, "prog.ss")
        assert system.profile_db is db_before

    def test_surface_only_without_system(self):
        report = analyze_scheme_source(
            "(case x [(1 1) 'a] [else 'b])", "f.ss"
        )
        # Duplicate constant inside ONE clause is not cross-clause overlap.
        assert "PGMP102" not in codes(report)
        assert "PGMP001" not in codes(report)  # no system, nothing skipped
