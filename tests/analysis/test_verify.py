"""Static translation validation (``pgmp verify`` / PGMP5xx).

Three layers of coverage:

* per-code goldens — each PGMP5xx code is provoked by *tampering* with a
  genuinely compiled artifact's generated source (so the checks are
  demonstrated to bite on realistic code, not synthetic strawmen);
* the differential gate — every artifact from the compile backend's
  17-program parity battery, in all four flavors, and every example file
  verifies with zero PGMP5xx errors;
* the cache layer — on-disk artifact modules are verified checksum-first
  (tampering is refused before the module is ever executed), and an
  ``ArtifactCache(verify="load")`` treats a failing artifact as a miss.
"""

from __future__ import annotations

import dataclasses
import glob
import json
import os
import re

import pytest

from repro.analysis.diagnostics import Severity, render_json, render_text
from repro.analysis.verify import (
    ALL_FLAVORS,
    expected_events,
    verify_artifact,
    verify_cache_dir,
    verify_path,
    verify_program,
)
from repro.scheme.compile_py.artifact import (
    _META_MARKER,
    artifact_checksum,
    compile_program,
)
from repro.scheme.compile_py.cache import ArtifactCache
from repro.scheme.pipeline import SchemeSystem
from repro.testing.faults import poison_compiled_program

TAIL_LOOP = """
(define (loop n acc) (if (= n 0) acc (loop (- n 1) (+ acc n))))
(define (second p) (car (cdr p)))
(loop 5 0)
(second (cons 1 (cons 2 '())))
"""


def _program(source: str = TAIL_LOOP, filename: str = "<verify-test>"):
    return SchemeSystem().compile(source, filename)


def _artifact(flavor: str = "instr+budget", source: str = TAIL_LOOP):
    return compile_program(_program(source), "<verify-test>", flavor)


def _tampered(artifact, pattern: str, replacement: str):
    """The artifact with a regex edit applied to its generated source.

    Asserts the edit actually matched — a tamper that silently no-ops
    would make the test vacuously green.
    """
    edited, count = re.subn(pattern, replacement, artifact.python_source)
    assert count > 0, f"tamper pattern {pattern!r} did not match"
    return dataclasses.replace(artifact, python_source=edited)


class TestCleanArtifacts:
    @pytest.mark.parametrize("flavor", ALL_FLAVORS)
    def test_every_flavor_verifies_clean(self, flavor):
        program = _program()
        report = verify_artifact(
            compile_program(program, "<t>", flavor), program=program
        )
        assert not report.diagnostics

    def test_verify_program_memoizes_compiled_flavors(self):
        program = _program()
        report = verify_program(program, "<t>")
        assert not report.errors()
        assert set(program.artifacts) == set(ALL_FLAVORS)

    def test_expected_events_match_codegen_metadata(self):
        program = _program()
        expected = expected_events(program)
        artifact = compile_program(program, "<t>", "instr+budget")
        assert expected.hook_sites == [tuple(s) for s in artifact.hook_sites]
        assert expected.charge_count == artifact.charge_count


class TestPGMP501:
    def test_swapped_hook_indices(self):
        bad = _tampered(_artifact("instr"), r"H\[1\]\(\)", "H[99]()")
        bad = _tampered(bad, r"H\[2\]\(\)", "H[1]()")
        bad = _tampered(bad, r"H\[99\]\(\)", "H[2]()")
        report = verify_artifact(bad)
        assert report.codes() == ["PGMP501"]
        assert report.errors()

    def test_dropped_hook_call(self):
        bad = _tampered(_artifact("instr"), r" *H\[2\]\(\)\n", "")
        report = verify_artifact(bad)
        assert "PGMP501" in report.codes()
        assert report.errors()

    def test_hook_in_non_instrumented_flavor(self):
        bad = _tampered(
            _artifact("plain"),
            r"    _B = GB\.bindings\n",
            "    _B = GB.bindings\n    H[0]()\n",
        )
        report = verify_artifact(bad)
        assert report.by_code("PGMP501")
        assert report.errors()

    def test_recorded_sites_diverge_from_interpreter_order(self):
        program = _program()
        artifact = compile_program(program, "<t>", "instr")
        swapped = dataclasses.replace(
            artifact,
            hook_sites=[artifact.hook_sites[1], artifact.hook_sites[0]]
            + artifact.hook_sites[2:],
        )
        report = verify_artifact(swapped, program=program)
        assert report.by_code("PGMP501")
        assert "diverges from interpreter order" in str(report.diagnostics[0])


class TestPGMP502:
    def test_dropped_charge(self):
        bad = _tampered(_artifact("budget"), r" *C\(\)\n", "", )
        report = verify_artifact(bad)
        assert report.codes() == ["PGMP502"]
        assert report.errors()

    def test_charge_in_non_budget_flavor(self):
        bad = _tampered(
            _artifact("plain"),
            r"    _B = GB\.bindings\n",
            "    _B = GB.bindings\n    C()\n",
        )
        report = verify_artifact(bad)
        assert report.codes() == ["PGMP502"]

    def test_bump_before_charge_breaks_interpreter_order(self):
        # Swap one C();H[5]() pair: counts stay right, order does not.
        bad = _tampered(
            _artifact("instr+budget"),
            r"( *)C\(\)\n( *)H\[5\]\(\)",
            r"\1H[5]()\n\2C()",
        )
        report = verify_artifact(bad)
        assert report.by_code("PGMP502")
        assert "charge, then bump" in report.by_code("PGMP502")[0].message


class TestPGMP503:
    def test_unbound_name(self):
        bad = _tampered(
            _artifact("plain"), r"_B\.get\(S0\)", "_B_oops.get(S0)"
        )
        report = verify_artifact(bad)
        assert report.codes() == ["PGMP503"]
        assert "_B_oops" in report.diagnostics[0].message

    def test_missing_entry_point(self):
        bad = _tampered(
            _artifact("plain"),
            r"def _pgmp_main\(GB, H, C\):",
            "def _pgmp_other(GB, H, C):",
        )
        report = verify_artifact(bad)
        assert report.by_code("PGMP503")
        assert "_pgmp_main" in report.by_code("PGMP503")[0].message

    def test_wrong_entry_point_signature(self):
        bad = _tampered(
            _artifact("plain"),
            r"def _pgmp_main\(GB, H, C\):",
            "def _pgmp_main(GB, H, C, X=None):",
        )
        report = verify_artifact(bad)
        assert report.by_code("PGMP503")

    def test_unparsable_source(self):
        bad = dataclasses.replace(
            _artifact("plain"), python_source="def _pgmp_main(GB, H, C:\n"
        )
        report = verify_artifact(bad)
        assert report.by_code("PGMP503")


class TestPGMP504:
    def test_sequential_rebinding(self):
        bad = _tampered(
            _artifact("plain"),
            r"( +)v_n_(\d+), v_acc_(\d+) = (.+), (.+)\n",
            r"\1v_n_\2 = \4\n\1v_acc_\3 = \5\n",
        )
        report = verify_artifact(bad)
        assert report.codes() == ["PGMP504"]
        assert "sequential" in report.diagnostics[0].message

    def test_duplicate_loop_parameter_target(self):
        bad = _tampered(
            _artifact("plain"),
            r"v_n_(\d+), v_acc_\d+ = ",
            r"v_n_\1, v_n_\1 = ",
        )
        report = verify_artifact(bad)
        assert "PGMP504" in report.codes()


class TestPGMP505:
    def test_stripped_identity_guard_on_arithmetic(self):
        bad = _tampered(
            _artifact("plain"), r"t(\d+) is RT\.P_add and type", "type"
        )
        report = verify_artifact(bad)
        assert report.codes() == ["PGMP505"]
        assert "arithmetic" in report.diagnostics[0].message

    def test_stripped_type_test_on_comparison(self):
        bad = _tampered(
            _artifact("plain"),
            r" and type\(v_n_(\d+)\) is int and type\(0\) is int",
            "",
        )
        report = verify_artifact(bad)
        assert report.by_code("PGMP505")

    def test_stripped_guard_on_field_access(self):
        bad = _tampered(
            _artifact("plain"), r"t(\d+) is RT\.P_cdr and ", ""
        )
        report = verify_artifact(bad)
        assert report.by_code("PGMP505")


class TestPGMP506:
    # A syntax template surviving to run time is not translatable, so the
    # backend falls back to the interpreter for every flavor.
    FALLBACK = "(define stx #'(a b)) (pair? 1)"

    def test_fallback_reports_info_not_error(self):
        program = _program(self.FALLBACK)
        artifact = compile_program(program, "<t>", "plain")
        assert not artifact.runnable
        report = verify_artifact(artifact, program=program)
        infos = report.by_code("PGMP506")
        assert infos and infos[0].severity is Severity.INFO
        assert artifact.unsupported_reason in infos[0].message
        assert not report.errors()

    def test_every_fallback_flavor_is_enumerated(self):
        program = _program(self.FALLBACK)
        report = verify_program(program, "<t>")
        assert len(report.by_code("PGMP506")) == len(ALL_FLAVORS)
        assert not report.errors()


class TestMutation:
    def test_poisoned_artifacts_are_rejected_statically(self):
        program = _program()
        poison_compiled_program(program)
        report = verify_program(program, "<t>")
        assert report.errors()
        # every flavor's poisoned artifact is caught, not just one
        flavors_flagged = {
            d.message.split("]")[0] for d in report.errors()
        }
        assert len(flavors_flagged) == len(ALL_FLAVORS)


class TestDifferentialGate:
    def test_parity_battery_verifies_clean(self):
        from tests.scheme.test_compile_backend import PARITY_PROGRAMS

        for i, source in enumerate(PARITY_PROGRAMS):
            program = SchemeSystem().compile(source, f"<parity-{i}>")
            report = verify_program(program, f"<parity-{i}>")
            errors = [str(d) for d in report.errors()]
            assert not errors, f"parity program {i}: {errors}"

    def test_examples_verify_without_pgmp5_errors(self):
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        paths = sorted(glob.glob(os.path.join(root, "examples", "*.py")))
        assert paths, "expected example files in examples/"
        for path in paths:
            report = verify_path(path)
            errors = [str(d) for d in report.errors()]
            assert not errors, f"{path}: {errors}"


class TestRenderers:
    def test_text_golden(self):
        bad = _tampered(
            _artifact("plain"), r"_B\.get\(S0\)", "_B_oops.get(S0)"
        )
        report = verify_artifact(bad, filename="gold.ss")
        text = render_text(report, "info")
        assert "error: PGMP503: artifact[plain]:" in text
        assert text.endswith("1 error(s), 0 warning(s), 0 info")

    def test_json_golden_shares_lint_schema(self):
        bad = _tampered(_artifact("budget"), r" *C\(\)\n", "")
        report = verify_artifact(bad, filename="gold.ss")
        payload = json.loads(render_json(report, "info"))
        assert payload["format"] == "pgmp-lint"
        assert payload["version"] == 1
        (diag,) = payload["diagnostics"]
        assert diag["code"] == "PGMP502"
        assert diag["severity"] == "error"
        assert diag["pass"] == "verify"
        assert payload["summary"]["error"] == 1


class TestCacheVerification:
    def _populate(self, tmp_path):
        system = SchemeSystem()
        artifact = system.compile_cached(
            TAIL_LOOP, "<cached>", cache=ArtifactCache(tmp_path)
        )
        paths = sorted(glob.glob(str(tmp_path / "*.py")))
        assert paths
        return paths[0]

    def test_clean_cache_dir_verifies(self, tmp_path):
        self._populate(tmp_path)
        report = verify_cache_dir(tmp_path)
        assert not report.errors()

    def test_checksum_tamper_is_refused_before_exec(self, tmp_path):
        path = self._populate(tmp_path)
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        # Plant a module-level bomb: if verification ever executes the
        # module before checking the checksum, the test blows up loudly.
        bombed = text.replace(
            "def _pgmp_main", "raise AssertionError('executed')\ndef _pgmp_main", 1
        )
        assert bombed != text
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(bombed)
        report = verify_cache_dir(tmp_path)
        assert report.by_code("PGMP503")
        assert "checksum mismatch" in report.by_code("PGMP503")[0].message

    def test_consistent_tamper_is_caught_by_the_passes(self, tmp_path):
        path = self._populate(tmp_path)
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        marker = text.rfind(_META_MARKER)
        body = text[: marker + 1]
        meta = eval(text[marker + len(_META_MARKER) :].strip())  # noqa: S307
        bad_body = body.replace(
            "    _B = GB.bindings\n", "    _B = GB.bindings\n    H[0]()\n", 1
        )
        assert bad_body != body
        meta["checksum"] = artifact_checksum(bad_body)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"{bad_body}__pgmp_meta__ = {meta!r}\n")
        report = verify_cache_dir(tmp_path)
        assert report.by_code("PGMP501")

    def test_verify_load_cache_treats_failing_artifact_as_miss(self, tmp_path):
        path = self._populate(tmp_path)
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        marker = text.rfind(_META_MARKER)
        body = text[: marker + 1]
        meta = eval(text[marker + len(_META_MARKER) :].strip())  # noqa: S307
        bad_body = body.replace(
            "    _B = GB.bindings\n", "    _B = GB.bindings\n    H[0]()\n", 1
        )
        meta["checksum"] = artifact_checksum(bad_body)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"{bad_body}__pgmp_meta__ = {meta!r}\n")
        key = tuple(meta["key"])
        # the plain loader still accepts it (checksum is self-consistent)...
        assert ArtifactCache(tmp_path).get(key) is not None
        # ...but the verifying cache rejects it as a miss
        assert ArtifactCache(tmp_path, verify="load").get(key) is None

    def test_verify_load_accepts_healthy_artifacts(self, tmp_path):
        self._populate(tmp_path)
        verifying = ArtifactCache(tmp_path, verify="load")
        path = sorted(glob.glob(str(tmp_path / "*.py")))[0]
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        meta = eval(  # noqa: S307
            text[text.rfind(_META_MARKER) + len(_META_MARKER) :].strip()
        )
        key = tuple(meta["key"])
        assert verifying.get(key) is not None

    def test_unknown_verify_mode_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown verify mode"):
            ArtifactCache(tmp_path, verify="always")
