"""Functions used by the pyast tests — in a real file so inspect works."""

from repro.pyast.casestudies import if_r, pycase


def classify_char(c):
    return pycase(
        c,
        ((" ", "\t"), "white-space"),
        (("0", "1", "2", "3", "4", "5", "6", "7", "8", "9"), "digit"),
        (("(",), "start-paren"),
        ((")",), "end-paren"),
        default="other",
    )


def decide(n):
    return if_r(n < 3, "small", "big")


def nested_if_r(n):
    return if_r(n < 10, if_r(n < 5, "lo", "mid"), "hi")


def no_macros_here(x):
    return x * 2


def classify_snd(c):
    """A second call site over the same constants: independent points."""
    return pycase(c, (("a",), "ay"), (("b",), "bee"), default="?")
