"""Tests for the Python-AST substrate: profiler, macros, case studies."""

import ast

import pytest

from repro.core.counters import CounterSet
from repro.core.database import ProfileDatabase
from repro.core.errors import MacroError
from repro.core.profile_point import ProfilePoint
from repro.core import annotate_expr, point_of_expr, profile_query, using_profile_information
from repro.pyast import (
    CallProfiler,
    MacroContext,
    MacroRegistry,
    PyAstSystem,
    annotate_expr_ast,
    collecting_counters,
    expand_function,
    node_location,
    node_point,
    profile_hook,
)
from tests.pyast import sample_functions as S


class TestSrcloc:
    def test_node_location(self):
        node = ast.parse("x + 1", mode="eval").body
        loc = node_location(node, "f.py")
        assert loc is not None
        assert loc.filename == "f.py"
        assert loc.line == 1

    def test_distinct_nodes_distinct_points(self):
        tree = ast.parse("f(a) + f(a)", mode="eval").body
        left, right = tree.left, tree.right
        assert node_point(left) != node_point(right)

    def test_node_without_position(self):
        assert node_location(ast.Load()) is None
        assert node_point(ast.Load()) is None


class TestSubstrateRegistration:
    def test_figure_4_api_works_on_ast(self):
        node = ast.parse("1 + 2", mode="eval").body
        point = point_of_expr(node)
        assert isinstance(point, ProfilePoint)
        fresh = ProfilePoint.for_location(
            node_location(ast.parse("0", mode="eval").body, "other.py")
        )
        annotated = annotate_expr(node, fresh)
        assert point_of_expr(annotated) == fresh

    def test_profile_query_on_ast(self):
        node = ast.parse("g()", mode="eval").body
        point = point_of_expr(node)
        db = ProfileDatabase()
        counters = CounterSet()
        counters.increment(point, by=2)
        db.record_counters(counters)
        with using_profile_information(db):
            assert profile_query(node) == 1.0


class TestProfileHook:
    def test_hook_without_collector_is_passthrough(self):
        assert profile_hook(_key(), lambda: 42) == 42

    def test_hook_counts_into_collector(self):
        counters = CounterSet()
        key = _key()
        with collecting_counters(counters):
            for _ in range(3):
                profile_hook(key, lambda: None)
        assert counters.count(ProfilePoint.from_key(key)) == 3

    def test_nested_collectors_use_innermost(self):
        outer, inner = CounterSet(), CounterSet()
        key = _key()
        with collecting_counters(outer):
            with collecting_counters(inner):
                profile_hook(key, lambda: None)
            profile_hook(key, lambda: None)
        assert inner.count(ProfilePoint.from_key(key)) == 1
        assert outer.count(ProfilePoint.from_key(key)) == 1

    def test_call_profiler_bundle(self):
        profiler = CallProfiler()
        key = _key()
        with profiler.collect():
            profile_hook(key, lambda: None)
        assert profiler.count(ProfilePoint.from_key(key)) == 1
        profiler.reset()
        assert profiler.count(ProfilePoint.from_key(key)) == 0


def _key() -> str:
    from repro.core.srcloc import SourceLocation

    return ProfilePoint.for_location(SourceLocation("hook.py", 0, 1)).key()


class TestAnnotateExprAst:
    def test_generates_wrapped_call(self):
        node = ast.parse("a + b", mode="eval").body
        point = node_point(node, "x.py")
        wrapped = annotate_expr_ast(node, point)
        code = ast.unparse(ast.fix_missing_locations(wrapped))
        assert code.startswith("__pgmp_profile__(")
        assert "lambda: a + b" in code

    def test_wrapped_expression_still_evaluates(self):
        node = ast.parse("a + b", mode="eval").body
        point = node_point(node, "x.py")
        wrapped = ast.Expression(annotate_expr_ast(node, point))
        ast.fix_missing_locations(wrapped)
        fn = eval(
            compile(wrapped, "<test>", "eval"),
            {"a": 1, "b": 2, "__pgmp_profile__": profile_hook},
        )
        assert fn == 3

    def test_counts_once_per_evaluation(self):
        node = ast.parse("a + b", mode="eval").body
        point = node_point(node, "x.py")
        wrapped = ast.Expression(annotate_expr_ast(node, point))
        ast.fix_missing_locations(wrapped)
        code = compile(wrapped, "<test>", "eval")
        counters = CounterSet()
        with collecting_counters(counters):
            for _ in range(4):
                eval(code, {"a": 1, "b": 2, "__pgmp_profile__": profile_hook})
        assert counters.count(point) == 4


class TestExpandFunction:
    def test_no_macros_is_identity_semantics(self):
        expanded = expand_function(S.no_macros_here)
        assert expanded(21) == 42

    def test_cannot_expand_sourceless(self):
        fn = eval("lambda x: x")
        with pytest.raises(MacroError):
            expand_function(fn)

    def test_expansion_exposes_ast(self):
        expanded = expand_function(S.decide)
        assert hasattr(expanded, "__pgmp_ast__")
        assert "__pgmp_profile__" in expanded.__pgmp_source__

    def test_macro_registry_isolated(self):
        registry = MacroRegistry()

        @registry.macro("answer")
        def _answer(node, ctx):
            return ast.Constant(value=42)

        import textwrap, types

        # S.no_macros_here has no 'answer' call; expansion is unchanged.
        expanded = expand_function(S.no_macros_here, registry)
        assert expanded(5) == 10

    def test_bad_transformer_return(self):
        registry = MacroRegistry()
        registry.register("pycase", lambda node, ctx: "not an ast")
        with pytest.raises(MacroError, match="not an AST"):
            expand_function(S.classify_char, registry)


class TestPycase:
    def test_unexpanded_fallback_works(self):
        assert S.classify_char("(") == "start-paren"
        assert S.classify_char("q") == "other"

    def test_expanded_semantics(self):
        expanded = expand_function(S.classify_char)
        for ch in " 5()q\t":
            assert expanded(ch) == S.classify_char(ch)

    def test_profile_reorders_branches(self):
        system = PyAstSystem()
        instrumented = system.expand(S.classify_char)
        system.profile(instrumented, [(c,) for c in "(((((((((1 "])
        optimized = system.expand(S.classify_char)
        source = optimized.__pgmp_source__
        assert source.index("start-paren") < source.index("white-space")
        assert source.index("start-paren") < source.index("digit")

    def test_unprofiled_expansion_keeps_source_order(self):
        system = PyAstSystem()
        source = system.expand(S.classify_char).__pgmp_source__
        assert source.index("white-space") < source.index("digit") < source.index(
            "start-paren"
        )

    def test_optimized_function_same_semantics(self):
        system = PyAstSystem()
        instrumented = system.expand(S.classify_char)
        system.profile(instrumented, [(c,) for c in "()()()999"])
        optimized = system.expand(S.classify_char)
        for ch in " 5()q\t9":
            assert optimized(ch) == S.classify_char(ch)

    def test_second_call_site_profiles_independently(self):
        system = PyAstSystem()
        inst1 = system.expand(S.classify_char)
        inst2 = system.expand(S.classify_snd)
        system.profile(inst1, [("(",)] * 5)
        system.profile(inst2, [("b",)] * 5)
        opt2 = system.expand(S.classify_snd)
        source = opt2.__pgmp_source__
        assert source.index("bee") < source.index("ay")


class TestIfR:
    def test_reorders_when_false_branch_hotter(self):
        system = PyAstSystem()
        instrumented = system.expand(S.decide)
        system.profile(instrumented, [(i,) for i in range(100)])  # mostly "big"
        optimized = system.expand(S.decide)
        assert "not n < 3" in optimized.__pgmp_source__
        assert optimized(1) == "small"
        assert optimized(50) == "big"

    def test_keeps_order_when_true_branch_hotter(self):
        system = PyAstSystem()
        instrumented = system.expand(S.decide)
        system.profile(instrumented, [(0,)] * 10 + [(9,)] * 2)
        optimized = system.expand(S.decide)
        assert "not n < 3" not in optimized.__pgmp_source__

    def test_nested_if_r(self):
        system = PyAstSystem()
        instrumented = system.expand(S.nested_if_r)
        system.profile(instrumented, [(i,) for i in range(20)])
        optimized = system.expand(S.nested_if_r)
        for n in (1, 7, 15):
            assert optimized(n) == S.nested_if_r(n)


class TestPersistence:
    def test_store_and_load(self, tmp_path):
        system = PyAstSystem()
        instrumented = system.expand(S.decide)
        system.profile(instrumented, [(i,) for i in range(50)])
        path = tmp_path / "py.profile"
        system.store_profile(path)

        fresh = PyAstSystem()
        fresh.load_profile(path)
        optimized = fresh.expand(S.decide)
        assert "not n < 3" in optimized.__pgmp_source__
