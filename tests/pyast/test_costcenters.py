"""Tests for the §5.1 cost-center layer (GHC/SCC analogue)."""

import pytest

from repro.core.api import using_profile_information
from repro.core.counters import CounterSet
from repro.core.database import ProfileDatabase
from repro.pyast.costcenters import cost_center, cost_center_point, cost_center_weight
from repro.pyast.profiler import collecting_counters


class TestCostCenterPoints:
    def test_same_name_same_point(self):
        assert cost_center_point("fib") == cost_center_point("fib")

    def test_distinct_names_distinct_points(self):
        assert cost_center_point("fib") != cost_center_point("fact")

    def test_points_survive_serialization(self):
        """The determinism Figure 4 requires: stored profiles keyed by
        cost-center points must be queryable by a fresh process (simulated
        by round-tripping through the key encoding)."""
        from repro.core.profile_point import ProfilePoint

        point = cost_center_point("hot-loop")
        assert ProfilePoint.from_key(point.key()) == point


class TestDecorator:
    def test_counts_entries(self):
        @cost_center("cc-alpha")
        def alpha(x):
            return x + 1

        counters = CounterSet()
        with collecting_counters(counters):
            for i in range(7):
                alpha(i)
        assert counters.count(cost_center_point("cc-alpha")) == 7

    def test_no_collector_no_counting_but_works(self):
        @cost_center("cc-beta")
        def beta():
            return 42

        assert beta() == 42

    def test_default_name_is_qualname(self):
        @cost_center()
        def gamma():
            return 1

        assert "gamma" in gamma.__cost_center__
        assert gamma.__cost_center_point__ == cost_center_point(gamma.__cost_center__)

    def test_preserves_function_metadata(self):
        @cost_center("cc-meta")
        def documented():
            """docs"""

        assert documented.__doc__ == "docs"
        assert documented.__name__ == "documented"


class TestWeights:
    def test_cost_center_weight_query(self):
        @cost_center("cc-hot")
        def hot():
            pass

        @cost_center("cc-cold")
        def cold():
            pass

        counters = CounterSet()
        with collecting_counters(counters):
            for _ in range(10):
                hot()
            cold()
        db = ProfileDatabase()
        db.record_counters(counters)
        with using_profile_information(db):
            assert cost_center_weight("cc-hot") == pytest.approx(1.0)
            assert cost_center_weight("cc-cold") == pytest.approx(0.1)
            assert cost_center_weight("cc-never") == 0.0

    def test_meta_program_can_branch_on_cost_centers(self, tmp_path):
        """End-to-end §5.1 flavor: profile by cost-center, store, reload,
        and let a code generator pick a strategy from the weights."""

        @cost_center("encode-fast")
        def encode_fast(x):
            return x

        @cost_center("encode-small")
        def encode_small(x):
            return x

        counters = CounterSet()
        with collecting_counters(counters):
            for i in range(20):
                encode_fast(i)
            encode_small(0)
        db = ProfileDatabase()
        db.record_counters(counters)
        path = tmp_path / "cc.profile"
        db.store(path)

        reloaded = ProfileDatabase.load(path)
        with using_profile_information(reloaded):
            chosen = (
                "fast"
                if cost_center_weight("encode-fast") > cost_center_weight("encode-small")
                else "small"
            )
        assert chosen == "fast"
