"""Tests for the Python-substrate data-structure specialization (pyseq)."""

import pytest

from repro.core.counters import CounterSet
from repro.pyast import DequeSeq, ListSeq, PYSEQ_RUNTIME, PyAstSystem
from repro.pyast.profiler import collecting_counters
from tests.pyast import pyseq_samples as S


def expand(system, fn):
    return system.expand(fn, extra_globals=PYSEQ_RUNTIME)


class TestRepresentations:
    def test_list_seq_semantics(self):
        s = ListSeq([1, 2, 3], _k(0), _k(1))
        s.push_front(0)
        assert s.to_list() == [0, 1, 2, 3]
        assert s.first() == 0
        assert s.ref(2) == 2
        s.set(1, 99)
        assert s.pop_front() == 0
        assert s.to_list() == [99, 2, 3]
        assert s.length() == 3

    def test_deque_seq_semantics(self):
        s = DequeSeq([1, 2, 3], _k(0), _k(1))
        s.push_front(0)
        assert s.to_list() == [0, 1, 2, 3]
        assert s.ref(3) == 3
        s.set(0, 7)
        assert s.pop_front() == 7
        assert s.length() == 3

    def test_ops_count_into_active_collector(self):
        counters = CounterSet()
        s = ListSeq([1], _k(0), _k(1))
        with collecting_counters(counters):
            s.push_front(0)
            s.ref(0)
            s.ref(1)
        from repro.core.profile_point import ProfilePoint

        assert counters.count(ProfilePoint.from_key(_k(0))) == 1
        assert counters.count(ProfilePoint.from_key(_k(1))) == 2


def _k(n: int) -> str:
    from repro.core.profile_point import ProfilePoint
    from repro.core.srcloc import SourceLocation

    return ProfilePoint.for_location(SourceLocation("k.py", n, n + 1)).key()


class TestSpecialization:
    def test_default_expansion_is_list(self):
        system = PyAstSystem()
        expanded = expand(system, S.front_heavy)
        assert "ListSeq" in expanded.__pgmp_source__
        assert expanded(5) == 4

    def test_front_heavy_specializes_to_deque(self, capsys):
        system = PyAstSystem()
        instrumented = expand(system, S.front_heavy)
        system.profile(instrumented, [(50,)])
        optimized = expand(system, S.front_heavy)
        assert "DequeSeq" in optimized.__pgmp_source__
        assert "specializing pyseq" in capsys.readouterr().out
        assert optimized(5) == S.front_heavy(5)

    def test_access_heavy_stays_list(self):
        system = PyAstSystem()
        instrumented = expand(system, S.access_heavy)
        system.profile(instrumented, [(50,)])
        optimized = expand(system, S.access_heavy)
        assert "ListSeq" in optimized.__pgmp_source__
        assert optimized(8) == S.access_heavy(8)

    def test_sites_specialize_independently(self):
        """Each pyseq use site has its own deterministic points."""
        system = PyAstSystem()
        front = expand(system, S.front_heavy)
        access = expand(system, S.access_heavy)
        system.profile(front, [(40,)])
        system.profile(access, [(40,)])
        assert "DequeSeq" in expand(system, S.front_heavy).__pgmp_source__
        assert "ListSeq" in expand(system, S.access_heavy).__pgmp_source__

    def test_mixed_workload_decided_by_majority(self):
        system = PyAstSystem()
        instrumented = expand(system, S.mixed)
        system.profile(instrumented, [(30,)])  # 60 pushes vs 1 ref
        optimized = expand(system, S.mixed)
        assert "DequeSeq" in optimized.__pgmp_source__
        assert optimized(3) == S.mixed(3)

    def test_asymptotic_speedup_on_front_heavy(self):
        """deque appendleft is O(1) vs list insert(0) O(n): at large n the
        specialized version must win on wall time."""
        import time

        system = PyAstSystem()
        instrumented = expand(system, S.front_heavy)
        system.profile(instrumented, [(100,)])
        optimized = expand(system, S.front_heavy)

        n = 40_000
        baseline = expand(PyAstSystem(), S.front_heavy)  # untrained: list

        start = time.perf_counter()
        baseline(n)
        t_list = time.perf_counter() - start
        start = time.perf_counter()
        optimized(n)
        t_deque = time.perf_counter() - start
        assert t_deque < t_list
