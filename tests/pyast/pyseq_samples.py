"""Sample functions for the pyseq collection-specialization tests."""

from repro.pyast.collections_study import pyseq


def front_heavy(n):
    s = pyseq(1, 2, 3)
    for i in range(n):
        s.push_front(i)
    return s.first()


def access_heavy(n):
    s = pyseq(10, 20, 30, 40)
    total = 0
    for i in range(n):
        total += s.ref(i % 4)
    return total


def mixed(n):
    s = pyseq(0)
    for i in range(n):
        s.push_front(i)
        s.push_front(i)
    return s.ref(0)
