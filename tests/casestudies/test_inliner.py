"""Tests for the profile-guided inliner (extension case study)."""

import pytest

from repro.blocks.workflow import three_pass_compile
from repro.casestudies.inliner import INLINER_LIBRARY, make_inliner_system
from repro.scheme.core_forms import unparse_string
from repro.scheme.instrument import ProfileMode


PROGRAM = """
(define-inlinable (square x) (* x x))
(define (hot-loop n acc)
  (if (= n 0) acc (hot-loop (- n 1) (+ acc (square n)))))
(define (cold-path x) (square (+ x 1)))
(list (hot-loop 100 0) (cold-path 1))
"""


def _line(text: str, name: str) -> str:
    return next(l for l in text.splitlines() if l.startswith(f"(define {name}"))


class TestUnprofiled:
    def test_calls_out_of_line_implementation(self):
        system = make_inliner_system()
        text = unparse_string(system.compile(PROGRAM, "inl.ss"))
        assert "square-impl" in _line(text, "hot-loop")
        assert "square-impl" in _line(text, "cold-path")

    def test_semantics(self):
        system = make_inliner_system()
        assert str(system.run_source(PROGRAM, "inl.ss").value) == "(338350 4)"

    def test_higher_order_reference(self):
        system = make_inliner_system()
        value = system.run_source(
            PROGRAM + "(map square (list 1 2 3))", "ho.ss"
        ).value
        assert str(value) == "(1 4 9)"

    def test_multiple_inlinables(self):
        system = make_inliner_system()
        source = """
        (define-inlinable (double x) (* 2 x))
        (define-inlinable (inc x) (+ x 1))
        (inc (double 20))
        """
        assert str(system.run_source(source, "m.ss").value) == "41"


class TestProfiled:
    def test_hot_site_inlines_cold_site_does_not(self):
        system = make_inliner_system()
        system.profile_run(PROGRAM, "inl.ss")
        text = unparse_string(system.compile(PROGRAM, "inl.ss"))
        hot = _line(text, "hot-loop")
        cold = _line(text, "cold-path")
        assert "(lambda (x) (* x x))" in hot      # beta-redex inlined
        assert "square-impl" not in hot
        assert "square-impl" in cold              # stays a call
        assert "(lambda (x) (* x x))" not in cold

    def test_optimized_semantics_preserved(self):
        system = make_inliner_system()
        first = system.profile_run(PROGRAM, "inl.ss")
        second = system.run(system.compile(PROGRAM, "inl.ss"))
        assert str(first.value) == str(second.value)

    def test_inlined_argument_evaluated_once(self):
        """Beta-redex inlining, not textual substitution: effects in the
        actual argument must run exactly once."""
        source = """
        (define-inlinable (twice-used x) (+ x x))
        (define counter 0)
        (define (tick!) (set! counter (+ counter 1)) counter)
        (define (hot n acc)
          (if (= n 0) acc (hot (- n 1) (+ acc (twice-used (tick!))))))
        (hot 50 0)
        counter
        """
        system = make_inliner_system()
        system.profile_run(source, "once.ss")
        result = system.run(system.compile(source, "once.ss"))
        assert str(result.value) == "50"

    def test_recursive_function_inlines_one_level(self):
        """Inlining a recursive inlinable must not loop the expander: the
        recorded body calls back through the macro, whose inner call site
        (the template's) has no hot profile, so it emits a plain call."""
        source = """
        (define-inlinable (count-down n)
          (if (= n 0) 'done (count-down (- n 1))))
        (define (drive k) (if (= k 0) 'ok (begin (count-down 20) (drive (- k 1)))))
        (drive 30)
        """
        system = make_inliner_system()
        system.profile_run(source, "rec.ss")
        result = system.run(system.compile(source, "rec.ss"))
        assert str(result.value) == "ok"

    def test_hygiene_of_inlined_body(self):
        """The inlined body's formal must not capture the caller's vars."""
        source = """
        (define-inlinable (shadowy x) (* x x))
        (define (hot n acc)
          (if (= n 0) acc
              (let ([x 1000])
                (hot (- n 1) (+ acc (shadowy n) (- x 1000))))))
        (hot 60 0)
        """
        system = make_inliner_system()
        first = system.profile_run(source, "hyg.ss")
        second = system.run(system.compile(source, "hyg.ss"))
        assert str(first.value) == str(second.value)


class TestThreePassStability:
    def test_inliner_is_stable_under_three_pass(self):
        report = three_pass_compile(PROGRAM, libraries=(INLINER_LIBRARY,))
        assert report.expansion_stable
        assert report.block_structure_stable
        assert report.semantics_preserved
