"""Figures 1–3: the if-r running example, end to end."""

import pytest

from repro.casestudies.if_r import make_if_r_system
from repro.scheme.core_forms import unparse_string
from repro.scheme.instrument import ProfileMode


CLASSIFY = """
(define (classify email)
  (if-r (subject-contains email 5)
    (flag email 'important)
    (flag email 'spam)))
"""

HELPERS = """
(define (subject-contains email threshold) (< email threshold))
(define (flag email label) label)
"""


def _drive(n_important: int, n_spam: int) -> str:
    """Profile a run with the given branch frequencies; return the
    re-expanded classify definition."""
    system = make_if_r_system()
    inputs = " ".join(["1"] * n_important + ["9"] * n_spam)
    program = HELPERS + CLASSIFY + f"(for-each classify (list {inputs}))"
    system.profile_run(program, "classify.ss")
    recompiled = system.compile(program, "classify.ss")
    text = unparse_string(recompiled)
    define = next(
        line for line in text.splitlines() if line.startswith("(define classify")
    )
    return define


class TestFigure2:
    def test_spam_hotter_swaps_branches(self):
        """Figure 2: spam runs 10 times, important 5 times — the generated
        if negates the test and puts the spam branch first."""
        define = _drive(n_important=5, n_spam=10)
        assert "(if (not (subject-contains email 5))" in define
        spam_pos = define.index("'spam")
        important_pos = define.index("'important")
        assert spam_pos < important_pos

    def test_important_hotter_keeps_order(self):
        define = _drive(n_important=10, n_spam=5)
        assert "(if (subject-contains email 5)" in define
        assert define.index("'important") < define.index("'spam")

    def test_equal_weights_keep_order(self):
        """profile weights equal: the >= arm of Figure 1 keeps the order."""
        define = _drive(n_important=5, n_spam=5)
        assert "(if (subject-contains email 5)" in define

    def test_no_profile_data_keeps_order(self):
        system = make_if_r_system()
        program = HELPERS + CLASSIFY
        compiled = system.compile(program, "classify.ss")
        text = unparse_string(compiled)
        assert "(if (subject-contains email 5)" in text


class TestSemanticPreservation:
    @pytest.mark.parametrize("inputs", ["1 2 3", "9 9 9", "1 9 1 9 5", ""])
    def test_reordering_never_changes_results(self, inputs):
        system = make_if_r_system()
        program = HELPERS + CLASSIFY + f"(map classify (list {inputs}))"
        first = system.profile_run(program, "c.ss")
        second = system.run(system.compile(program, "c.ss"))
        assert str(first.value) == str(second.value)


class TestCallProfilerMode:
    def test_if_r_works_under_call_profiling(self):
        """Section 4.2: under a call-level profiler the counters for the
        branches (which are calls) still drive the same decision."""
        system = make_if_r_system(mode=ProfileMode.CALL)
        inputs = " ".join(["1"] * 2 + ["9"] * 10)
        program = HELPERS + CLASSIFY + f"(for-each classify (list {inputs}))"
        system.profile_run(program, "c.ss", mode=ProfileMode.CALL)
        define = next(
            line
            for line in unparse_string(system.compile(program, "c.ss")).splitlines()
            if line.startswith("(define classify")
        )
        assert "(if (not" in define


class TestMultiDataset:
    def test_merged_datasets_decide(self):
        """Figure 3's merge: data set 1 favors spam (5 vs 10), data set 2
        strongly favors important (100 vs 10) — merged, important wins."""
        system = make_if_r_system()
        base = HELPERS + CLASSIFY
        run1 = base + "(for-each classify (list " + " ".join(["1"] * 5 + ["9"] * 10) + "))"
        run2 = base + "(for-each classify (list " + " ".join(["1"] * 100 + ["9"] * 10) + "))"
        system.profile_run(run1, "c.ss")
        system.profile_run(run2, "c.ss")
        define = next(
            line
            for line in unparse_string(system.compile(base, "c.ss")).splitlines()
            if line.startswith("(define classify")
        )
        # merged important = (0.5 + 1.0)/2 = 0.75 > spam = (1.0 + 0.1)/2 = 0.55
        assert "(if (subject-contains email 5)" in define
