"""§6.3 / Figures 13–14: data-structure selection and specialization."""

import pytest

from repro.casestudies.datastructs import make_datastructs_system
from repro.scheme.core_forms import unparse_string


class TestProfiledList:
    def test_behaves_like_a_list(self):
        system = make_datastructs_system()
        source = """
        (define pl (profiled-list 1 2 3))
        (list (p-car pl) (p-car (p-cdr pl)) (p-list-length pl) (p-null? pl))
        """
        assert str(system.run_source(source, "l.ss").value) == "(1 2 3 #f)"

    def test_cons_and_ref(self):
        system = make_datastructs_system()
        source = """
        (define pl (p-cons 0 (profiled-list 1 2)))
        (list (p-list-ref pl 0) (p-list-ref pl 2) (p-list->list pl))
        """
        assert str(system.run_source(source, "l.ss").value) == "(0 2 (0 1 2))"

    def test_set(self):
        system = make_datastructs_system()
        source = """
        (define pl (profiled-list 1 2 3))
        (p-list-set! pl 1 99)
        (p-list->list pl)
        """
        assert str(system.run_source(source, "l.ss").value) == "(1 99 3)"

    def test_warning_when_vector_ops_dominate(self):
        """Figure 13: the constructor prints a compile-time warning when
        the profiled run used mostly random access."""
        system = make_datastructs_system()
        program = """
        (define pl (profiled-list 10 20 30))
        (define (go n acc)
          (if (= n 0) acc (go (- n 1) (+ acc (p-list-ref pl (modulo n 3))))))
        (go 50 0)
        """
        system.profile_run(program, "warn.ss")
        system.compile(program, "warn.ss")
        assert "WARNING" in system.last_compile_output
        assert "reimplement this list as a vector" in system.last_compile_output
        assert "(profiled-list 10 20 30)" in system.last_compile_output

    def test_no_warning_when_list_ops_dominate(self):
        system = make_datastructs_system()
        program = """
        (define (walk pl acc)
          (if (p-null? pl) acc (walk (p-cdr pl) (+ acc (p-car pl)))))
        (walk (profiled-list 1 2 3 4 5) 0)
        """
        system.profile_run(program, "ok.ss")
        system.compile(program, "ok.ss")
        assert "WARNING" not in system.last_compile_output

    def test_no_warning_without_profile_data(self):
        system = make_datastructs_system()
        system.compile("(profiled-list 1 2 3)", "fresh.ss")
        assert "WARNING" not in system.last_compile_output


class TestProfiledVector:
    def test_behaves_like_a_vector(self):
        system = make_datastructs_system()
        source = """
        (define pv (profiled-vector 1 2 3))
        (pv-set! pv 0 9)
        (list (pv-ref pv 0) (pv-length pv) (pv->vector pv))
        """
        assert str(system.run_source(source, "v.ss").value) == "(9 3 #(9 2 3))"

    def test_list_style_ops(self):
        system = make_datastructs_system()
        source = """
        (define pv (profiled-vector 1 2 3))
        (list (pv-first pv) (pv->vector (pv-rest pv)) (pv->vector (pv-prepend 0 pv)))
        """
        assert str(system.run_source(source, "v.ss").value) == "(1 #(2 3) #(0 1 2 3))"

    def test_warning_when_list_ops_dominate(self):
        system = make_datastructs_system()
        program = """
        (define (shrink pv acc)
          (if (= (pv-length pv) 0) acc (shrink (pv-rest pv) (+ acc (pv-first pv)))))
        (shrink (profiled-vector 1 2 3 4 5 6 7 8) 0)
        """
        system.profile_run(program, "vw.ss")
        system.compile(program, "vw.ss")
        assert "reimplement this vector as a list" in system.last_compile_output


class TestProfiledSequence:
    RANDOM_ACCESS = """
    (define s (profiled-seq 10 20 30 40 50))
    (define (go n acc)
      (if (= n 0) acc (go (- n 1) (+ acc (seq-ref s (modulo n 5))))))
    (go 100 0)
    """

    HEAD_HEAVY = """
    (define s (profiled-seq 10 20 30 40 50))
    (define (walk s n acc)
      (if (= n 0) acc (walk (seq-rest s) (- n 1) (+ acc (seq-first s)))))
    (walk s 4 0)
    """

    def test_defaults_to_list_representation(self):
        system = make_datastructs_system()
        text = unparse_string(system.compile("(profiled-seq 1 2)", "s.ss"))
        assert "'list" in text
        assert "'vector" not in text.split("seq-rep")[1][:20]

    def test_specializes_to_vector_after_random_access_profile(self):
        """Figure 14: after a random-access-heavy profile, the constructor
        emits the vector representation."""
        system = make_datastructs_system()
        system.profile_run(self.RANDOM_ACCESS, "s.ss")
        text = unparse_string(system.compile(self.RANDOM_ACCESS, "s.ss"))
        constructor = text[text.index("(define s") :].split("\n")[0]
        assert "'vector" in constructor

    def test_stays_list_after_head_heavy_profile(self):
        system = make_datastructs_system()
        system.profile_run(self.HEAD_HEAVY, "s.ss")
        text = unparse_string(system.compile(self.HEAD_HEAVY, "s.ss"))
        constructor = text[text.index("(define s") :].split("\n")[0]
        assert "'list" in constructor

    def test_specialization_preserves_semantics(self):
        system = make_datastructs_system()
        first = system.profile_run(self.RANDOM_ACCESS, "s.ss")
        second = system.run(system.compile(self.RANDOM_ACCESS, "s.ss"))
        assert str(first.value) == str(second.value) == "3000"

    def test_sequence_operations_on_both_representations(self):
        ops = """
        (list (seq-first s) (seq-ref s 2) (seq-length s)
              (seq-first (seq-rest s)) (seq-first (seq-prepend 99 s))
              (seq->list s))
        """
        system = make_datastructs_system()
        list_version = system.run_source(
            "(define s (profiled-seq 1 2 3))" + ops, "a.ss"
        )
        # Force a vector-backed instance by profiling random access first.
        system2 = make_datastructs_system()
        system2.profile_run(self.RANDOM_ACCESS, "s.ss")
        program = self.RANDOM_ACCESS.replace("(go 100 0)", "") + """
        (define s2 s)
        """ + ops.replace("s ", "s2 ").replace("s)", "s2)")
        vector_version = system2.run(system2.compile(program, "s.ss"))
        assert str(list_version.value) == "(1 3 3 2 99 (1 2 3))"
        assert "(10 30 5 20 99 (10 20 30 40 50))" in str(vector_version.value)

    def test_seq_set(self):
        system = make_datastructs_system()
        source = """
        (define s (profiled-seq 1 2 3))
        (seq-set! s 1 42)
        (seq->list s)
        """
        assert str(system.run_source(source, "set.ss").value) == "(1 42 3)"

    def test_two_instances_specialize_independently(self):
        """Per-instance profile points: one sequence can become a vector
        while another stays a list (the paper's central §6.3 claim)."""
        program = """
        (define ra (profiled-seq 1 2 3 4))
        (define hh (profiled-seq 5 6 7 8))
        (define (hammer-ref n acc)
          (if (= n 0) acc (hammer-ref (- n 1) (+ acc (seq-ref ra (modulo n 4))))))
        (define (walk s n acc)
          (if (= n 0) acc (walk (seq-rest s) (- n 1) (+ acc (seq-first s)))))
        (+ (hammer-ref 60 0) (walk hh 3 0))
        """
        system = make_datastructs_system()
        system.profile_run(program, "two.ss")
        text = unparse_string(system.compile(program, "two.ss"))
        ra_line = next(l for l in text.splitlines() if l.startswith("(define ra"))
        hh_line = next(l for l in text.splitlines() if l.startswith("(define hh"))
        assert "'vector" in ra_line
        assert "'list" in hh_line
