"""§6.1 / Figures 5–8: case and exclusive-cond branch reordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.casestudies.exclusive_cond import make_case_system
from repro.scheme.core_forms import unparse_string


PARSER = r"""
(define (parse-char c)
  (case c
    [(#\space #\tab) 'white-space]
    [(#\0 #\1 #\2 #\3 #\4 #\5 #\6 #\7 #\8 #\9) 'digit]
    [(#\() 'start-paren]
    [(#\)) 'end-paren]
    [else 'other]))
"""


def _clause_order(text: str) -> list[str]:
    """The order of key-in? membership lists in the expanded parser."""
    define = text[text.index("(define parse-char") :]
    order = []
    for marker, name in [
        ("'(#\\space #\\tab)", "white-space"),
        ("'(#\\0", "digit"),
        ("'(#\\()", "start-paren"),
        ("'(#\\))", "end-paren"),
    ]:
        index = define.find(marker)
        assert index >= 0, f"{marker} not in expansion"
        order.append((index, name))
    return [name for _, name in sorted(order)]


def _drive(stream: str):
    system = make_case_system()
    program = PARSER + f'(map parse-char (string->list "{stream}"))'
    first = system.profile_run(program, "parse.ss")
    recompiled = system.compile(program, "parse.ss")
    second = system.run(recompiled)
    return first, second, unparse_string(recompiled)


class TestFigure8:
    def test_clauses_sorted_by_frequency(self):
        """Figure 8's workload shape: whitespace most common, then parens,
        then digits."""
        stream = " " * 30 + "(" * 23 + ")" * 23 + "123456789" + " " * 25
        _, _, text = _drive(stream)
        order = _clause_order(text)
        assert order[0] == "white-space"
        assert set(order[1:3]) == {"start-paren", "end-paren"}
        assert order[3] == "digit"

    def test_unprofiled_expansion_keeps_source_order(self):
        system = make_case_system()
        text = unparse_string(system.compile(PARSER, "parse.ss"))
        assert _clause_order(text) == [
            "white-space",
            "digit",
            "start-paren",
            "end-paren",
        ]

    def test_reordering_preserves_results(self):
        stream = "((((((((((1 ))))))))))"
        first, second, _ = _drive(stream)
        assert str(first.value) == str(second.value)

    def test_else_clause_stays_last(self):
        stream = "xxxxxxxxxxxx((1"  # 'other' dominates
        _, _, text = _drive(stream)
        define = text[text.index("(define parse-char") :].split("\n")[0]
        # Even though 'other is hottest, the else clause cannot move: the
        # last test in the nested ifs still falls through to 'other.
        last_key_in = define.rfind("key-in?")
        other_pos = define.find("'other")
        assert other_pos > last_key_in

    def test_case_evaluates_key_exactly_once(self):
        system = make_case_system()
        source = PARSER + r"""
        (define count 0)
        (define (next!) (set! count (+ count 1)) #\()
        (parse-char (next!))
        count
        """
        assert str(system.run_source(source, "once.ss").value) == "1"


class TestExclusiveCondDirect:
    def test_reorders_by_body_weight(self):
        system = make_case_system()
        program = """
        (define (grade n)
          (exclusive-cond
            [(< n 10) 'low]
            [(< n 100) 'mid]
            [(< n 1000) 'high]))
        (define (run i acc)
          (if (= i 0) acc (run (- i 1) (cons (grade (* i 7)) acc))))
        (run 100 '())
        """
        system.profile_run(program, "g.ss")
        text = unparse_string(system.compile(program, "g.ss"))
        define = text[text.index("(define grade") :].split("\n")[0]
        # inputs 7..700: mid (n in [10,100)) ~ 13, high ~ 86, low ~ 1
        assert define.index("'high") < define.index("'mid") < define.index("'low")

    def test_exclusive_cond_with_else(self):
        system = make_case_system()
        program = """
        (exclusive-cond
          [(= 1 2) 'no]
          [else 'yes])
        """
        assert str(system.run_source(program).value) == "yes"

    def test_exclusive_cond_arrow_clause(self):
        system = make_case_system()
        program = "(exclusive-cond [(memv 2 '(1 2)) => car] [else 'no])"
        assert str(system.run_source(program).value) == "2"

    def test_stability_without_profile(self):
        """Stable sort: equal (zero) weights preserve source order, so
        compiling without data is the identity reordering."""
        system = make_case_system()
        program = """
        (define (f x)
          (exclusive-cond
            [(= x 1) 'a]
            [(= x 2) 'b]
            [(= x 3) 'c]))
        """
        text = unparse_string(system.compile(program, "s.ss"))
        assert text.index("'a") < text.index("'b") < text.index("'c")


class TestCaseSemantics:
    @pytest.mark.parametrize(
        "key,expected",
        [("#\\space", "white-space"), ("#\\5", "digit"), ("#\\(", "start-paren"),
         ("#\\)", "end-paren"), ("#\\x", "other")],
    )
    def test_dispatch(self, key, expected):
        system = make_case_system()
        value = system.run_source(PARSER + f"(parse-char {key})").value
        assert str(value) == expected

    def test_case_with_numbers_and_symbols(self):
        system = make_case_system()
        source = """
        (define (f x)
          (case x
            [(1 2 3) 'num]
            [(a b) 'sym]
            [else 'other]))
        (list (f 2) (f 'b) (f "s"))
        """
        assert str(system.run_source(source).value) == "(num sym other)"


@given(st.lists(st.sampled_from(list(" ()0123456789x")), max_size=40))
@settings(max_examples=25, deadline=None)
def test_profile_guided_case_semantics_property(chars):
    """For any profiling workload, the optimized parser computes the same
    function as the unoptimized one."""
    stream = "".join(ch for ch in chars)
    stream = stream.replace('"', "").replace("\\", "")
    system = make_case_system()
    program = PARSER + f'(map parse-char (string->list "{stream}"))'
    first = system.profile_run(program, "prop.ss")
    second = system.run(system.compile(program, "prop.ss"))
    assert str(first.value) == str(second.value)
