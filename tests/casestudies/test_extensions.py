"""Tests for the extension case studies: and-r/or-r and method-adaptive."""

import pytest

from repro.casestudies.boolean_reorder import make_boolean_system
from repro.casestudies.receiver_class import make_object_system
from repro.scheme.core_forms import unparse_string
from repro.scheme.instrument import ProfileMode
from tests.conftest import run_value


BOOL_PROGRAM = """
(define (often-false x) (= (modulo x 10) 0))
(define (often-true x) (< x 1000))
(define (check x) (and-r (often-true x) (often-false x)))
(define (run n acc)
  (if (= n 0) acc (run (- n 1) (+ acc (if (check n) 1 0)))))
(run 100 0)
"""


def _define_line(text: str, name: str) -> str:
    return next(l for l in text.splitlines() if l.startswith(f"(define {name}"))


class TestAndR:
    def test_and_r_semantics_unprofiled(self):
        system = make_boolean_system()
        assert run_value(system, "(and-r 1 2 3)") == "3"
        assert run_value(system, "(and-r 1 #f 3)") == "#f"
        assert run_value(system, "(and-r)") == "#t"
        assert run_value(system, "(and-r 7)") == "7"

    def test_instrumented_form_preserves_values(self):
        """The truth-counting wrapper must not change and's value."""
        system = make_boolean_system()
        result = system.run_source("(and-r 1 'sym)", "v.ss")
        assert str(result.value) == "sym"

    def test_reorders_fail_fast(self):
        system = make_boolean_system()
        r1 = system.profile_run(BOOL_PROGRAM, "bool.ss")
        assert str(r1.value) == "10"
        text = unparse_string(system.compile(BOOL_PROGRAM, "bool.ss"))
        check = _define_line(text, "check")
        # often-false (P(true)=0.1) must now be tested before often-true.
        assert check.index("often-false") < check.index("often-true")
        r2 = system.run(system.compile(BOOL_PROGRAM, "bool.ss"))
        assert str(r2.value) == "10"

    def test_reordering_reduces_work(self):
        system = make_boolean_system()
        before = system.run_source(
            BOOL_PROGRAM, "bool.ss", instrument=ProfileMode.EXPR
        ).counters.total()
        system.profile_db.clear()
        system.profile_run(BOOL_PROGRAM, "bool.ss")
        after_prog = system.compile(BOOL_PROGRAM, "bool.ss")
        after = system.run(after_prog, instrument=ProfileMode.EXPR).counters.total()
        assert after < before


class TestOrR:
    OR_PROGRAM = """
    (define (rarely x) (= (modulo x 50) 0))
    (define (usually x) (> x 5))
    (define (check2 x) (or-r (rarely x) (usually x)))
    (define (run n acc) (if (= n 0) acc (run (- n 1) (+ acc (if (check2 n) 1 0)))))
    (run 100 0)
    """

    def test_semantics_unprofiled(self):
        system = make_boolean_system()
        assert run_value(system, "(or-r #f 2)") == "2"
        assert run_value(system, "(or-r)") == "#f"
        assert run_value(system, "(or-r #f #f)") == "#f"

    def test_reorders_succeed_fast(self):
        system = make_boolean_system()
        r1 = system.profile_run(self.OR_PROGRAM, "or.ss")
        text = unparse_string(system.compile(self.OR_PROGRAM, "or.ss"))
        check = _define_line(text, "check2")
        # usually (P(true)≈0.95) must be tried first. In the or-lowering
        # the FIRST operand is the argument of the outermost application,
        # i.e. the final parenthesized group of the line.
        assert check.rstrip(")").endswith("(usually x")
        r2 = system.run(system.compile(self.OR_PROGRAM, "or.ss"))
        assert str(r1.value) == str(r2.value)


SHAPES = """
(class Square ((length 0)) (define-method (area this) (sqr (field this length))))
(class Circle ((radius 0)) (define-method (area this) (* pi (sqr (field this radius)))))
(class Triangle ((base 0) (height 0)) (define-method (area this) (* 1/2 (field this base) (field this height))))
"""


def _adaptive_program(circles: int, squares: int, triangles: int) -> str:
    return SHAPES + f"""
(define (areas ss) (map (lambda (s) (method-adaptive s area)) ss))
(define shapes (append (map make-Circle (iota {circles}))
                       (map make-Square (iota {squares}))
                       (map (lambda (i) (make-Triangle i i)) (iota {triangles}))))
(length (areas shapes))
"""


class TestAdaptiveReceiver:
    def test_skewed_site_inlines_few(self):
        """60/30/10 mix with 0.9 coverage -> Circle + Square only."""
        program = _adaptive_program(6, 3, 1)
        system = make_object_system()
        system.profile_run(program, "ad.ss")
        text = unparse_string(system.compile(program, "ad.ss"))
        line = _define_line(text, "areas")
        assert line.count("instance-of?") == 2
        assert "'Triangle" not in line
        assert line.index("'Circle") < line.index("'Square")

    def test_monomorphic_site_inlines_one(self):
        program = _adaptive_program(10, 0, 0)
        system = make_object_system()
        system.profile_run(program, "mono.ss")
        line = _define_line(
            unparse_string(system.compile(program, "mono.ss")), "areas"
        )
        assert line.count("instance-of?") == 1

    def test_flat_site_inlines_more(self):
        """A flat 4/3/3 mix needs all three classes to reach 90%."""
        program = _adaptive_program(4, 3, 3)
        system = make_object_system()
        system.profile_run(program, "flat.ss")
        line = _define_line(
            unparse_string(system.compile(program, "flat.ss")), "areas"
        )
        assert line.count("instance-of?") == 3

    def test_no_data_stays_instrumented(self):
        program = _adaptive_program(2, 2, 2)
        system = make_object_system()
        line = _define_line(
            unparse_string(system.compile(program, "fresh.ss")), "areas"
        )
        assert "instrumented-dispatch" in line

    def test_semantics_preserved(self):
        program = _adaptive_program(5, 4, 2)
        system = make_object_system()
        first = system.profile_run(program, "sem.ss")
        second = system.run(system.compile(program, "sem.ss"))
        assert str(first.value) == str(second.value) == "11"
