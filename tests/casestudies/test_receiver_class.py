"""§6.2 / Figures 9–12: profile-guided receiver class prediction."""

import pytest

from repro.casestudies.receiver_class import make_object_system
from repro.scheme.core_forms import unparse_string


SHAPES = """
(class Square ((length 0))
  (define-method (area this) (sqr (field this length))))
(class Circle ((radius 0))
  (define-method (area this) (* pi (sqr (field this radius)))))
(class Triangle ((base 0) (height 0))
  (define-method (area this) (* 1/2 (field this base) (field this height))))
"""

CALL_SITE = """
(define (areas shapes) (map (lambda (s) (method s area)) shapes))
"""


def _figure_10_program(mix: str) -> str:
    return SHAPES + CALL_SITE + f"(areas (list {mix}))"


FIG10_MIX = "(make-Circle 1) (make-Circle 2) (make-Circle 3) (make-Square 1)"


class TestObjectSystem:
    def test_fields_and_defaults(self):
        system = make_object_system()
        source = SHAPES + "(define s (make-Square)) (field s length)"
        assert str(system.run_source(source, "s.ss").value) == "0"

    def test_positional_constructor(self):
        system = make_object_system()
        source = SHAPES + "(define s (make-Square 5)) (field s length)"
        assert str(system.run_source(source, "s.ss").value) == "5"

    def test_set_field(self):
        system = make_object_system()
        source = SHAPES + """
        (define s (make-Square 2))
        (set-field s length 7)
        (field s length)
        """
        assert str(system.run_source(source, "s.ss").value) == "7"

    def test_instance_of(self):
        system = make_object_system()
        source = SHAPES + "(list (instance-of? (make-Square) 'Square) (instance-of? (make-Square) 'Circle) (instance-of? 5 'Square))"
        assert str(system.run_source(source, "s.ss").value) == "(#t #f #f)"

    def test_dynamic_dispatch(self):
        system = make_object_system()
        source = SHAPES + "(dynamic-dispatch (make-Square 4) 'area)"
        assert str(system.run_source(source, "s.ss").value) == "16"

    def test_dispatch_multiple_classes(self):
        system = make_object_system()
        source = SHAPES + "(list (dynamic-dispatch (make-Square 3) 'area) (dynamic-dispatch (make-Triangle 4 6) 'area))"
        assert str(system.run_source(source, "s.ss").value) == "(9 12)"

    def test_missing_method_errors(self):
        system = make_object_system()
        with pytest.raises(Exception, match="no method"):
            system.run_source(SHAPES + "(dynamic-dispatch (make-Square) 'perimeter)", "s.ss")

    def test_method_with_arguments(self):
        system = make_object_system()
        source = """
        (class Scaler ((factor 2))
          (define-method (scale this x) (* (field this factor) x)))
        (method (make-Scaler 3) scale 7)
        """
        assert str(system.run_source(source, "s.ss").value) == "21"


class TestInstrumentation:
    def test_uninstrumented_call_covers_all_classes(self):
        """Figure 11 (top): with no profile data, one clause per class plus
        a dynamic-dispatch fallback."""
        system = make_object_system()
        text = unparse_string(system.compile(_figure_10_program(FIG10_MIX), "fig10.ss"))
        call_site = text[text.index("(define areas") :]
        assert "instance-of? x 'Square" in call_site
        assert "instance-of? x 'Circle" in call_site
        assert "instance-of? x 'Triangle" in call_site
        assert "instrumented-dispatch" in call_site
        assert "dynamic-dispatch" in call_site

    def test_method_call_works_uninstrumented(self):
        system = make_object_system()
        result = system.run_source(_figure_10_program(FIG10_MIX), "fig10.ss")
        values = str(result.value)
        assert values.startswith("(3.14")


class TestOptimization:
    def test_figure_11_optimized_inlines_hot_classes(self):
        """Figure 11 (bottom): after profiling the Figure-10 mix (Circle ×3,
        Square ×1), the call site inlines Circle and Square bodies and
        drops Triangle (weight 0)."""
        system = make_object_system()
        program = _figure_10_program(FIG10_MIX)
        system.profile_run(program, "fig10.ss")
        text = unparse_string(system.compile(program, "fig10.ss"))
        call_site = text[text.index("(define areas") :]
        # Inlined method bodies appear at the call site:
        assert "(* pi (sqr (get-field this 'radius)))" in call_site
        assert "(sqr (get-field this 'length))" in call_site
        # Triangle had weight 0: no clause for it.
        assert "Triangle" not in call_site
        # No instrumented dispatch remains; the fallback is dynamic.
        assert "instrumented-dispatch" not in call_site
        assert "dynamic-dispatch" in call_site

    def test_figure_12_hottest_class_first(self):
        system = make_object_system()
        program = _figure_10_program(FIG10_MIX)
        system.profile_run(program, "fig10.ss")
        text = unparse_string(system.compile(program, "fig10.ss"))
        call_site = text[text.index("(define areas") :]
        assert call_site.index("'Circle") < call_site.index("'Square")

    def test_optimized_call_site_preserves_semantics(self):
        system = make_object_system()
        program = _figure_10_program(FIG10_MIX)
        first = system.profile_run(program, "fig10.ss")
        second = system.run(system.compile(program, "fig10.ss"))
        assert str(first.value) == str(second.value)

    def test_inline_limit_respected(self):
        """With three hot classes but inline-limit 2, only the top two are
        inlined; the rest fall back to dynamic dispatch."""
        system = make_object_system()
        mix = " ".join(
            ["(make-Circle 1)"] * 5 + ["(make-Square 2)"] * 3 + ["(make-Triangle 1 2)"] * 2
        )
        program = _figure_10_program(mix)
        system.profile_run(program, "lim.ss")
        text = unparse_string(system.compile(program, "lim.ss"))
        call_site = next(
            line for line in text.splitlines() if line.startswith("(define areas")
        )
        assert call_site.count("instance-of?") == 2
        assert "Triangle" not in call_site
        # Triangle receivers still work through the fallback:
        result = system.run(system.compile(program, "lim.ss"))
        assert "1" in str(result.value)

    def test_unprofiled_receiver_falls_back_correctly(self):
        """A receiver class never seen while profiling must still dispatch
        correctly through the else branch."""
        system = make_object_system()
        train = _figure_10_program("(make-Circle 1) (make-Circle 2)")
        system.profile_run(train, "site.ss")
        test = SHAPES + CALL_SITE + "(areas (list (make-Triangle 4 6)))"
        # NOTE: different trailing text but identical prefix, so the call
        # site's profile points line up.
        result = system.run(system.compile(test, "site.ss"))
        assert str(result.value) == "(12)"

    def test_per_call_site_points_are_independent(self):
        """Two method call sites profile independently (paper: 'each
        occurrence is profiled separately')."""
        system = make_object_system()
        program = SHAPES + """
        (define (site-a s) (method s area))
        (define (site-b s) (method s area))
        (site-a (make-Circle 1))
        (site-b (make-Square 2))
        """
        system.profile_run(program, "two.ss")
        text = unparse_string(system.compile(program, "two.ss"))
        site_a = text[text.index("(define site-a") : text.index("(define site-b")]
        site_b = text[text.index("(define site-b") :]
        assert "'Circle" in site_a and "'Square" not in site_a
        assert "'Square" in site_b and "'Circle" not in site_b
