"""Weight-tie determinism of the reordering meta-programs.

The §6.1 optimizers sort clauses by profile weight. When two clauses have
*equal* weight, the order must still be deterministic — specifically, the
original source order — by explicit construction (an original-clause-index
tie-break), not as an accident of the host language's sort stability.
These tests pin that contract for both substrates.
"""

from __future__ import annotations

from repro.casestudies.exclusive_cond import make_case_system
from repro.pyast.casestudies import pycase  # noqa: F401 (used in expanded source)
from repro.pyast.system import PyAstSystem
from repro.scheme.core_forms import unparse_string

CASE_PROGRAM = """
(define (classify x)
  (case x
    [(1) 'one]
    [(2) 'two]
    [(3) 'three]
    [else 'other]))
"""


def _clause_order(expanded: str) -> list[str]:
    names = ["one", "two", "three"]
    return sorted(names, key=lambda name: expanded.index(name))


class TestSchemeCaseTies:
    def test_all_tied_keeps_source_order(self):
        system = make_case_system()
        for key in (1, 2, 3):
            system.profile_run(f"{CASE_PROGRAM}\n(classify {key})", "tie.ss")
        expanded = unparse_string(system.compile(CASE_PROGRAM, "tie.ss"))
        assert _clause_order(expanded) == ["one", "two", "three"]

    def test_tied_tail_keeps_source_order_behind_hot_clause(self):
        system = make_case_system()
        # 'three' is exercised twice as often; 'one' and 'two' tie.
        for key in (3, 3, 1, 2):
            system.profile_run(f"{CASE_PROGRAM}\n(classify {key})", "tie.ss")
        expanded = unparse_string(system.compile(CASE_PROGRAM, "tie.ss"))
        assert _clause_order(expanded) == ["three", "one", "two"]

    def test_reexpansion_is_identical(self):
        system = make_case_system()
        for key in (3, 3, 1, 2):
            system.profile_run(f"{CASE_PROGRAM}\n(classify {key})", "tie.ss")
        first = unparse_string(system.compile(CASE_PROGRAM, "tie.ss"))
        second = unparse_string(system.compile(CASE_PROGRAM, "tie.ss"))
        assert first == second


def _py_classify(k):
    return pycase(
        k,
        ((1,), "one"),
        ((2,), "two"),
        ((3,), "three"),
        default="other",
    )


def _py_clause_order(expanded_source: str) -> list[str]:
    names = ["'one'", "'two'", "'three'"]
    return sorted(names, key=lambda name: expanded_source.index(name))


class TestPycaseTies:
    def test_all_tied_keeps_source_order(self):
        system = PyAstSystem()
        instrumented = system.expand(_py_classify)
        system.profile(instrumented, [(1,), (2,), (3,)])
        optimized = system.expand(_py_classify)
        assert _py_clause_order(optimized.__pgmp_source__) == [
            "'one'",
            "'two'",
            "'three'",
        ]

    def test_tied_tail_keeps_source_order_behind_hot_clause(self):
        system = PyAstSystem()
        instrumented = system.expand(_py_classify)
        system.profile(instrumented, [(3,), (3,), (1,), (2,)])
        optimized = system.expand(_py_classify)
        assert _py_clause_order(optimized.__pgmp_source__) == [
            "'three'",
            "'one'",
            "'two'",
        ]

    def test_reexpansion_is_identical(self):
        system = PyAstSystem()
        instrumented = system.expand(_py_classify)
        system.profile(instrumented, [(3,), (3,), (1,), (2,)])
        first = system.expand(_py_classify).__pgmp_source__
        second = system.expand(_py_classify).__pgmp_source__
        assert first == second
