"""Tests for syntax-rules transformers and the do loop."""

import pytest

from repro.core.errors import ExpandError
from tests.conftest import run_value


class TestSyntaxRules:
    def test_fixed_rewrite(self, scheme):
        source = """
        (define-syntax five (syntax-rules () [(_) 5]))
        (five)
        """
        assert run_value(scheme, source) == "5"

    def test_multiple_clauses(self, scheme):
        source = """
        (define-syntax my-or
          (syntax-rules ()
            [(_) #f]
            [(_ e) e]
            [(_ e1 e2 ...) (let ([t e1]) (if t t (my-or e2 ...)))]))
        (list (my-or) (my-or 7) (my-or #f 8) (my-or #f #f 9))
        """
        assert run_value(scheme, source) == "(#f 7 8 9)"

    def test_hygiene(self, scheme):
        source = """
        (define-syntax my-or2
          (syntax-rules ()
            [(_ a b) (let ([t a]) (if t t b))]))
        (define t 'user)
        (my-or2 #f t)
        """
        assert run_value(scheme, source) == "user"

    def test_literals(self, scheme):
        source = """
        (define-syntax for
          (syntax-rules (in)
            [(_ x in lst body) (map (lambda (x) body) lst)]))
        (for x in '(1 2 3) (* x x))
        """
        assert run_value(scheme, source) == "(1 4 9)"

    def test_literal_mismatch_falls_through(self, scheme):
        source = """
        (define-syntax tagged
          (syntax-rules (in)
            [(_ x in y) 'with-in]
            [(_ x y z) 'without]))
        (list (tagged 1 in 2) (tagged 1 on 2))
        """
        assert run_value(scheme, source) == "(with-in without)"

    def test_nested_ellipsis(self, scheme):
        source = """
        (define-syntax flatten2
          (syntax-rules ()
            [(_ ((x ...) ...)) (list x ... ...)]))
        (flatten2 ((1 2) (3) ()))
        """
        assert run_value(scheme, source) == "(1 2 3)"

    def test_recursive(self, scheme):
        source = """
        (define-syntax my-and
          (syntax-rules ()
            [(_) #t]
            [(_ e) e]
            [(_ e1 e2 ...) (if e1 (my-and e2 ...) #f)]))
        (list (my-and 1 2 3) (my-and 1 #f 3))
        """
        assert run_value(scheme, source) == "(3 #f)"

    def test_no_matching_rule_errors(self, scheme):
        source = """
        (define-syntax exactly-one (syntax-rules () [(_ e) e]))
        (exactly-one 1 2)
        """
        with pytest.raises(ExpandError, match="no syntax-rules clause"):
            scheme.run_source(source)

    def test_keyword_position_ignored(self, scheme):
        """The pattern's head matches the macro keyword regardless of name."""
        source = """
        (define-syntax k (syntax-rules () [(anything e) e]))
        (k 42)
        """
        assert run_value(scheme, source) == "42"

    def test_let_syntax_with_syntax_rules(self, scheme):
        source = """
        (let-syntax ([double (syntax-rules () [(_ e) (* 2 e)])])
          (double 21))
        """
        assert run_value(scheme, source) == "42"

    def test_syntax_rules_in_expression_position_rejected(self, scheme):
        with pytest.raises(ExpandError):
            scheme.run_source("(+ 1 (syntax-rules () [(_) 1]))")


class TestDo:
    def test_countdown(self, scheme):
        assert run_value(
            scheme, "(do ([i 0 (+ i 1)] [acc 1 (* acc 2)]) ((= i 4) acc))"
        ) == "16"

    def test_no_result_expr(self, scheme):
        assert run_value(scheme, "(do ([i 0 (+ i 1)]) ((= i 3)))") == "#<void>"

    def test_body_side_effects(self, scheme):
        source = """
        (define v (make-vector 4 0))
        (do ([i 0 (+ i 1)]) ((= i 4) v)
          (vector-set! v i (* i 10)))
        """
        assert run_value(scheme, source) == "#(0 10 20 30)"

    def test_var_without_step(self, scheme):
        assert run_value(
            scheme, "(do ([i 0 (+ i 1)] [k 7]) ((= i 2) k))"
        ) == "7"

    def test_multiple_results(self, scheme):
        assert run_value(
            scheme, "(do ([i 0 (+ i 1)]) ((= i 1) 'a 'b 'c))"
        ) == "c"

    def test_nested_do(self, scheme):
        source = """
        (do ([i 0 (+ i 1)]
             [total 0 (do ([j 0 (+ j 1)] [s total (+ s 1)]) ((= j i) s))])
            ((= i 4) total))
        """
        assert run_value(scheme, source) == "6"  # 0+1+2+3

    def test_do_is_tail_recursive(self, scheme):
        assert run_value(
            scheme, "(do ([i 0 (+ i 1)]) ((= i 100000) 'done))"
        ) == "done"

    def test_malformed(self, scheme):
        with pytest.raises(ExpandError):
            scheme.run_source("(do)")
        with pytest.raises(ExpandError):
            scheme.run_source("(do ([x 1 2 3 4]) (#t))")
        with pytest.raises(ExpandError):
            scheme.run_source("(do ([x 1]) ())")
