"""Unit tests for syntax objects: scopes, points, datum conversion."""

import pytest

from repro.core.profile_point import ProfilePoint, make_profile_point
from repro.core.srcloc import UNKNOWN_LOCATION, SourceLocation
from repro.scheme.datum import NIL, Pair, SchemeVector, Symbol, scheme_list, write_datum
from repro.scheme.reader import read_one
from repro.scheme.syntax import (
    Syntax,
    datum_to_syntax,
    is_identifier,
    strip_all,
    syntax_pylist,
    syntax_to_datum,
)

LOC = SourceLocation("s.ss", 0, 5, line=1, column=0)


class TestProfilePointProtocol:
    def test_implicit_point_from_srcloc(self):
        stx = Syntax(Symbol("x"), LOC)
        point = stx.profile_point
        assert point == ProfilePoint.for_location(LOC)
        assert not point.generated

    def test_no_point_without_location(self):
        stx = Syntax(Symbol("x"), UNKNOWN_LOCATION)
        assert stx.profile_point is None

    def test_with_point_overrides(self):
        stx = Syntax(Symbol("x"), LOC)
        fresh = make_profile_point(LOC)
        annotated = stx.with_point(fresh)
        assert annotated.profile_point == fresh
        # Original untouched (immutability by convention).
        assert stx.profile_point == ProfilePoint.for_location(LOC)

    def test_with_point_replaces_prior_explicit_point(self):
        stx = Syntax(Symbol("x"), LOC)
        first = make_profile_point(LOC)
        second = make_profile_point(LOC)
        assert stx.with_point(first).with_point(second).profile_point == second


class TestScopeOperations:
    def test_add_scope_recurses(self):
        stx = read_one("(a (b) c)")
        scoped = stx.add_scope(7)
        assert 7 in scoped.scopes
        inner = scoped.datum.cdr.car  # (b)
        assert 7 in inner.scopes
        assert 7 in inner.datum.car.scopes

    def test_flip_scope_is_involutive(self):
        stx = read_one("(a b)")
        assert stx.flip_scope(3).flip_scope(3).scopes == stx.scopes

    def test_flip_scope_xor(self):
        stx = Syntax(Symbol("x"), LOC, frozenset({1}))
        assert stx.flip_scope(1).scopes == frozenset()
        assert stx.flip_scope(2).scopes == frozenset({1, 2})

    def test_remove_scope(self):
        stx = Syntax(Symbol("x"), LOC, frozenset({1, 2}))
        assert stx.remove_scope(1).scopes == frozenset({2})

    def test_scope_ops_preserve_srcloc_and_point(self):
        stx = Syntax(Symbol("x"), LOC).with_point(make_profile_point(LOC))
        scoped = stx.add_scope(5)
        assert scoped.srcloc == LOC
        assert scoped.explicit_point == stx.explicit_point

    def test_add_scope_on_vector(self):
        stx = read_one("#(a b)")
        scoped = stx.add_scope(9)
        assert all(9 in item.scopes for item in scoped.datum)


class TestConversions:
    def test_syntax_to_datum_strips_recursively(self):
        stx = read_one("(a (b #(c)) 1)")
        assert write_datum(syntax_to_datum(stx)) == "(a (b #(c)) 1)"

    def test_datum_to_syntax_wraps_recursively(self):
        stx = datum_to_syntax(scheme_list(Symbol("a"), scheme_list(1)))
        assert isinstance(stx, Syntax)
        assert isinstance(stx.datum.car, Syntax)
        assert write_datum(syntax_to_datum(stx)) == "(a (1))"

    def test_datum_to_syntax_copies_context_scopes(self):
        context = Syntax(Symbol("ctx"), LOC, frozenset({4, 5}))
        stx = datum_to_syntax(Symbol("new"), context=context)
        assert stx.scopes == frozenset({4, 5})
        assert stx.srcloc == LOC

    def test_datum_to_syntax_keeps_existing_syntax(self):
        existing = Syntax(Symbol("keep"), LOC, frozenset({8}))
        wrapped = datum_to_syntax(scheme_list(existing), context=None)
        assert wrapped.datum.car is existing

    def test_dotted_datum(self):
        stx = datum_to_syntax(Pair(1, 2))
        assert write_datum(syntax_to_datum(stx)) == "(1 . 2)"

    def test_strip_all_non_syntax(self):
        assert strip_all(42) == 42
        assert strip_all("s") == "s"


class TestListAccess:
    def test_syntax_pylist(self):
        items = syntax_pylist(read_one("(a b c)"))
        assert [i.symbol_name for i in items] == ["a", "b", "c"]

    def test_syntax_pylist_empty(self):
        assert syntax_pylist(read_one("()")) == []

    def test_syntax_pylist_rejects_improper(self):
        with pytest.raises(TypeError):
            syntax_pylist(read_one("(a . b)"))

    def test_mixed_wrapped_spine(self):
        # Template output mixes raw pairs and syntax-wrapped tails.
        inner = read_one("(b c)")
        mixed = Syntax(Pair(read_one("a"), inner), LOC)
        assert [i.symbol_name for i in syntax_pylist(mixed)] == ["a", "b", "c"]

    def test_head_symbol(self):
        assert read_one("(foo 1)").head_symbol() is Symbol("foo")
        assert read_one("((f) 1)").head_symbol() is None
        assert read_one("x").head_symbol() is None

    def test_is_identifier(self):
        assert is_identifier(read_one("abc"))
        assert not is_identifier(read_one("42"))
        assert not is_identifier(read_one("(a)"))
        assert not is_identifier("abc")

    def test_predicates(self):
        assert read_one("(a)").is_pair()
        assert read_one("()").is_null()
        assert read_one("x").is_symbol()
        assert read_one("x").symbol_name == "x"
