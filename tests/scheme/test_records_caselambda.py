"""Tests for define-record-type, case-lambda, and the R6RS list utilities."""

import pytest

from repro.core.errors import EvalError, ExpandError
from tests.conftest import run_value


class TestRecords:
    def test_constructor_predicate_accessors(self, scheme):
        source = """
        (define-record-type point (fields x y))
        (define p (make-point 3 4))
        (list (point? p) (point-x p) (point-y p))
        """
        assert run_value(scheme, source) == "(#t 3 4)"

    def test_mutators(self, scheme):
        source = """
        (define-record-type cell (fields value))
        (define c (make-cell 1))
        (set-cell-value! c 99)
        (cell-value c)
        """
        assert run_value(scheme, source) == "99"

    def test_predicate_rejects_other_values(self, scheme):
        source = """
        (define-record-type point (fields x y))
        (list (point? 5) (point? '(1 2)) (point? (vector 'point 1 2)))
        """
        assert run_value(scheme, source) == "(#f #f #f)"

    def test_two_types_with_same_shape_are_distinct(self, scheme):
        source = """
        (define-record-type point (fields x y))
        (define-record-type pair2 (fields x y))
        (list (point? (make-pair2 1 2)) (pair2? (make-point 1 2)))
        """
        assert run_value(scheme, source) == "(#f #f)"

    def test_record_in_body_context(self, scheme):
        source = """
        (define (f)
          (define-record-type box (fields v))
          (box-v (make-box 42)))
        (f)
        """
        assert run_value(scheme, source) == "42"

    def test_zero_field_record(self, scheme):
        source = """
        (define-record-type unit (fields))
        (unit? (make-unit))
        """
        assert run_value(scheme, source) == "#t"

    def test_malformed(self, scheme):
        with pytest.raises(ExpandError):
            scheme.run_source("(define-record-type)")
        with pytest.raises(ExpandError):
            scheme.run_source("(define-record-type p (slots x))")
        with pytest.raises(ExpandError):
            scheme.run_source("(+ 1 (define-record-type p (fields x)))")


class TestCaseLambda:
    def test_arity_dispatch(self, scheme):
        source = """
        (define f
          (case-lambda
            [() 'zero]
            [(x) (list 'one x)]
            [(x y) (list 'two x y)]))
        (list (f) (f 1) (f 1 2))
        """
        assert run_value(scheme, source) == "(zero (one 1) (two 1 2))"

    def test_rest_clause(self, scheme):
        source = """
        (define f
          (case-lambda
            [(x) 'exact]
            [(x . rest) (cons 'rest rest)]))
        (list (f 1) (f 1 2 3))
        """
        assert run_value(scheme, source) == "(exact (rest 2 3))"

    def test_first_matching_clause_wins(self, scheme):
        source = """
        (define f (case-lambda [args 'general] [(x) 'specific]))
        (f 1)
        """
        assert run_value(scheme, source) == "general"

    def test_no_matching_clause(self, scheme):
        with pytest.raises(EvalError, match="no clause"):
            scheme.run_source("((case-lambda [(x) x]) 1 2)")

    def test_closes_over_environment(self, scheme):
        source = """
        (define (make n)
          (case-lambda
            [() n]
            [(m) (+ n m)]))
        (define f (make 10))
        (list (f) (f 5))
        """
        assert run_value(scheme, source) == "(10 15)"

    def test_malformed(self, scheme):
        with pytest.raises(ExpandError):
            scheme.run_source("(case-lambda)")
        with pytest.raises(ExpandError):
            scheme.run_source("(case-lambda [(x)])")


class TestListUtilities:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("(find even? '(1 3 4 5))", "4"),
            ("(find even? '(1 3 5))", "#f"),
            ("(remove even? '(1 2 3 4))", "(1 3)"),
            ("(partition even? '(1 2 3 4))", "((2 4) 1 3)"),
            ("(for-all positive? '(1 2))", "#t"),
            ("(for-all positive? '(1 -2))", "#f"),
            ("(for-all positive? '())", "#t"),
            ("(exists negative? '(1 -2))", "#t"),
            ("(exists negative? '())", "#f"),
            ("(memp even? '(1 3 4 5))", "(4 5)"),
            ("(assp even? '((1 a) (2 b)))", "(2 b)"),
            ("(list-index even? '(1 3 6))", "2"),
            ("(list-index even? '(1 3 5))", "#f"),
            ("(filter-map (lambda (x) (and (even? x) (* x 10))) '(1 2 3 4))", "(20 40)"),
            ("(take '(1 2 3 4) 2)", "(1 2)"),
            ("(take '(1 2) 0)", "()"),
            ("(drop '(1 2 3 4) 3)", "(4)"),
        ],
    )
    def test_cases(self, scheme, source, expected):
        assert run_value(scheme, source) == expected

    def test_take_out_of_range(self, scheme):
        with pytest.raises(EvalError):
            scheme.run_source("(take '(1) 5)")
