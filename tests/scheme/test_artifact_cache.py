"""The profile-keyed artifact cache: hits, misses, and invalidation.

Every assertion about cache behaviour goes through the global metrics
counters (``artifact_cache_{hits,misses}_total``, ``expansions_total``),
because that is the operational contract: a warm hit performs zero
re-expansions, and anything that could change the expansion — new profile
data, changed source — misses.
"""

import os
import subprocess
import sys

import pytest

from repro.obs.metrics import get_global_metrics
from repro.scheme.compile_py import ArtifactCache, artifact_filename
from repro.scheme.datum import write_datum
from repro.scheme.pipeline import SchemeSystem

PROGRAM = """
(define (classify n) (if (< n 10) 'small 'large))
(define (walk xs acc)
  (if (null? xs) acc (walk (cdr xs) (cons (classify (car xs)) acc))))
(walk '(1 20 3 40) '())
"""


class _Counters:
    """Deltas of the global metrics counters since construction."""

    NAMES = (
        "artifact_cache_hits_total",
        "artifact_cache_misses_total",
        "artifact_compiles_total",
        "expansions_total",
    )

    def __init__(self):
        self.metrics = get_global_metrics()
        self.base = {name: self.metrics.counter(name) for name in self.NAMES}

    def delta(self, name: str) -> float:
        return self.metrics.counter(name) - self.base[name]


def test_second_compile_is_a_hit_with_zero_reexpansions():
    system = SchemeSystem()
    counters = _Counters()
    first = system.compile_cached(PROGRAM, "prog.ss")
    assert counters.delta("artifact_cache_misses_total") == 1
    assert counters.delta("artifact_compiles_total") == 1
    assert counters.delta("expansions_total") == 1
    second = system.compile_cached(PROGRAM, "prog.ss")
    assert second is first
    assert counters.delta("artifact_cache_hits_total") == 1
    assert counters.delta("expansions_total") == 1, "a hit re-expands nothing"


def test_profile_generation_bump_invalidates():
    system = SchemeSystem()
    system.compile_cached(PROGRAM, "prog.ss")
    counters = _Counters()
    # New profile data moves the merged fingerprint (generation-counted
    # merge cache), so the same source must recompile: meta-programs may
    # now expand differently.
    system.profile_run(PROGRAM, "prog.ss")
    key_after = system.artifact_key(PROGRAM)
    system.compile_cached(PROGRAM, "prog.ss")
    assert counters.delta("artifact_cache_misses_total") == 1
    assert counters.delta("artifact_cache_hits_total") == 0
    # ... and the new world is itself cached:
    system.compile_cached(PROGRAM, "prog.ss")
    assert counters.delta("artifact_cache_hits_total") == 1
    assert system.artifact_key(PROGRAM) == key_after


def test_source_change_invalidates():
    system = SchemeSystem()
    system.compile_cached(PROGRAM, "prog.ss")
    counters = _Counters()
    system.compile_cached(PROGRAM + " 'tail", "prog.ss")
    assert counters.delta("artifact_cache_misses_total") == 1
    system.compile_cached(PROGRAM, "prog.ss")
    assert counters.delta("artifact_cache_hits_total") == 1, (
        "the original source's artifact is still valid"
    )


def test_library_change_invalidates():
    plain = SchemeSystem()
    with_lib = SchemeSystem()
    with_lib.load_library("(define (helper x) x)", "helper.ss")
    assert plain.artifact_key(PROGRAM) != with_lib.artifact_key(PROGRAM), (
        "loaded libraries feed expansion, so they are part of the key"
    )


def test_cross_process_disk_reuse(tmp_path):
    cache_dir = tmp_path / "artifacts"
    first = SchemeSystem(artifact_cache=ArtifactCache(cache_dir))
    artifact = first.compile_cached(PROGRAM, "prog.ss")
    assert artifact.runnable

    # A fresh system with a fresh cache object on the same directory
    # models a new process: same sources, same (empty) profile.
    counters = _Counters()
    second = SchemeSystem(artifact_cache=ArtifactCache(cache_dir))
    warm = second.compile_cached(PROGRAM, "prog.ss")
    assert counters.delta("artifact_cache_hits_total") == 1
    assert counters.delta("expansions_total") == 0, "no re-expansion at all"
    assert warm.runnable and warm.program is None, "loaded from disk"
    assert warm.expansion_text == artifact.expansion_text
    value = warm.execute(second.runtime_env)
    assert write_datum(value) == write_datum(
        first.run(artifact.program).value
    )


def test_corrupt_disk_artifact_is_a_miss(tmp_path):
    cache_dir = tmp_path / "artifacts"
    system = SchemeSystem(artifact_cache=ArtifactCache(cache_dir))
    artifact = system.compile_cached(PROGRAM, "prog.ss")
    path = cache_dir / artifact_filename(artifact.key)
    assert path.exists()
    path.write_text("def _pgmp_main(:  # truncated mid-write\n")

    counters = _Counters()
    fresh = SchemeSystem(artifact_cache=ArtifactCache(cache_dir))
    recompiled = fresh.compile_cached(PROGRAM, "prog.ss")
    assert counters.delta("artifact_cache_misses_total") == 1
    assert recompiled.runnable
    assert path.read_text() != "def _pgmp_main(:  # truncated mid-write\n", (
        "the miss rewrote a good artifact"
    )


def test_disk_artifact_is_readable_python(tmp_path):
    cache_dir = tmp_path / "artifacts"
    system = SchemeSystem(artifact_cache=ArtifactCache(cache_dir))
    artifact = system.compile_cached(PROGRAM, "prog.ss")
    text = (cache_dir / artifact_filename(artifact.key)).read_text()
    assert "def _pgmp_main(GB, H, C):" in text
    assert "__pgmp_meta__" in text
    compile(text, "<artifact>", "exec")  # debuggable: it's plain Python


@pytest.mark.parametrize("flavor", ["instr", "budget"])
def test_non_plain_flavors_stay_in_memory(tmp_path, flavor):
    cache_dir = tmp_path / "artifacts"
    system = SchemeSystem(artifact_cache=ArtifactCache(cache_dir))
    artifact = system.compile_cached(PROGRAM, "prog.ss", flavor=flavor)
    assert artifact.flavor == flavor
    assert not (cache_dir / artifact_filename(artifact.key)).exists(), (
        "hook sites reference in-memory profile points; only plain "
        "artifacts are written out"
    )
    assert system.compile_cached(PROGRAM, "prog.ss", flavor=flavor) is artifact


def _run_cli(args, cwd):
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.tools.cli", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
        timeout=120,
    )


def test_warm_optimize_across_processes(tmp_path):
    # The CLI end of the contract: two separate `pgmp optimize` processes
    # sharing a --cache-dir print byte-identical expansions, the second
    # from the cached artifact.
    program = tmp_path / "prog.ss"
    program.write_text(PROGRAM)
    profile = tmp_path / "weights.json"
    store = _run_cli(
        ["profile", str(program), "--out", str(profile)], tmp_path
    )
    assert store.returncode == 0, store.stderr
    cache_dir = str(tmp_path / "artifacts")
    runs = [
        _run_cli(
            [
                "optimize",
                str(program),
                "--profile-file",
                str(profile),
                "--cache-dir",
                cache_dir,
            ],
            tmp_path,
        )
        for _ in range(2)
    ]
    for run in runs:
        assert run.returncode == 0, run.stderr
    assert runs[0].stdout == runs[1].stdout
    assert runs[0].stdout.strip(), "the optimized expansion was printed"


def test_warm_optimize_performs_zero_expansions(tmp_path):
    # In-process twin of the acceptance criterion, asserted via metrics.
    cache = ArtifactCache(tmp_path / "artifacts")
    cold = SchemeSystem(artifact_cache=cache)
    cold.compile_cached(PROGRAM, "prog.ss")
    counters = _Counters()
    warm = SchemeSystem(artifact_cache=ArtifactCache(tmp_path / "artifacts"))
    artifact = warm.compile_cached(PROGRAM, "prog.ss")
    assert artifact.expansion_text
    assert counters.delta("expansions_total") == 0
    assert counters.delta("artifact_cache_hits_total") == 1
