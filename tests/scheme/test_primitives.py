"""Tests for the primitive library."""

import pytest

from repro.core.errors import EvalError
from tests.conftest import run_value


class TestArithmetic:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("(+)", "0"),
            ("(+ 1 2 3)", "6"),
            ("(- 5)", "-5"),
            ("(- 10 3 2)", "5"),
            ("(*)", "1"),
            ("(* 2 3 4)", "24"),
            ("(/ 10 4)", "5/2"),
            ("(/ 2)", "1/2"),
            ("(/ 6 3)", "2"),
            ("(abs -3)", "3"),
            ("(min 3 1 2)", "1"),
            ("(max 3 1 2)", "3"),
            ("(quotient 7 2)", "3"),
            ("(quotient -7 2)", "-3"),
            ("(remainder 7 2)", "1"),
            ("(remainder -7 2)", "-1"),
            ("(modulo -7 2)", "1"),
            ("(expt 2 10)", "1024"),
            ("(sqrt 16)", "4"),
            ("(sqrt 2)", "1.4142135623730951"),
            ("(gcd 12 18)", "6"),
            ("(lcm 4 6)", "12"),
            ("(add1 41)", "42"),
            ("(sub1 43)", "42"),
            ("(floor 3/2)", "1"),
            ("(ceiling 3/2)", "2"),
            ("(sqr 7)", "49"),
            ("(exact->inexact 1/2)", "0.5"),
        ],
    )
    def test_numeric(self, scheme, source, expected):
        assert run_value(scheme, source) == expected

    @pytest.mark.parametrize(
        "source,expected",
        [
            ("(= 1 1 1)", "#t"),
            ("(= 1 2)", "#f"),
            ("(< 1 2 3)", "#t"),
            ("(< 1 3 2)", "#f"),
            ("(<= 1 1 2)", "#t"),
            ("(> 3 2 1)", "#t"),
            ("(>= 3 3 1)", "#t"),
            ("(zero? 0)", "#t"),
            ("(positive? 1)", "#t"),
            ("(negative? -1)", "#t"),
            ("(even? 4)", "#t"),
            ("(odd? 3)", "#t"),
            ("(number? 1)", "#t"),
            ("(number? #t)", "#f"),
            ("(integer? 2.0)", "#t"),
            ("(integer? 1/2)", "#f"),
        ],
    )
    def test_predicates(self, scheme, source, expected):
        assert run_value(scheme, source) == expected

    def test_division_by_zero(self, scheme):
        with pytest.raises(EvalError):
            scheme.run_source("(/ 1 0)")

    def test_type_error(self, scheme):
        with pytest.raises(EvalError, match="expected a number"):
            scheme.run_source("(+ 1 'a)")

    def test_number_string_conversions(self, scheme):
        assert run_value(scheme, '(number->string 42)') == '"42"'
        assert run_value(scheme, '(string->number "42")') == "42"
        assert run_value(scheme, '(string->number "1/2")') == "1/2"
        assert run_value(scheme, '(string->number "nope")') == "#f"


class TestEquivalence:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("(eq? 'a 'a)", "#t"),
            ("(eq? 'a 'b)", "#f"),
            ("(eqv? 1 1)", "#t"),
            ("(eqv? 1 1.0)", "#f"),
            ("(equal? '(1 2) '(1 2))", "#t"),
            ("(equal? '(1 2) '(1 3))", "#f"),
            ('(equal? "ab" "ab")', "#t"),
            ("(equal? #(1 2) #(1 2))", "#t"),
            ("(eq? '() '())", "#t"),
            ("(equal? 1 #t)", "#f"),
            ("(not #f)", "#t"),
            ("(not 0)", "#f"),
            ("(boolean? #f)", "#t"),
            ("(procedure? car)", "#t"),
            ("(procedure? (lambda (x) x))", "#t"),
            ("(procedure? 5)", "#f"),
        ],
    )
    def test_cases(self, scheme, source, expected):
        assert run_value(scheme, source) == expected

    def test_eqv_distinct_pairs(self, scheme):
        assert run_value(scheme, "(eqv? (cons 1 2) (cons 1 2))") == "#f"
        assert run_value(scheme, "(define p (cons 1 2)) (eqv? p p)") == "#t"


class TestLists:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("(cons 1 2)", "(1 . 2)"),
            ("(car '(1 2))", "1"),
            ("(cdr '(1 2))", "(2)"),
            ("(cadr '(1 2 3))", "2"),
            ("(caddr '(1 2 3))", "3"),
            ("(list 1 2 3)", "(1 2 3)"),
            ("(length '(1 2 3))", "3"),
            ("(length '())", "0"),
            ("(append '(1) '(2) '(3 4))", "(1 2 3 4)"),
            ("(append)", "()"),
            ("(reverse '(1 2 3))", "(3 2 1)"),
            ("(list-ref '(a b c) 1)", "b"),
            ("(list-tail '(a b c) 2)", "(c)"),
            ("(memq 'b '(a b c))", "(b c)"),
            ("(memq 'z '(a b c))", "#f"),
            ("(member '(1) '((0) (1)))", "((1))"),
            ("(assq 'b '((a 1) (b 2)))", "(b 2)"),
            ("(assoc '(k) '(((k) 1)))", "((k) 1)"),
            ("(pair? '(1))", "#t"),
            ("(pair? '())", "#f"),
            ("(null? '())", "#t"),
            ("(list? '(1 2))", "#t"),
            ("(list? '(1 . 2))", "#f"),
            ("(iota 3)", "(0 1 2)"),
            ("(iota 3 10)", "(10 11 12)"),
            ("(iota 3 0 5)", "(0 5 10)"),
            ("(last-pair '(1 2 3))", "(3)"),
        ],
    )
    def test_cases(self, scheme, source, expected):
        assert run_value(scheme, source) == expected

    def test_car_of_non_pair(self, scheme):
        with pytest.raises(EvalError, match="expected a pair"):
            scheme.run_source("(car 5)")

    def test_set_car(self, scheme):
        assert run_value(scheme, "(define p (list 1 2)) (set-car! p 9) p") == "(9 2)"

    def test_set_cdr(self, scheme):
        assert run_value(scheme, "(define p (list 1 2)) (set-cdr! p '(8)) p") == "(1 8)"


class TestHigherOrder:
    def test_map(self, scheme):
        assert run_value(scheme, "(map (lambda (x) (* x x)) '(1 2 3))") == "(1 4 9)"

    def test_map_multi(self, scheme):
        assert run_value(scheme, "(map + '(1 2) '(10 20))") == "(11 22)"

    def test_map_length_mismatch(self, scheme):
        with pytest.raises(EvalError):
            scheme.run_source("(map + '(1) '(1 2))")

    def test_for_each(self, scheme):
        out = scheme.run_source("(for-each display '(1 2 3))").output
        assert out == "123"

    def test_filter(self, scheme):
        assert run_value(scheme, "(filter odd? '(1 2 3 4 5))") == "(1 3 5)"

    def test_fold_left(self, scheme):
        assert run_value(scheme, "(fold-left cons '() '(1 2 3))") == "(((() . 1) . 2) . 3)"

    def test_fold_right(self, scheme):
        assert run_value(scheme, "(fold-right cons '() '(1 2 3))") == "(1 2 3)"

    def test_apply(self, scheme):
        assert run_value(scheme, "(apply + 1 2 '(3 4))") == "10"
        assert run_value(scheme, "(apply list '())") == "()"

    def test_curry(self, scheme):
        assert run_value(scheme, "((curry + 1 2) 3)") == "6"
        assert run_value(scheme, "(map (curry * 10) '(1 2))") == "(10 20)"

    def test_sort(self, scheme):
        assert run_value(scheme, "(sort '(3 1 2) <)") == "(1 2 3)"
        assert run_value(scheme, "(sort '(3 1 2) >)") == "(3 2 1)"

    def test_sort_with_key(self, scheme):
        assert (
            run_value(scheme, "(sort '((a 3) (b 1) (c 2)) < cadr)")
            == "((b 1) (c 2) (a 3))"
        )

    def test_sort_is_stable(self, scheme):
        assert (
            run_value(scheme, "(sort '((a 1) (b 1) (c 0)) < cadr)")
            == "((c 0) (a 1) (b 1))"
        )

    def test_map_with_user_procedure_and_primitives_mixed(self, scheme):
        source = """
        (define (twice f) (lambda (x) (f (f x))))
        (map (twice add1) '(1 2))
        """
        assert run_value(scheme, source) == "(3 4)"


class TestStringsCharsSymbols:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ('(string-length "abc")', "3"),
            ('(string-ref "abc" 1)', "#\\b"),
            ('(substring "hello" 1 3)', '"el"'),
            ('(substring "hello" 2)', '"llo"'),
            ('(string-append "a" "b" "c")', '"abc"'),
            ('(string=? "a" "a")', "#t"),
            ('(string<? "a" "b")', "#t"),
            ('(string-upcase "ab")', '"AB"'),
            ('(string->list "ab")', "(#\\a #\\b)"),
            ("(list->string '(#\\a #\\b))", '"ab"'),
            ('(string-contains? "hello" "ell")', "#t"),
            ('(string-split "a,b" ",")', '("a" "b")'),
            ('(string-join \'("a" "b") "-")', '"a-b"'),
            ("(symbol->string 'abc)", '"abc"'),
            ('(string->symbol "abc")', "abc"),
            ("(symbol? 'a)", "#t"),
            ('(symbol? "a")', "#f"),
            ("(char->integer #\\A)", "65"),
            ("(integer->char 97)", "#\\a"),
            ("(char=? #\\a #\\a)", "#t"),
            ("(char<? #\\a #\\b)", "#t"),
            ("(char-alphabetic? #\\a)", "#t"),
            ("(char-numeric? #\\5)", "#t"),
            ("(char-whitespace? #\\space)", "#t"),
            ("(char-upcase #\\a)", "#\\A"),
            ("(string? \"x\")", "#t"),
            ("(char? #\\x)", "#t"),
        ],
    )
    def test_cases(self, scheme, source, expected):
        assert run_value(scheme, source) == expected

    def test_string_ref_out_of_range(self, scheme):
        with pytest.raises(EvalError):
            scheme.run_source('(string-ref "ab" 5)')

    def test_gensym_distinct(self, scheme):
        assert run_value(scheme, "(eq? (gensym) (gensym))") == "#f"


class TestVectors:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("(vector 1 2 3)", "#(1 2 3)"),
            ("(make-vector 3 'x)", "#(x x x)"),
            ("(vector-length #(1 2))", "2"),
            ("(vector-ref #(1 2) 1)", "2"),
            ("(vector->list #(1 2))", "(1 2)"),
            ("(list->vector '(1 2))", "#(1 2)"),
            ("(vector-map add1 #(1 2))", "#(2 3)"),
            ("(vector-append #(1) #(2 3))", "#(1 2 3)"),
            ("(vector? #(1))", "#t"),
            ("(vector? '(1))", "#f"),
        ],
    )
    def test_cases(self, scheme, source, expected):
        assert run_value(scheme, source) == expected

    def test_vector_set(self, scheme):
        assert run_value(scheme, "(define v (vector 1 2)) (vector-set! v 0 9) v") == "#(9 2)"

    def test_vector_fill(self, scheme):
        assert run_value(scheme, "(define v (make-vector 2 0)) (vector-fill! v 7) v") == "#(7 7)"

    def test_vector_ref_out_of_range(self, scheme):
        with pytest.raises(EvalError, match="out of range"):
            scheme.run_source("(vector-ref #(1) 3)")

    def test_vector_copy_independent(self, scheme):
        source = """
        (define v (vector 1 2))
        (define w (vector-copy v))
        (vector-set! w 0 9)
        (list v w)
        """
        assert run_value(scheme, source) == "(#(1 2) #(9 2))"


class TestHashtables:
    def test_set_and_ref(self, scheme):
        source = """
        (define ht (make-eq-hashtable))
        (hashtable-set! ht 'a 1)
        (hashtable-set! ht 'b 2)
        (list (hashtable-ref ht 'a #f) (hashtable-ref ht 'z 'default))
        """
        assert run_value(scheme, source) == "(1 default)"

    def test_contains_delete_size(self, scheme):
        source = """
        (define ht (make-eq-hashtable))
        (hashtable-set! ht 'a 1)
        (define had (hashtable-contains? ht 'a))
        (hashtable-delete! ht 'a)
        (list had (hashtable-contains? ht 'a) (hashtable-size ht))
        """
        assert run_value(scheme, source) == "(#t #f 0)"

    def test_object_keys_by_identity(self, scheme):
        source = """
        (define ht (make-eq-hashtable))
        (define k1 (list 1))
        (hashtable-set! ht k1 'one)
        (list (hashtable-ref ht k1 #f) (hashtable-ref ht (list 1) #f))
        """
        assert run_value(scheme, source) == "(one #f)"

    def test_predicate(self, scheme):
        assert run_value(scheme, "(hashtable? (make-eq-hashtable))") == "#t"
        assert run_value(scheme, "(hashtable? 5)") == "#f"


class TestConstants:
    def test_pi(self, scheme):
        assert run_value(scheme, "(< 3.14 pi 3.15)") == "#t"

    def test_void(self, scheme):
        assert run_value(scheme, "(void 1 2 3)") == "#<void>"
