"""Tests for the beta-contraction simplifier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheme.core_forms import unparse_string
from repro.scheme.datum import write_datum
from repro.scheme.pipeline import SchemeSystem
from repro.scheme.simplify import contract_betas
from repro.scheme.syntax import strip_all


def contracted(source: str):
    system = SchemeSystem()
    program, report = contract_betas(system.compile(source))
    return system, program, report


def run_both(source: str):
    system = SchemeSystem()
    original = system.compile(source)
    value1 = system.run(original).value
    simplified, _ = contract_betas(system.compile(source))
    value2 = system.run(simplified).value
    return write_datum(strip_all(value1)), write_datum(strip_all(value2))


class TestContraction:
    def test_let_of_constant_contracts(self):
        _, program, report = contracted("(let ([x 5]) (+ x 1))")
        assert report.contracted == 1
        assert unparse_string(program) == "(+ 5 1)"

    def test_variable_argument_contracts(self):
        _, program, report = contracted("(define y 3) ((lambda (x) (* x x)) y)")
        assert report.contracted == 1
        assert "(* y y)" in unparse_string(program)

    def test_multi_param(self):
        _, program, report = contracted("((lambda (a b) (- a b)) 10 4)")
        assert report.contracted == 1
        assert unparse_string(program) == "(- 10 4)"

    def test_nested_redexes_contract_transitively(self):
        _, program, report = contracted("(let ([x 1]) (let ([y 2]) (+ x y)))")
        assert report.contracted == 2
        assert unparse_string(program) == "(+ 1 2)"

    def test_multi_body_becomes_begin(self):
        _, program, report = contracted("((lambda (x) (display x) x) 7)")
        assert report.contracted == 1
        assert unparse_string(program) == "(begin (display 7) 7)"


class TestRefusals:
    def test_complex_argument_not_contracted(self):
        _, _, report = contracted("(let ([x (+ 1 2)]) (* x x))")
        assert report.contracted == 0  # would duplicate the computation

    def test_set_bang_in_body_not_contracted(self):
        _, _, report = contracted("(define y 1) (let ([x y]) (set! x 2) x)")
        assert report.contracted == 0

    def test_nested_lambda_not_contracted(self):
        _, _, report = contracted("(let ([x 1]) (lambda () x))")
        assert report.contracted == 0

    def test_rest_lambda_not_contracted(self):
        _, _, report = contracted("((lambda args args) 1 2)")
        assert report.contracted == 0

    def test_refusals_still_count_considered(self):
        _, _, report = contracted("(let ([x (+ 1 2)]) x)")
        assert report.considered == 1


class TestSemanticPreservation:
    @pytest.mark.parametrize(
        "source",
        [
            "(let ([x 5]) (+ x x))",
            "(define y 2) (let ([x y]) (if (< x 3) 'small 'big))",
            "(let ([a 1]) (let ([b 2]) (let ([c 3]) (list a b c))))",
            "((lambda (x) (display x) (* 2 x)) 21)",
            "(define (f n) (let ([m n]) (* m m))) (f 9)",
            "(let ([x (+ 1 2)]) (* x x))",  # refused, still must run right
        ],
    )
    def test_cases(self, source):
        before, after = run_both(source)
        assert before == after

    @given(
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=-50, max_value=50),
    )
    @settings(max_examples=20, deadline=None)
    def test_arithmetic_lets_property(self, a, b):
        source = f"(let ([x {a}]) (let ([y {b}]) (- (* x y) (+ x y))))"
        before, after = run_both(source)
        assert before == after


class TestInteractionWithPGMP:
    def test_contract_inlined_case_study(self):
        """The full chain: profile -> inline -> contract -> same value."""
        from repro.casestudies.inliner import make_inliner_system

        program_source = """
        (define-inlinable (triple x) (* 3 x))
        (define (hot n acc) (if (= n 0) acc (hot (- n 1) (+ acc (triple n)))))
        (hot 50 0)
        """
        system = make_inliner_system()
        first = system.profile_run(program_source, "s.ss")
        optimized, report = contract_betas(system.compile(program_source, "s.ss"))
        assert report.contracted >= 1
        second = system.run(optimized)
        assert str(first.value) == str(second.value)
