"""Unit + property tests for the S-expression reader."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ReaderError
from repro.scheme.datum import NIL, Char, Pair, SchemeVector, Symbol, write_datum
from repro.scheme.reader import read_file, read_one, read_string
from repro.scheme.syntax import Syntax, syntax_to_datum


def datum(text: str):
    return syntax_to_datum(read_one(text))


class TestAtoms:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("42", 42),
            ("-17", -17),
            ("+3", 3),
            ("3.14", 3.14),
            ("-0.5", -0.5),
            ("1/2", Fraction(1, 2)),
            ("-3/4", Fraction(-3, 4)),
            ("#t", True),
            ("#f", False),
            ("#true", True),
            ("#false", False),
            ('"hello"', "hello"),
            ('""', ""),
            ("#\\a", Char("a")),
            ("#\\space", Char(" ")),
            ("#\\tab", Char("\t")),
            ("#\\newline", Char("\n")),
            ("#\\(", Char("(")),
            ("#\\)", Char(")")),
            ("#\\0", Char("0")),
        ],
    )
    def test_literals(self, text, expected):
        assert datum(text) == expected

    @pytest.mark.parametrize("name", ["foo", "set!", "list->vector", "+", "-", "...", "a1", "<=?"])
    def test_symbols(self, name):
        assert datum(name) is Symbol(name)

    def test_minus_is_symbol_not_number(self):
        assert datum("-") is Symbol("-")
        assert datum("+") is Symbol("+")

    def test_percent_rejected_in_symbols(self):
        with pytest.raises(ReaderError):
            read_one("foo%bar")

    def test_string_escapes(self):
        assert datum(r'"a\nb"') == "a\nb"
        assert datum(r'"a\tb"') == "a\tb"
        assert datum(r'"a\"b"') == 'a"b'
        assert datum(r'"a\\b"') == "a\\b"
        assert datum(r'"\x41;"') == "A"

    def test_unknown_escape(self):
        with pytest.raises(ReaderError):
            read_one(r'"\q"')

    def test_unterminated_string(self):
        with pytest.raises(ReaderError):
            read_one('"abc')


class TestLists:
    def test_simple(self):
        assert write_datum(datum("(1 2 3)")) == "(1 2 3)"

    def test_nested(self):
        assert write_datum(datum("(a (b (c)) d)")) == "(a (b (c)) d)"

    def test_brackets_interchangeable(self):
        assert write_datum(datum("[a (b) [c]]")) == "(a (b) (c))"

    def test_mismatched_brackets(self):
        with pytest.raises(ReaderError):
            read_one("(a]")

    def test_dotted(self):
        d = datum("(1 . 2)")
        assert isinstance(d, Pair)
        assert d.car == 1 and d.cdr == 2

    def test_dotted_multi(self):
        assert write_datum(datum("(1 2 . 3)")) == "(1 2 . 3)"

    def test_dot_without_car(self):
        with pytest.raises(ReaderError):
            read_one("(. 2)")

    def test_extra_after_dot(self):
        with pytest.raises(ReaderError):
            read_one("(1 . 2 3)")

    def test_unterminated(self):
        with pytest.raises(ReaderError):
            read_one("(1 2")

    def test_stray_close(self):
        with pytest.raises(ReaderError):
            read_one(")")

    def test_empty(self):
        assert datum("()") is NIL

    def test_symbol_named_dot_ok_when_not_delimited(self):
        assert datum("(a .b)") == datum("(a .b)")  # ".b" is a symbol


class TestVectors:
    def test_vector(self):
        d = datum("#(1 2 3)")
        assert isinstance(d, SchemeVector)
        assert list(d) == [1, 2, 3]

    def test_nested_vector(self):
        assert write_datum(datum("#(1 #(2) ())")) == "#(1 #(2) ())"

    def test_dotted_vector_rejected(self):
        with pytest.raises(ReaderError):
            read_one("#(1 . 2)")


class TestQuotes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("'x", "'x"),
            ("`x", "`x"),
            (",x", ",x"),
            (",@x", ",@x"),
            ("#'x", "#'x"),
            ("#`x", "#`x"),
            ("#,x", "#,x"),
            ("#,@x", "#,@x"),
            ("'(1 2)", "'(1 2)"),
            ("''x", "''x"),
        ],
    )
    def test_sugar(self, text, expected):
        assert write_datum(datum(text)) == expected

    def test_sugar_expands_to_pair(self):
        d = datum("'x")
        assert isinstance(d, Pair)
        assert d.car is Symbol("quote")


class TestComments:
    def test_line_comment(self):
        assert datum("; hi\n42") == 42

    def test_block_comment(self):
        assert datum("#| anything |# 42") == 42

    def test_nested_block_comment(self):
        assert datum("#| a #| b |# c |# 42") == 42

    def test_unterminated_block_comment(self):
        with pytest.raises(ReaderError):
            read_one("#| oops")

    def test_datum_comment(self):
        assert write_datum(datum("(1 #;(2 3) 4)")) == "(1 4)"

    def test_datum_comment_at_eof(self):
        with pytest.raises(ReaderError):
            read_string("#;")


class TestSourceLocations:
    def test_toplevel_location(self):
        stx = read_one("(foo bar)", filename="t.ss")
        assert stx.srcloc.filename == "t.ss"
        assert stx.srcloc.start == 0
        assert stx.srcloc.end == len("(foo bar)")
        assert stx.srcloc.line == 1

    def test_inner_locations_distinct(self):
        stx = read_one("(foo bar baz)")
        parts = []
        node = stx.datum
        while node is not NIL:
            parts.append(node.car)
            node = node.cdr
        locs = [p.srcloc for p in parts]
        assert len({(l.start, l.end) for l in locs}) == 3

    def test_multiline_line_numbers(self):
        forms = read_string("a\nb\n  c\n")
        assert [f.srcloc.line for f in forms] == [1, 2, 3]
        assert forms[2].srcloc.column == 2

    def test_every_node_is_syntax(self):
        stx = read_one("((a b) #(c) 1)")
        assert isinstance(stx, Syntax)
        assert isinstance(stx.datum.car, Syntax)
        assert isinstance(stx.datum.car.datum.car, Syntax)

    def test_repeated_occurrences_get_distinct_points(self):
        """Paper §3.1: flag and email appear multiple times, but each
        occurrence is associated with a different profile point."""
        stx = read_one("(if x (flag email) (flag email))")
        items = []

        def walk(s):
            if isinstance(s.datum, Pair):
                node = s.datum
                while node is not NIL:
                    walk(node.car)
                    node = node.cdr
            elif s.datum is Symbol("flag"):
                items.append(s.profile_point)

        walk(stx)
        assert len(items) == 2
        assert items[0] != items[1]


class TestMultipleForms:
    def test_read_string_all(self):
        forms = read_string("1 2 3")
        assert [syntax_to_datum(f) for f in forms] == [1, 2, 3]

    def test_read_one_rejects_trailing(self):
        with pytest.raises(ReaderError):
            read_one("1 2")

    def test_read_empty(self):
        assert read_string("") == []
        assert read_string("  ; just a comment\n") == []

    def test_read_eof_error(self):
        with pytest.raises(ReaderError):
            read_one("   ")

    def test_read_file(self, tmp_path):
        path = tmp_path / "p.ss"
        path.write_text("(+ 1 2) (- 3 4)")
        forms = read_file(str(path))
        assert len(forms) == 2
        assert forms[0].srcloc.filename == str(path)


# -- property: write/read round trip ------------------------------------------------

_atom = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.booleans(),
    st.sampled_from([Symbol(s) for s in ("a", "foo", "set!", "x1", "-", "...")]),
    st.text(alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=10),
    st.sampled_from([Char("a"), Char(" "), Char("\t"), Char("(")]),
    st.fractions(min_value=-100, max_value=100).filter(lambda f: f.denominator != 1),
)


def _to_scheme(value):
    if isinstance(value, list):
        from repro.scheme.datum import scheme_list

        return scheme_list(*[_to_scheme(v) for v in value])
    return value


_tree = st.recursive(_atom, lambda children: st.lists(children, max_size=4), max_leaves=20)


@given(_tree)
def test_write_read_round_trip(value):
    d = _to_scheme(value)
    text = write_datum(d)
    assert syntax_to_datum(read_one(text)) == d
