"""The compiled (Scheme → Python) backend: observational equality.

Every test here runs the same program under both backends and asserts the
observables agree: values, printed output, error messages, profile
counters (all three modes), and step-budget charges. The compiled backend
is only allowed to be *faster*.
"""

import pytest

from repro.core.errors import (
    EvalError,
    SchemeRecursionError,
    StepBudgetExceeded,
)
from repro.core.policy import StepBudget
from repro.scheme.compile_py import generate_source
from repro.scheme.datum import write_datum
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem

BACKENDS = ("interp", "compile")


def _run(backend: str, source: str, **kwargs):
    system = SchemeSystem(backend=backend)
    program = system.compile(source, "<test>")
    return system.run(program, **kwargs)


def _observe(backend: str, source: str, **kwargs):
    """(kind, value-as-written, output) under one backend; errors captured."""
    try:
        result = _run(backend, source, **kwargs)
    except Exception as exc:  # noqa: BLE001 — the exception IS the observation
        return ("error", type(exc).__name__, str(exc))
    return ("ok", write_datum(result.value), result.output)


PARITY_PROGRAMS = [
    # closures, higher-order functions, currying
    """(define (adder k) (lambda (x) (+ x k)))
       (define add5 (adder 5))
       (display (map add5 '(1 2 3))) (newline)
       ((adder 1) 41)""",
    # self-tail recursion (the while-loop conversion) incl. accumulator swap
    """(define (loop i acc) (if (= i 0) acc (loop (- i 1) (+ acc i))))
       (loop 10000 0)""",
    """(define (swap a b n) (if (= n 0) (list a b) (swap b a (- n 1))))
       (swap 'x 'y 7)""",
    # rest arguments, incl. in a self-tail call
    """(define (f a . rest) (cons a rest)) (f 1 2 3)""",
    """(define (g n . acc) (if (= n 0) acc (apply g (- n 1) n acc)))
       (g 4)""",
    # set! on locals captured by closures (cell conversion)
    """(define (make-counter)
         (let ((n 0)) (lambda () (set! n (+ n 1)) n)))
       (define c (make-counter))
       (c) (c) (list (c) ((make-counter)))""",
    # set! on top-level bindings, incl. a rebound primitive
    """(define (f) (+ 2 3)) (set! + -) (f)""",
    # closures created inside a tail-recursive loop capture per-iteration
    # values (the loop must NOT be while-converted here)
    """(define (collect n acc)
         (if (= n 0) acc (collect (- n 1) (cons (lambda () n) acc))))
       (map (lambda (f) (f)) (collect 3 '()))""",
    # shadowing a primitive by definition disables the inline fast path
    """(define old+ +) (define (+ a b) (* a b)) (list (+ 3 4) (old+ 3 4))""",
    # quote identity: the same quote evaluates to the same object
    """(define (f) '(a b)) (list (eq? (f) (f)) (eq? '(a b) '(a b)))""",
    # mutable constants: vectors, improper lists, chars, strings
    """(let ((v (vector 1 2 3)) (p '(a b (c . d))))
         (vector-set! v 0 'z)
         (display (list v p #\\x "s")) (newline)
         (quotient 17 5))""",
    # begin, nested let, non-int arithmetic through the guarded fast path
    """(begin (define x 1.5) (+ x 1) (* 2 (+ x x)))""",
    # mutual tail recursion stays constant-stack under both backends
    """(define (even? n) (if (= n 0) #t (odd? (- n 1))))
       (define (odd? n) (if (= n 0) #f (even? (- n 1))))
       (even? 100001)""",
    # direct call of an earlier sibling + forward reference through GB
    """(define (before x) (* x 10))
       (define (uses) (before (later)))
       (define (later) 4)
       (uses)""",
    # anonymous lambda applied directly (beta-inline), incl. tail position
    """((lambda (a b) (if (< a b) 'lt 'ge)) 1 2)""",
    # varargs primitives and comparison chains
    """(list (+ 1 2 3 4) (< 1 2 3) (max 3 1 2) (= 2 2 2))""",
    # the empty-body / empty program edges
    """(define unused 'x)""",
]


@pytest.mark.parametrize("idx", range(len(PARITY_PROGRAMS)))
def test_value_and_output_parity(idx):
    source = PARITY_PROGRAMS[idx]
    observations = {b: _observe(b, source) for b in BACKENDS}
    assert observations["interp"] == observations["compile"]
    assert observations["interp"][0] == "ok"


ERROR_PROGRAMS = [
    "(undefined-var)",
    "(+ 1 undefined-var)",
    "(define (f x) x) (f 1 2)",
    "((lambda (x) x))",
    "(define (g) (h)) (g)",
    "(car 5)",
    "(+ 'a 1)",
    "(set! nowhere 1)",
    "(define (f a . r) a) (f)",
    "(1 2 3)",
]


@pytest.mark.parametrize("idx", range(len(ERROR_PROGRAMS)))
def test_error_message_parity(idx):
    source = ERROR_PROGRAMS[idx]
    observations = {b: _observe(b, source) for b in BACKENDS}
    assert observations["interp"] == observations["compile"]
    assert observations["interp"][0] == "error"


COUNTER_PROGRAM = """
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(define (loop i) (if (= i 0) 'done (begin (fib 8) (loop (- i 1)))))
(loop 20)
"""


@pytest.mark.parametrize("mode", list(ProfileMode))
def test_profile_counter_parity(mode):
    snapshots = {}
    for backend in BACKENDS:
        result = _run(backend, COUNTER_PROGRAM, instrument=mode)
        assert result.counters is not None
        snapshots[backend] = {
            str(point): count
            for point, count in result.counters.snapshot().items()
        }
    assert snapshots["interp"] == snapshots["compile"]
    assert sum(snapshots["interp"].values()) > 0


def test_budget_charge_parity():
    source = "(define (loop i) (if (= i 0) 'done (loop (- i 1)))) (loop 500)"
    used = {}
    for backend in BACKENDS:
        budget = StepBudget(1_000_000)
        _run(backend, source, budget=budget)
        used[backend] = budget.initial - budget.remaining
    assert used["interp"] == used["compile"] > 0


def test_budget_exhaustion_parity():
    source = "(define (loop i) (if (= i 0) 'done (loop (- i 1)))) (loop 99999)"
    for backend in BACKENDS:
        with pytest.raises(StepBudgetExceeded):
            _run(backend, source, budget=StepBudget(1000))


def test_budget_and_instrument_compose():
    budgets = {}
    snapshots = {}
    for backend in BACKENDS:
        budget = StepBudget(1_000_000)
        result = _run(
            backend, COUNTER_PROGRAM, instrument=ProfileMode.EXPR, budget=budget
        )
        budgets[backend] = budget.remaining
        snapshots[backend] = {
            str(p): c for p, c in result.counters.snapshot().items()
        }
    assert budgets["interp"] == budgets["compile"]
    assert snapshots["interp"] == snapshots["compile"]


def test_deep_recursion_raises_scheme_error_on_both_backends():
    # Satellite regression: deep non-tail recursion must surface as a
    # SchemeError-family exception (with a source location), never as a
    # raw Python RecursionError escaping the substrate.
    source = """
    (define (depth n) (if (= n 0) 0 (+ 1 (depth (- n 1)))))
    (depth 1000000)
    """
    for backend in BACKENDS:
        with pytest.raises(SchemeRecursionError) as info:
            _run(backend, source)
        assert isinstance(info.value, EvalError), "part of the EvalError family"
        assert "recursion" in str(info.value)
        assert "(at <test>:" in str(info.value), "carries the call site"


def test_generated_source_is_deterministic():
    source = PARITY_PROGRAMS[0]
    texts = []
    for _ in range(2):
        system = SchemeSystem()
        program = system.compile(source, "<det>")
        text, sites = generate_source(program, instrumented=True, budgeted=True)
        texts.append((text, len(sites)))
    assert texts[0] == texts[1]


def test_unsupported_program_falls_back_to_interpreter():
    from repro.obs.metrics import get_global_metrics

    # A syntax template surviving to run time is not translatable.
    source = "(define stx #'(a b)) (pair? 1)"
    metrics = get_global_metrics()
    before = metrics.counter("backend_fallbacks_total")
    observations = {b: _observe(b, source) for b in BACKENDS}
    assert observations["interp"] == observations["compile"]
    assert observations["interp"][0] == "ok"
    assert metrics.counter("backend_fallbacks_total") == before + 1


def test_compiled_artifacts_are_memoized_per_program():
    system = SchemeSystem(backend="compile")
    program = system.compile("(define (f x) (+ x 1)) (f 41)", "<memo>")
    system.run(program)
    artifact = program.artifacts["plain"]
    assert artifact.runnable
    assert "_pgmp_main" in artifact.python_source
    system.run(program)
    assert program.artifacts["plain"] is artifact, "compiled exactly once"


def test_case_study_library_parity():
    from repro.casestudies import CASE_LIBRARY, EXCLUSIVE_COND_LIBRARY

    program = """
    (define (classify x)
      (case x
        ((1 2 3) 'small)
        ((10 20 30) 'medium)
        (else 'other)))
    (define (run xs acc)
      (if (null? xs) acc (run (cdr xs) (cons (classify (car xs)) acc))))
    (run '(1 10 99 2 20 3) '())
    """
    outcomes = {}
    for backend in BACKENDS:
        system = SchemeSystem(backend=backend, policy="warn")
        system.load_library(EXCLUSIVE_COND_LIBRARY, "exclusive-cond.ss")
        system.load_library(CASE_LIBRARY, "case.ss")
        result = system.run_source(program, "<case>")
        profiled = system.profile_run(program, "<case>")
        outcomes[backend] = (
            write_datum(result.value),
            {str(p): c for p, c in profiled.counters.snapshot().items()},
        )
    assert outcomes["interp"] == outcomes["compile"]
