"""Direct unit tests for the sets-of-scopes binding table."""

import pytest

from repro.core.errors import ExpandError
from repro.core.srcloc import SourceLocation
from repro.scheme.datum import Symbol
from repro.scheme.hygiene import (
    BindingTable,
    CoreBinding,
    MacroBinding,
    PatternBinding,
    ScopeCounter,
    VariableBinding,
)
from repro.scheme.syntax import Syntax

LOC = SourceLocation("h.ss", 0, 1)


def ident(name: str, *scopes: int) -> Syntax:
    return Syntax(Symbol(name), LOC, frozenset(scopes))


class TestScopeCounter:
    def test_fresh_scopes_are_distinct(self):
        counter = ScopeCounter()
        scopes = {counter.fresh() for _ in range(100)}
        assert len(scopes) == 100


class TestResolution:
    def test_unbound(self):
        assert BindingTable().resolve(ident("x", 1)) is None

    def test_exact_match(self):
        table = BindingTable()
        binding = VariableBinding(Symbol("x1"))
        table.add(Symbol("x"), frozenset({1}), binding)
        assert table.resolve(ident("x", 1)) is binding

    def test_subset_resolution(self):
        """A reference with MORE scopes than the binding still resolves."""
        table = BindingTable()
        binding = VariableBinding(Symbol("x1"))
        table.add(Symbol("x"), frozenset({1}), binding)
        assert table.resolve(ident("x", 1, 2, 3)) is binding

    def test_superset_does_not_resolve(self):
        """A reference with FEWER scopes than the binding must not see it."""
        table = BindingTable()
        table.add(Symbol("x"), frozenset({1, 2}), VariableBinding(Symbol("x1")))
        assert table.resolve(ident("x", 1)) is None

    def test_largest_subset_wins(self):
        """Shadowing: the binding with the largest applicable scope set."""
        table = BindingTable()
        outer = VariableBinding(Symbol("outer"))
        inner = VariableBinding(Symbol("inner"))
        table.add(Symbol("x"), frozenset({1}), outer)
        table.add(Symbol("x"), frozenset({1, 2}), inner)
        assert table.resolve(ident("x", 1, 2)) is inner
        assert table.resolve(ident("x", 1)) is outer

    def test_different_names_independent(self):
        table = BindingTable()
        table.add(Symbol("x"), frozenset({1}), VariableBinding(Symbol("x1")))
        assert table.resolve(ident("y", 1)) is None

    def test_redefinition_at_same_scopes_replaces(self):
        table = BindingTable()
        first = VariableBinding(Symbol("v1"))
        second = VariableBinding(Symbol("v2"))
        table.add(Symbol("x"), frozenset({1}), first)
        table.add(Symbol("x"), frozenset({1}), second)
        assert table.resolve(ident("x", 1)) is second

    def test_ambiguous_incomparable_maxima(self):
        table = BindingTable()
        table.add(Symbol("x"), frozenset({1, 2}), VariableBinding(Symbol("a")))
        table.add(Symbol("x"), frozenset({1, 3}), VariableBinding(Symbol("b")))
        with pytest.raises(ExpandError, match="ambiguous"):
            table.resolve(ident("x", 1, 2, 3))

    def test_empty_scope_binding_is_global_fallback(self):
        table = BindingTable()
        binding = CoreBinding("if")
        table.add(Symbol("if"), frozenset(), binding)
        assert table.resolve(ident("if")) is binding
        assert table.resolve(ident("if", 1, 2)) is binding


class TestBindVariable:
    def test_bind_variable_gensyms(self):
        table = BindingTable()
        u1 = table.bind_variable(ident("x", 1))
        u2 = table.bind_variable(ident("x", 1, 2))
        assert u1 is not u2
        assert u1.name.startswith("x")

    def test_bound_names(self):
        table = BindingTable()
        table.bind_variable(ident("x", 1))
        table.bind_variable(ident("y", 1))
        assert set(table.bound_names()) == {Symbol("x"), Symbol("y")}


class TestBindingKinds:
    def test_macro_binding_identity_semantics(self):
        a = MacroBinding(lambda s: s, name="m")
        b = MacroBinding(lambda s: s, name="m")
        assert a == a
        assert a != b

    def test_pattern_binding_fields(self):
        binding = PatternBinding(Symbol("pv1"), 2)
        assert binding.unique is Symbol("pv1")
        assert binding.depth == 2
