"""Unit tests for syntax-case pattern matching."""

import pytest

from repro.core.errors import PatternError
from repro.scheme.datum import Symbol
from repro.scheme.patterns import match_pattern, pattern_variables
from repro.scheme.reader import read_one
from repro.scheme.syntax import Syntax, syntax_to_datum


def match(pattern_text, input_text, literals=()):
    return match_pattern(read_one(pattern_text), read_one(input_text), frozenset(literals))


def shown(value):
    """Render a match value (syntax or nested lists) as comparable data."""
    if isinstance(value, list):
        return [shown(v) for v in value]
    from repro.scheme.datum import write_datum

    return write_datum(syntax_to_datum(value))


class TestAtomPatterns:
    def test_variable_matches_anything(self):
        assert shown(match("x", "42")["x"]) == "42"
        assert shown(match("x", "(a b)")["x"]) == "(a b)"

    def test_wildcard_binds_nothing(self):
        assert match("_", "(1 2 3)") == {}

    def test_number_literal(self):
        assert match("42", "42") == {}
        assert match("42", "43") is None

    def test_string_literal(self):
        assert match('"hi"', '"hi"') == {}
        assert match('"hi"', '"ho"') is None

    def test_boolean_literal(self):
        assert match("#t", "#t") == {}
        assert match("#t", "#f") is None
        assert match("#t", "1") is None  # booleans are not numbers

    def test_char_literal(self):
        assert match("#\\a", "#\\a") == {}
        assert match("#\\a", "#\\b") is None

    def test_literal_identifier(self):
        assert match("else", "else", literals={"else"}) == {}
        assert match("else", "other", literals={"else"}) is None
        # Non-literal identifier with the same spelling is a variable.
        assert shown(match("else", "other")["else"]) == "other"


class TestListPatterns:
    def test_fixed_arity(self):
        bindings = match("(a b c)", "(1 2 3)")
        assert shown(bindings["a"]) == "1"
        assert shown(bindings["c"]) == "3"

    def test_arity_mismatch(self):
        assert match("(a b)", "(1 2 3)") is None
        assert match("(a b c)", "(1 2)") is None

    def test_nested(self):
        bindings = match("(a (b c) d)", "(1 (2 3) 4)")
        assert shown(bindings["b"]) == "2"

    def test_nested_failure(self):
        assert match("(a (b c))", "(1 2)") is None

    def test_empty(self):
        assert match("()", "()") == {}
        assert match("()", "(1)") is None

    def test_dotted_pattern(self):
        bindings = match("(a . rest)", "(1 2 3)")
        assert shown(bindings["a"]) == "1"
        assert shown(bindings["rest"]) == "(2 3)"

    def test_dotted_pattern_matches_improper(self):
        bindings = match("(a . b)", "(1 . 2)")
        assert shown(bindings["b"]) == "2"

    def test_dotted_pattern_empty_rest(self):
        assert shown(match("(a . rest)", "(1)")["rest"]) == "()"

    def test_proper_pattern_rejects_improper_input(self):
        assert match("(a b)", "(1 . 2)") is None


class TestEllipsis:
    def test_simple(self):
        bindings = match("(x ...)", "(1 2 3)")
        assert shown(bindings["x"]) == ["1", "2", "3"]

    def test_empty_repetition(self):
        assert shown(match("(x ...)", "()")["x"]) == []

    def test_head_then_ellipsis(self):
        bindings = match("(head x ...)", "(a b c)")
        assert shown(bindings["head"]) == "a"
        assert shown(bindings["x"]) == ["b", "c"]

    def test_trailing_after_ellipsis(self):
        bindings = match("(x ... y z)", "(1 2 3 4 5)")
        assert shown(bindings["x"]) == ["1", "2", "3"]
        assert shown(bindings["y"]) == "4"
        assert shown(bindings["z"]) == "5"

    def test_trailing_insufficient(self):
        assert match("(x ... y z)", "(1)") is None

    def test_compound_subpattern(self):
        bindings = match("((k v) ...)", "((a 1) (b 2))")
        assert shown(bindings["k"]) == ["a", "b"]
        assert shown(bindings["v"]) == ["1", "2"]

    def test_compound_subpattern_failure(self):
        assert match("((k v) ...)", "((a 1) (b))") is None

    def test_nested_ellipsis(self):
        bindings = match("((x ...) ...)", "((1 2) (3) ())")
        assert shown(bindings["x"]) == [["1", "2"], ["3"], []]

    def test_ellipsis_with_dotted_tail(self):
        bindings = match("(x ... . rest)", "(1 2 . 3)")
        assert shown(bindings["x"]) == ["1", "2"]
        assert shown(bindings["rest"]) == "3"

    def test_case_clause_shape(self):
        """The pattern from the paper's Figure 6."""
        bindings = match("((k ...) body)", "((1 2 3) (do-it))")
        assert shown(bindings["k"]) == ["1", "2", "3"]
        assert shown(bindings["body"]) == "(do-it)"

    def test_syntax_case_form_shape(self):
        """The pattern from the paper's Figure 7."""
        bindings = match("(_ clause ...)", "(exclusive-cond (a 1) (b 2))")
        assert shown(bindings["clause"]) == ["(a 1)", "(b 2)"]

    def test_leading_ellipsis_rejected(self):
        with pytest.raises(PatternError):
            match("(... x)", "(1 2)")

    def test_double_ellipsis_at_same_level_rejected(self):
        with pytest.raises(PatternError):
            match("(x ... y ...)", "(1 2)")


class TestVectorPatterns:
    def test_vector(self):
        bindings = match("#(a b)", "#(1 2)")
        assert shown(bindings["a"]) == "1"

    def test_vector_ellipsis(self):
        assert shown(match("#(x ...)", "#(1 2 3)")["x"]) == ["1", "2", "3"]

    def test_vector_vs_list(self):
        assert match("#(a)", "(1)") is None
        assert match("(a)", "#(1)") is None


class TestPatternVariables:
    def test_depths(self):
        depths = pattern_variables(read_one("(a (b ...) ((c ...) ...))"), frozenset())
        assert depths == {"a": 0, "b": 1, "c": 2}

    def test_literals_and_wildcards_excluded(self):
        depths = pattern_variables(read_one("(_ else x)"), frozenset({"else"}))
        assert depths == {"x": 0}

    def test_duplicate_rejected(self):
        with pytest.raises(PatternError):
            pattern_variables(read_one("(x x)"), frozenset())

    def test_dotted_tail_variable(self):
        depths = pattern_variables(read_one("(a . rest)"), frozenset())
        assert depths == {"a": 0, "rest": 0}

    def test_vector_pattern_variables(self):
        assert pattern_variables(read_one("#(a b ...)"), frozenset()) == {
            "a": 0,
            "b": 1,
        }


class TestMatchedValuesAreSyntax:
    def test_bindings_preserve_syntax_identity(self):
        stx = read_one("(f (g 1))", filename="prog.ss")
        bindings = match_pattern(read_one("(f arg)"), stx)
        value = bindings["arg"]
        assert isinstance(value, Syntax)
        # The matched syntax is the *original* user syntax, with its srcloc:
        # that's what makes profile-query on matched branches meaningful.
        assert value.srcloc.filename == "prog.ss"
        inner = stx.datum.cdr.car
        assert value.srcloc == inner.srcloc
