"""Unit tests for syntax template instantiation."""

import pytest

from repro.core.errors import TemplateError
from repro.scheme.datum import write_datum
from repro.scheme.patterns import match_pattern
from repro.scheme.reader import read_one
from repro.scheme.syntax import syntax_to_datum
from repro.scheme.template import Splice, instantiate_template


def instantiate(template_text, env):
    out = instantiate_template(read_one(template_text), env)
    return write_datum(syntax_to_datum(out))


def matched(pattern_text, input_text):
    """Bindings at (depth, value) form, as the expander supplies them."""
    from repro.scheme.patterns import pattern_variables

    pattern = read_one(pattern_text)
    depths = pattern_variables(pattern, frozenset())
    bindings = match_pattern(pattern, read_one(input_text))
    assert bindings is not None
    return {name: (depths[name], bindings[name]) for name in bindings}


class TestBasics:
    def test_constant_template(self):
        assert instantiate("42", {}) == "42"
        assert instantiate("(a b)", {}) == "(a b)"

    def test_variable_substitution(self):
        env = matched("(f x)", "(call 99)")
        assert instantiate("(x)", env) == "(99)"

    def test_unbound_identifiers_kept_literal(self):
        env = matched("x", "5")
        assert instantiate("(if x x)", env) == "(if 5 5)"

    def test_dotted_template(self):
        env = matched("(a b)", "(1 2)")
        assert instantiate("(a . b)", env) == "(1 . 2)"

    def test_vector_template(self):
        env = matched("(a b)", "(1 2)")
        assert instantiate("#(a b c)", env) == "#(1 2 c)"

    def test_depth_misuse_rejected(self):
        env = matched("(x ...)", "(1 2)")
        with pytest.raises(TemplateError):
            instantiate("x", env)


class TestEllipsis:
    def test_simple_repetition(self):
        env = matched("(x ...)", "(1 2 3)")
        assert instantiate("(x ...)", env) == "(1 2 3)"

    def test_rewrap(self):
        env = matched("(x ...)", "(1 2 3)")
        assert instantiate("((go x) ...)", env) == "((go 1) (go 2) (go 3))"

    def test_multiple_drivers(self):
        env = matched("((k v) ...)", "((a 1) (b 2))")
        assert instantiate("((v k) ...)", env) == "((1 a) (2 b))"

    def test_mismatched_lengths_rejected(self):
        env = {**matched("(x ...)", "(1 2)"), **matched("(y ...)", "(7 8 9)")}
        with pytest.raises(TemplateError):
            instantiate("((x y) ...)", env)

    def test_constant_plus_driver(self):
        env = {**matched("t", "k"), **matched("(x ...)", "(1 2)")}
        assert instantiate("((t x) ...)", env) == "((k 1) (k 2))"

    def test_nested_ellipsis(self):
        env = matched("((x ...) ...)", "((1 2) (3))")
        assert instantiate("((x ...) ...)", env) == "((1 2) (3))"

    def test_double_ellipsis_flattens(self):
        env = matched("((x ...) ...)", "((1 2) (3))")
        assert instantiate("(x ... ...)", env) == "(1 2 3)"

    def test_tail_after_ellipsis(self):
        env = matched("(x ...)", "(1 2)")
        assert instantiate("(x ... end)", env) == "(1 2 end)"

    def test_no_driver_rejected(self):
        with pytest.raises(TemplateError):
            instantiate("(x ...)", {"x": (0, read_one("1"))})

    def test_empty_repetition(self):
        env = matched("(x ...)", "()")
        assert instantiate("(wrap x ...)", env) == "(wrap)"

    def test_ellipsis_escape(self):
        env = {}
        assert instantiate("(... ...)", env) == "..."

    def test_ellipsis_escape_compound(self):
        assert instantiate("(... (x ...))", {}) == "(x ...)"


class TestSplices:
    def test_splice_into_list(self):
        items = [read_one("1"), read_one("2")]
        env = {"hole": (0, Splice(items))}
        assert instantiate("(begin hole end)", env) == "(begin 1 2 end)"

    def test_empty_splice(self):
        env = {"hole": (0, Splice([]))}
        assert instantiate("(begin hole end)", env) == "(begin end)"

    def test_splice_at_top_rejected(self):
        env = {"hole": (0, Splice([read_one("1")]))}
        with pytest.raises(TemplateError):
            instantiate_template(read_one("hole"), env)

    def test_splice_in_dotted_tail_rejected(self):
        env = {"hole": (0, Splice([read_one("1")]))}
        with pytest.raises(TemplateError):
            instantiate_template(read_one("(a . hole)"), env)


class TestSyntaxPreservation:
    def test_substituted_values_keep_their_srcloc(self):
        user = read_one("(f important-expr)", filename="user.ss")
        bindings = match_pattern(read_one("(f e)"), user)
        env = {"e": (0, bindings["e"])}
        out = instantiate_template(read_one("(wrap e)", filename="macro.ss"), env)
        wrapped = out.datum.cdr.car
        assert wrapped.srcloc.filename == "user.ss"

    def test_template_literals_keep_template_srcloc(self):
        out = instantiate_template(read_one("(wrap x)", filename="macro.ss"), {})
        head = out.datum.car
        assert head.srcloc.filename == "macro.ss"
