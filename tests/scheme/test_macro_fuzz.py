"""Property fuzzing of the macro layer.

Generates random datum shapes and checks algebraic identities of
``syntax-rules`` rewriting: pass-through templates are the identity,
swapping twice restores the input, and nested-ellipsis extraction matches
a runtime computation of the same thing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheme.datum import write_datum
from repro.scheme.pipeline import SchemeSystem
from repro.scheme.syntax import strip_all


def run(source: str) -> str:
    return write_datum(strip_all(SchemeSystem().run_source(source).value))


_atoms = st.sampled_from(["1", "42", "#t", "foo", '"s"', "#\\c", "2/3"])
_forms = st.recursive(
    _atoms,
    lambda sub: st.lists(sub, min_size=0, max_size=4).map(
        lambda items: "(" + " ".join(items) + ")"
    ),
    max_leaves=12,
)


@given(st.lists(_forms, min_size=0, max_size=5))
@settings(max_examples=40, deadline=None)
def test_ellipsis_passthrough_is_identity(items):
    """(m x ...) => '(x ...) reproduces any argument list verbatim."""
    args = " ".join(items)
    source = f"""
    (define-syntax m (syntax-rules () [(_ x ...) '(x ...)]))
    (m {args})
    """
    assert run(source) == run(f"'({args})")


@given(_forms, _forms)
@settings(max_examples=30, deadline=None)
def test_swap_composed_with_swap_is_identity(a, b):
    source = f"""
    (define-syntax swap2 (syntax-rules () [(_ (x y)) '(y x)]))
    (swap2 ({a} {b}))
    """
    assert run(source) == run(f"'({b} {a})")
    double = f"""
    (define-syntax swap2 (syntax-rules () [(_ (x y)) (swap2* y x)]))
    (define-syntax swap2* (syntax-rules () [(_ x y) '(y x)]))
    (swap2 ({a} {b}))
    """
    assert run(double) == run(f"'({a} {b})")


@given(st.lists(st.lists(_atoms, min_size=1, max_size=3), min_size=1, max_size=4))
@settings(max_examples=30, deadline=None)
def test_nested_ellipsis_heads(rows):
    """((x y ...) ...) extracting x ... equals mapping car at runtime."""
    table = " ".join("(" + " ".join(row) + ")" for row in rows)
    source = f"""
    (define-syntax heads (syntax-rules () [(_ (x y ...) ...) '(x ...)]))
    (heads {table})
    """
    assert run(source) == run(f"(map car '({table}))")


@given(st.lists(st.lists(_atoms, min_size=1, max_size=3), min_size=1, max_size=4))
@settings(max_examples=20, deadline=None)
def test_double_ellipsis_flatten_matches_append(rows):
    table = " ".join("(" + " ".join(row) + ")" for row in rows)
    source = f"""
    (define-syntax flat (syntax-rules () [(_ (x ...) ...) '(x ... ...)]))
    (flat {table})
    """
    assert run(source) == run(f"(apply append '({table}))")


@given(st.lists(_forms, min_size=1, max_size=5))
@settings(max_examples=25, deadline=None)
def test_reverse_macro_matches_runtime_reverse(items):
    """A recursive accumulator macro agrees with the reverse primitive."""
    args = " ".join(items)
    source = f"""
    (define-syntax rev
      (syntax-rules ()
        [(_ () acc) 'acc]
        [(_ (x y ...) acc) (rev (y ...) (x . acc))]))
    (rev ({args}) ())
    """
    assert run(source) == run(f"(reverse '({args}))")
