"""Tests for core-form unparsing (the figure-comparison machinery)."""

import pytest

from repro.scheme.core_forms import (
    App,
    Begin,
    Const,
    Define,
    If,
    Lambda,
    Program,
    Ref,
    SetBang,
    unparse,
    unparse_string,
)
from repro.scheme.datum import NIL, Symbol, gensym, scheme_list, write_datum
from repro.scheme.pipeline import SchemeSystem


def expanded(source: str) -> str:
    return unparse_string(SchemeSystem().compile(source))


class TestRoundTripShapes:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("42", "42"),
            ("'sym", "'sym"),
            ("'(1 2)", "'(1 2)"),
            ("(+ 1 2)", "(+ 1 2)"),
            ("(if 1 2 3)", "(if 1 2 3)"),
            ("(define x 5)", "(define x 5)"),
            ("(define (f x) x)", "(define f (lambda (x) x))"),
            ("(lambda (a b) (+ a b))", "(lambda (a b) (+ a b))"),
            ("(lambda args args)", "(lambda args args)"),
            ("(lambda (a . rest) rest)", "(lambda (a . rest) rest)"),
            # top-level begin splices; expression-position begin survives
            ("(if #t (begin 1 2) 3)", "(if #t (begin 1 2) 3)"),
            ("(define x 1) (set! x 2)", "(define x 1)\n(set! x 2)"),
            ('(display "hi")', '(display "hi")'),
        ],
    )
    def test_cases(self, source, expected):
        assert expanded(source) == expected

    def test_let_unparse_shows_lambda_application(self):
        assert expanded("(let ([x 1]) x)") == "((lambda (x) x) 1)"

    def test_quasiquote_unparse(self):
        out = expanded("`(a ,(+ 1 2))")
        assert out == "(cons 'a (cons (+ 1 2) '()))"


class TestPrettyNames:
    def test_gensym_suffixes_stripped_by_default(self):
        out = expanded("(let ([tmp 1]) tmp)")
        assert "%" not in out
        assert "tmp" in out

    def test_raw_mode_keeps_unique_names(self):
        program = SchemeSystem().compile("(let ([tmp 1]) tmp)")
        raw = unparse_string(program, pretty=False)
        assert "%" in raw

    def test_distinct_shadowed_names_visible_in_raw_mode(self):
        program = SchemeSystem().compile("(let ([x 1]) (let ([x 2]) x))")
        raw = unparse_string(program, pretty=False)
        names = {tok for tok in raw.replace("(", " ").replace(")", " ").split() if tok.startswith("x%")}
        assert len(names) == 2


class TestDirectConstruction:
    def test_const_quote_wrapping(self):
        assert write_datum(unparse(Const(None, Symbol("a")))) == "'a"
        assert write_datum(unparse(Const(None, scheme_list(1)))) == "'(1)"
        assert write_datum(unparse(Const(None, 5))) == "5"
        assert write_datum(unparse(Const(None, NIL))) == "'()"

    def test_program_unparse(self):
        program = Program([Const(None, 1), Const(None, 2)])
        assert unparse_string(program) == "1\n2"

    def test_if_nodes(self):
        node = If(None, Const(None, True), Const(None, 1), Const(None, 2))
        assert unparse_string(node) == "(if #t 1 2)"

    def test_unknown_node_rejected(self):
        with pytest.raises(TypeError):
            unparse(object())  # type: ignore[arg-type]

    def test_setbang(self):
        node = SetBang(None, Symbol("x"), Const(None, 1))
        assert unparse_string(node) == "(set! x 1)"
