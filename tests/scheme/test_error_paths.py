"""Error-path coverage: malformed forms are rejected with ExpandError."""

import pytest

from repro.core.errors import ExpandError
from repro.scheme.pipeline import SchemeSystem


@pytest.mark.parametrize(
    "source",
    [
        # define family
        "(define)",
        "(define 42 1)",
        "(define x 1 2)",
        "(define (42) 1)",
        "(define-syntax)",
        "(define-syntax m)",
        "(define-syntax 42 (lambda (s) s))",
        "(define-syntax (m) #'1)",
        # binding forms
        "(lambda)",
        "(lambda (x))",
        "(lambda (1) x)",
        "(let)",
        "(let ([x]) x)",
        "(let ([1 2]) 3)",
        "(let* ([x 1 2]) x)",
        "(letrec ((x)) x)",
        "(let ([x 1]))",
        # conditionals
        "(if)",
        "(if 1)",
        "(if 1 2 3 4)",
        "(when 1)",
        "(unless 1)",
        "(cond ())",
        "(cond [else])",
        "(cond [else 1] [#t 2])",
        # quoting / templates
        "(quote)",
        "(quote 1 2)",
        "(quasiquote)",
        "(unquote 1)",
        "(unquote-splicing 1)",
        "(syntax)",
        "(syntax 1 2)",
        "(quasisyntax)",
        "(unsyntax 1)",
        "(unsyntax-splicing 1)",
        "(syntax-case)",
        "(syntax-case 1)",
        "(syntax-case #'1 () [])",
        "(with-syntax)",
        "(with-syntax ([a]) 1)",
        "(let-syntax ([m]) 1)",
        # misc
        "(set!)",
        "(set! 42 1)",
        "(set! (f) 1)",
        "()",
        "(do ([x 1 2 3 4]) (#t))",
        "(case-lambda [()])",
        "(define-record-type p)",
        "(meta (define x 1)) (+ 1 (meta 2))",
    ],
)
def test_malformed_source_rejected(source):
    with pytest.raises(ExpandError):
        SchemeSystem().run_source(source)


@pytest.mark.parametrize(
    "source,fragment",
    [
        ("(let ([x 1]) if)", "invalid use of core form"),
        ("(define-syntax m (lambda (s) s)) (+ 1 (begin))", None),
    ],
)
def test_core_form_misuse(source, fragment):
    system = SchemeSystem()
    if fragment is None:
        # (begin) in expression position is legal (unspecified value).
        system.run_source("(begin)")
        return
    with pytest.raises(ExpandError, match=fragment):
        system.run_source(source)


def test_error_messages_carry_source_locations():
    try:
        SchemeSystem().run_source("(if)", "myfile.ss")
    except ExpandError as exc:
        assert "myfile.ss" in str(exc)
    else:  # pragma: no cover
        pytest.fail("expected ExpandError")


def test_macro_error_wraps_transformer_failures():
    source = """
    (define-syntax (boom stx) (error 'boom "kapow"))
    (boom)
    """
    with pytest.raises(ExpandError, match="boom"):
        SchemeSystem().run_source(source)


def test_nonterminating_macro_caught():
    source = """
    (define-syntax (loop stx) #'(loop))
    (loop)
    """
    with pytest.raises(ExpandError, match="did not terminate"):
        SchemeSystem().run_source(source)


class TestRuntimeErrorLocations:
    def test_runtime_error_points_at_call_site(self):
        from repro.core.errors import EvalError

        try:
            SchemeSystem().run_source("(define (f x) (car x))\n(f 5)", "err.ss")
        except EvalError as exc:
            assert "err.ss:2" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected EvalError")

    def test_location_attached_only_once(self):
        from repro.core.errors import EvalError

        try:
            SchemeSystem().run_source(
                "(define (g y) (vector-ref y 9))\n(define (f x) (g x))\n(f (vector 1))",
                "deep.ss",
            )
        except EvalError as exc:
            assert str(exc).count("(at ") == 1
            # Proper tail calls keep no frames (as in real Scheme), so the
            # nearest *non-tail* application is reported: the top-level
            # (f ...) call on line 3.
            assert "deep.ss:3" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected EvalError")
