"""Tests for multiple values: values / call-with-values / let-values."""

import pytest

from tests.conftest import run_value


class TestValues:
    def test_single_value_is_transparent(self, scheme):
        assert run_value(scheme, "(values 42)") == "42"
        assert run_value(scheme, "(+ (values 1) 2)") == "3"

    def test_call_with_values(self, scheme):
        assert run_value(
            scheme, "(call-with-values (lambda () (values 1 2 3)) list)"
        ) == "(1 2 3)"

    def test_call_with_values_single(self, scheme):
        assert run_value(scheme, "(call-with-values (lambda () 7) list)") == "(7)"

    def test_call_with_values_zero(self, scheme):
        assert run_value(
            scheme, "(call-with-values (lambda () (values)) (lambda () 'none))"
        ) == "none"

    def test_consumer_arity(self, scheme):
        assert run_value(
            scheme, "(call-with-values (lambda () (values 3 4)) +)"
        ) == "7"


class TestLetValues:
    def test_basic(self, scheme):
        source = """
        (define (div-mod a b) (values (quotient a b) (remainder a b)))
        (let-values ([(q r) (div-mod 17 5)]) (list q r))
        """
        assert run_value(scheme, source) == "(3 2)"

    def test_multiple_bindings(self, scheme):
        source = """
        (let-values ([(a b) (values 1 2)]
                     [(c) (values 3)])
          (+ a b c))
        """
        assert run_value(scheme, source) == "6"

    def test_rest_formals(self, scheme):
        source = "(let-values ([(a . rest) (values 1 2 3)]) (list a rest))"
        assert run_value(scheme, source) == "(1 (2 3))"

    def test_later_bindings_see_earlier_outer_scope(self, scheme):
        # let-values is let-like: producers see the *outer* environment...
        # our nested-call-with-values lowering is actually let*-like for
        # later clauses; verify at least shadowing behaves sanely.
        source = """
        (define x 10)
        (let-values ([(x) (values 1)] [(y) (values 2)]) (list x y))
        """
        assert run_value(scheme, source) == "(1 2)"

    def test_body_sequence(self, scheme):
        source = """
        (define out '())
        (let-values ([(a) (values 1)])
          (set! out (cons 'first out))
          (set! out (cons a out)))
        out
        """
        assert run_value(scheme, source) == "(1 first)"

    def test_malformed(self, scheme):
        from repro.core.errors import ExpandError

        with pytest.raises(ExpandError):
            scheme.run_source("(let-values)")
        with pytest.raises(ExpandError):
            scheme.run_source("(let-values ([(a) 1 2]) a)")
