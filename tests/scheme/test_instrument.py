"""Tests for profiling instrumentation: counter correctness in both modes."""

import pytest

from repro.core.profile_point import ProfilePoint
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem
from repro.scheme.reader import read_string
from repro.scheme.syntax import Syntax
from repro.scheme.datum import NIL, Pair, Symbol


def _find_subexpr(source: str, fragment: str, filename="prog.ss") -> Syntax:
    """The syntax node whose text is exactly ``fragment``."""
    start = source.index(fragment)
    end = start + len(fragment)
    result = []

    def walk(stx):
        if stx.srcloc.start == start and stx.srcloc.end == end:
            result.append(stx)
        datum = stx.datum
        if isinstance(datum, Pair):
            node = datum
            while isinstance(node, Pair):
                if isinstance(node.car, Syntax):
                    walk(node.car)
                node = node.cdr

    for form in read_string(source, filename):
        walk(form)
    assert result, f"fragment {fragment!r} not found as a node"
    return result[0]


def _count(counters, source, fragment):
    node = _find_subexpr(source, fragment)
    return counters.count(ProfilePoint.for_location(node.srcloc))


class TestExprMode:
    def test_branch_counts(self):
        source = "(define (f x) (if (< x 5) 'low 'high))\n(map f (list 1 2 3 9))"
        system = SchemeSystem()
        result = system.run_source(source, "prog.ss", instrument=ProfileMode.EXPR)
        counters = result.counters
        assert _count(counters, source, "'low") == 3
        assert _count(counters, source, "'high") == 1
        assert _count(counters, source, "(< x 5)") == 4
        assert _count(counters, source, "(if (< x 5) 'low 'high)") == 4

    def test_loop_counts(self):
        source = "(define (loop n) (if (= n 0) 'done (loop (- n 1))))\n(loop 10)"
        system = SchemeSystem()
        result = system.run_source(source, "prog.ss", instrument=ProfileMode.EXPR)
        assert _count(result.counters, source, "(- n 1)") == 10
        assert _count(result.counters, source, "'done") == 1

    def test_unexecuted_expression_counts_zero(self):
        source = "(if #t 'yes 'no)"
        system = SchemeSystem()
        result = system.run_source(source, "prog.ss", instrument=ProfileMode.EXPR)
        assert _count(result.counters, source, "'yes") == 1
        assert _count(result.counters, source, "'no") == 0

    def test_no_instrumentation_no_counters(self):
        system = SchemeSystem()
        result = system.run_source("(+ 1 2)")
        assert result.counters is None


class TestCallMode:
    def test_counts_only_applications(self):
        source = "(define (f x) (if (< x 5) 'low 'high))\n(map f (list 1 9))"
        system = SchemeSystem()
        result = system.run_source(source, "prog.ss", instrument=ProfileMode.CALL)
        counters = result.counters
        # The comparison call is counted...
        assert _count(counters, source, "(< x 5)") == 2
        # ...but the quote-constant branches are not (not calls).
        assert _count(counters, source, "'low") == 0
        assert _count(counters, source, "'high") == 0

    def test_call_mode_counts_fewer_points(self):
        source = "(define (f x) (* x x))\n(f 3)"
        system = SchemeSystem()
        expr = system.run_source(source, "p.ss", instrument=ProfileMode.EXPR).counters
        system2 = SchemeSystem()
        call = system2.run_source(source, "p.ss", instrument=ProfileMode.CALL).counters
        assert len(call) < len(expr)


class TestProfileWorkflow:
    def test_profile_run_records_dataset(self):
        system = SchemeSystem()
        assert system.profile_db.dataset_count == 0
        system.profile_run("(+ 1 2)")
        assert system.profile_db.dataset_count == 1
        assert system.profile_db.has_data()

    def test_repeated_profile_runs_merge(self):
        system = SchemeSystem()
        system.profile_run("(if #t 'a 'b)", "p.ss")
        system.profile_run("(if #t 'a 'b)", "p.ss")
        assert system.profile_db.dataset_count == 2

    def test_store_and_load_profile(self, tmp_path):
        system = SchemeSystem()
        system.profile_run("(define (f x) x) (f 1) (f 2)", "p.ss")
        path = tmp_path / "p.json"
        system.store_profile(path)
        fresh = SchemeSystem()
        fresh.load_profile(path)
        assert fresh.profile_db.point_count() == system.profile_db.point_count()

    def test_instrumentation_preserves_semantics(self):
        source = """
        (define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
        (fib 12)
        """
        plain = SchemeSystem().run_source(source)
        instrumented = SchemeSystem().run_source(source, instrument=ProfileMode.EXPR)
        assert plain.value == instrumented.value == 144

    def test_annotated_point_overrides_implicit(self):
        """annotate-expr replaces the implicit location-derived point."""
        source = """
        (define-syntax (count-me stx)
          (syntax-case stx ()
            [(_ e) (annotate-expr #'e (make-profile-point #'e))]))
        (define (f x) (count-me (* x x)))
        (f 2) (f 3)
        """
        system = SchemeSystem()
        result = system.run_source(source, "ann.ss", instrument=ProfileMode.EXPR)
        generated = [
            point
            for point in result.counters.points()
            if point.generated
        ]
        assert generated, "generated profile point was not counted"
        assert result.counters.count(generated[0]) == 2
