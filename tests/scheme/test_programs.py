"""Classic-program regression corpus for the Scheme substrate.

Whole programs exercising closures, recursion, higher-order functions,
mutation, and data structures together — the kind of code the case-study
workloads are made of.
"""

import pytest

from tests.conftest import run_value


PROGRAMS = {
    "tak": (
        """
        (define (tak x y z)
          (if (not (< y x))
              z
              (tak (tak (- x 1) y z)
                   (tak (- y 1) z x)
                   (tak (- z 1) x y))))
        (tak 10 5 0)
        """,
        "5",
    ),
    "ackermann": (
        """
        (define (ack m n)
          (cond [(= m 0) (+ n 1)]
                [(= n 0) (ack (- m 1) 1)]
                [else (ack (- m 1) (ack m (- n 1)))]))
        (ack 2 3)
        """,
        "9",
    ),
    "quicksort": (
        """
        (define (quicksort lst)
          (if (null? lst)
              '()
              (let ([pivot (car lst)] [rest (cdr lst)])
                (append
                  (quicksort (filter (lambda (x) (< x pivot)) rest))
                  (list pivot)
                  (quicksort (filter (lambda (x) (>= x pivot)) rest))))))
        (quicksort '(3 1 4 1 5 9 2 6 5 3 5))
        """,
        "(1 1 2 3 3 4 5 5 5 6 9)",
    ),
    "mergesort": (
        """
        (define (merge a b)
          (cond [(null? a) b]
                [(null? b) a]
                [(< (car a) (car b)) (cons (car a) (merge (cdr a) b))]
                [else (cons (car b) (merge a (cdr b)))]))
        (define (halve lst)
          (if (or (null? lst) (null? (cdr lst)))
              (cons lst '())
              (let ([rest (halve (cdr (cdr lst)))])
                (cons (cons (car lst) (car rest))
                      (cons (cadr lst) (cdr rest))))))
        (define (mergesort lst)
          (if (or (null? lst) (null? (cdr lst)))
              lst
              (let ([halves (halve lst)])
                (merge (mergesort (car halves)) (mergesort (cdr halves))))))
        (mergesort '(9 8 7 1 2 3 6 5 4))
        """,
        "(1 2 3 4 5 6 7 8 9)",
    ),
    "church-numerals": (
        """
        (define zero (lambda (f) (lambda (x) x)))
        (define (succ n) (lambda (f) (lambda (x) (f ((n f) x)))))
        (define (church->int n) ((n (lambda (k) (+ k 1))) 0))
        (define three (succ (succ (succ zero))))
        (define (plus a b) (lambda (f) (lambda (x) ((a f) ((b f) x)))))
        (church->int (plus three three))
        """,
        "6",
    ),
    "streams": (
        """
        (define (make-stream n) (cons n (lambda () (make-stream (+ n 1)))))
        (define (stream-take s k)
          (if (= k 0) '() (cons (car s) (stream-take ((cdr s)) (- k 1)))))
        (stream-take (make-stream 5) 5)
        """,
        "(5 6 7 8 9)",
    ),
    "bank-account-closures": (
        """
        (define (make-account balance)
          (lambda (op amount)
            (cond [(eq? op 'deposit) (set! balance (+ balance amount)) balance]
                  [(eq? op 'withdraw) (set! balance (- balance amount)) balance]
                  [else balance])))
        (define acct (make-account 100))
        (acct 'deposit 50)
        (acct 'withdraw 30)
        (acct 'balance 0)
        """,
        "120",
    ),
    "assoc-environment-interpreter": (
        """
        ;; A micro-interpreter for arithmetic with variables (meta-circular
        ;; flavour: the substrate interpreting an interpreter).
        (define (lookup env x)
          (cond [(null? env) (error 'lookup "unbound")]
                [(eq? (car (car env)) x) (cdr (car env))]
                [else (lookup (cdr env) x)]))
        (define (ev e env)
          (cond [(number? e) e]
                [(symbol? e) (lookup env e)]
                [(eq? (car e) 'add) (+ (ev (cadr e) env) (ev (caddr e) env))]
                [(eq? (car e) 'mul) (* (ev (cadr e) env) (ev (caddr e) env))]
                [else (error 'ev "bad form")]))
        (ev '(add (mul x y) 3) (list (cons 'x 4) (cons 'y 5)))
        """,
        "23",
    ),
    "vector-sieve": (
        """
        (define (sieve n)
          (let ([flags (make-vector (+ n 1) #t)])
            (do ([i 2 (+ i 1)]) ((> (* i i) n))
              (when (vector-ref flags i)
                (do ([j (* i i) (+ j i)]) ((> j n))
                  (vector-set! flags j #f))))
            (let loop ([i 2] [out '()])
              (cond [(> i n) (reverse out)]
                    [(vector-ref flags i) (loop (+ i 1) (cons i out))]
                    [else (loop (+ i 1) out)]))))
        (sieve 30)
        """,
        "(2 3 5 7 11 13 17 19 23 29)",
    ),
    "deep-nesting": (
        """
        (define (build n) (if (= n 0) '() (cons n (build (- n 1)))))
        (length (build 400))
        """,
        "400",
    ),
    "mutual-recursion-via-letrec": (
        """
        (letrec ([hail (lambda (n steps)
                         (cond [(= n 1) steps]
                               [(even? n) (hail (quotient n 2) (+ steps 1))]
                               [else (hail (+ (* 3 n) 1) (+ steps 1))]))])
          (hail 27 0))
        """,
        "111",
    ),
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_program(scheme, name):
    source, expected = PROGRAMS[name]
    assert run_value(scheme, source) == expected


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_program_in_vm(name):
    """The same corpus through the block compiler + VM."""
    from repro.blocks.compiler import compile_program
    from repro.blocks.vm import VM
    from repro.scheme.datum import write_datum
    from repro.scheme.pipeline import SchemeSystem
    from repro.scheme.primitives import make_global_env
    from repro.scheme.syntax import strip_all

    source, expected = PROGRAMS[name]
    module = compile_program(SchemeSystem().compile(source))
    value = VM(module, make_global_env()).run()
    assert write_datum(strip_all(value)) == expected


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_program_instrumented(name):
    """And once more under full expression profiling."""
    from repro.scheme.instrument import ProfileMode
    from repro.scheme.pipeline import SchemeSystem
    from repro.scheme.datum import write_datum
    from repro.scheme.syntax import strip_all

    source, expected = PROGRAMS[name]
    result = SchemeSystem().run_source(source, instrument=ProfileMode.EXPR)
    assert write_datum(strip_all(result.value)) == expected
    assert result.counters.total() > 0
