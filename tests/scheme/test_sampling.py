"""Tests for the sampling profiler mode (profiler parametricity)."""

import pytest

from repro.casestudies.exclusive_cond import make_case_system
from repro.casestudies.if_r import make_if_r_system
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.scheme.core_forms import unparse_string
from repro.scheme.instrument import Instrumenter, ProfileMode
from repro.scheme.pipeline import SchemeSystem


class TestSamplingCounters:
    def test_counts_are_unbiased_for_multiples_of_stride(self):
        source = "(define (f x) (* x x))\n(define (run n) (if (= n 0) 'done (begin (f n) (run (- n 1)))))\n(run 100)"
        exact = SchemeSystem().run_source(source, "s.ss", instrument=ProfileMode.EXPR)
        sampled = SchemeSystem().run_source(source, "s.ss", instrument=ProfileMode.SAMPLE)
        body_start = source.index("(* x x)")
        point = None
        for p in exact.counters.points():
            if p.location.start == body_start:
                point = p
        assert point is not None
        assert exact.counters.count(point) == 100
        # stride 10 divides 100 exactly: sampled count is exact.
        assert sampled.counters.count(point) == 100

    def test_counts_within_one_stride_otherwise(self):
        source = "(define (f x) (* x x))\n(define (run n) (if (= n 0) 'done (begin (f n) (run (- n 1)))))\n(run 57)"
        sampled = SchemeSystem().run_source(source, "s.ss", instrument=ProfileMode.SAMPLE)
        body_start = source.index("(* x x)")
        counts = [
            sampled.counters.count(p)
            for p in sampled.counters.points()
            if p.location.start == body_start
        ]
        assert counts and abs(counts[0] - 57) < 10

    def test_sampling_cheaper_than_exact_by_bump_count(self):
        """The point of sampling: fewer counter increments."""
        source = "(define (loop n) (if (= n 0) 'done (loop (- n 1))))\n(loop 1000)"
        exact = SchemeSystem().run_source(source, "s.ss", instrument=ProfileMode.EXPR)
        sampled = SchemeSystem().run_source(source, "s.ss", instrument=ProfileMode.SAMPLE)
        # Totals are similar (unbiased) ...
        assert sampled.counters.total() == pytest.approx(exact.counters.total(), rel=0.05)
        # ... but the number of distinct *recorded* points can only shrink
        # and cold points vanish entirely under sampling.
        assert len(sampled.counters) <= len(exact.counters)

    def test_invalid_stride(self):
        from repro.core.counters import CounterSet

        with pytest.raises(ValueError):
            Instrumenter(CounterSet(), ProfileMode.SAMPLE, sample_stride=0)

    def test_deterministic_across_runs(self):
        source = "(define (loop n) (if (= n 0) 'done (loop (- n 1))))\n(loop 123)"
        a = SchemeSystem().run_source(source, "s.ss", instrument=ProfileMode.SAMPLE)
        b = SchemeSystem().run_source(source, "s.ss", instrument=ProfileMode.SAMPLE)
        assert a.counters.snapshot() == b.counters.snapshot()


class TestMetaProgramsOverSampledProfiles:
    def test_if_r_decision_matches_exact_profiler(self):
        program = """
        (define (classify n) (if-r (< n 20) 'low 'high))
        (define (run n acc) (if (= n 0) acc (run (- n 1) (cons (classify n) acc))))
        (length (run 200 '()))
        """
        sampled_system = make_if_r_system(mode=ProfileMode.SAMPLE)
        sampled_system.profile_run(program, "p.ss", mode=ProfileMode.SAMPLE)
        sampled = unparse_string(sampled_system.compile(program, "p.ss"))

        exact_system = make_if_r_system()
        exact_system.profile_run(program, "p.ss")
        exact = unparse_string(exact_system.compile(program, "p.ss"))
        assert sampled == exact
        assert "(if (not (< n 20))" in sampled  # 'high dominates

    def test_case_reordering_under_sampling(self):
        # Sampling (stride 10) only sees clauses executed often enough;
        # the workload must be much larger than the stride.
        stream = "a" * 20 + "b" * 60 + " " * 200
        program = r"""
        (define (parse-char c)
          (case c
            [(#\a) 'a]
            [(#\b) 'b]
            [(#\space) 'space]))
        """ + f'(length (map parse-char (string->list "{stream}")))'
        system = make_case_system(mode=ProfileMode.SAMPLE)
        first = system.profile_run(program, "c.ss", mode=ProfileMode.SAMPLE)
        text = unparse_string(system.compile(program, "c.ss"))
        line = next(l for l in text.splitlines() if l.startswith("(define parse-char"))
        assert line.index("'space") < line.index("'a")
        second = system.run(system.compile(program, "c.ss"))
        assert str(first.value) == str(second.value)
