"""Unit tests for the Scheme datum representation and printers."""

from fractions import Fraction

import pytest

from repro.scheme.datum import (
    EOF_OBJECT,
    NIL,
    UNSPECIFIED,
    Char,
    Pair,
    SchemeVector,
    Symbol,
    display_datum,
    gensym,
    is_scheme_list,
    iter_pairs,
    pylist_from_scheme,
    scheme_list,
    scheme_list_length,
    write_datum,
)


class TestSymbol:
    def test_interning(self):
        assert Symbol("foo") is Symbol("foo")
        assert Symbol("foo") is not Symbol("bar")

    def test_equality_is_identity(self):
        assert Symbol("x") == Symbol("x")
        assert hash(Symbol("x")) == hash(Symbol("x"))

    def test_gensym_unique(self):
        a = gensym("t")
        b = gensym("t")
        assert a is not b
        assert a.name != b.name

    def test_gensym_contains_percent(self):
        assert "%" in gensym().name


class TestPairs:
    def test_scheme_list(self):
        lst = scheme_list(1, 2, 3)
        assert isinstance(lst, Pair)
        assert pylist_from_scheme(lst) == [1, 2, 3]

    def test_empty_scheme_list_is_nil(self):
        assert scheme_list() is NIL

    def test_improper_tail(self):
        dotted = scheme_list(1, 2, tail=3)
        assert dotted.car == 1
        assert dotted.cdr.cdr == 3

    def test_iter_pairs_rejects_improper(self):
        with pytest.raises(TypeError):
            list(iter_pairs(scheme_list(1, tail=2)))

    def test_structural_equality(self):
        assert scheme_list(1, 2) == scheme_list(1, 2)
        assert scheme_list(1, 2) != scheme_list(1, 3)
        assert scheme_list(1, 2) != scheme_list(1, 2, 3)

    def test_pairs_unhashable(self):
        with pytest.raises(TypeError):
            hash(Pair(1, 2))

    def test_is_scheme_list(self):
        assert is_scheme_list(NIL)
        assert is_scheme_list(scheme_list(1, 2))
        assert not is_scheme_list(scheme_list(1, tail=2))

    def test_is_scheme_list_detects_cycles(self):
        cell = Pair(1, NIL)
        cell.cdr = cell
        assert not is_scheme_list(cell)

    def test_length(self):
        assert scheme_list_length(scheme_list(1, 2, 3)) == 3
        assert scheme_list_length(NIL) == 0


class TestSingletons:
    def test_nil_is_singleton_and_true(self):
        assert NIL is type(NIL)()
        assert bool(NIL)
        assert len(NIL) == 0
        assert list(NIL) == []

    def test_unspecified_singleton(self):
        assert UNSPECIFIED is type(UNSPECIFIED)()
        assert repr(UNSPECIFIED) == "#<void>"

    def test_eof_repr(self):
        assert repr(EOF_OBJECT) == "#<eof>"


class TestChar:
    def test_single_char(self):
        assert Char("a").value == "a"

    def test_rejects_multichar(self):
        with pytest.raises(ValueError):
            Char("ab")

    def test_named_chars(self):
        assert Char.from_name("space").value == " "
        assert Char.from_name("tab").value == "\t"
        assert Char.from_name("newline").value == "\n"
        assert Char.from_name("linefeed").value == "\n"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            Char.from_name("nonsense")

    def test_external(self):
        assert Char(" ").external() == "#\\space"
        assert Char("a").external() == "#\\a"

    def test_ordering_and_equality(self):
        assert Char("a") < Char("b")
        assert Char("a") == Char("a")
        assert hash(Char("a")) == hash(Char("a"))


class TestVector:
    def test_basic(self):
        v = SchemeVector([1, 2, 3])
        assert len(v) == 3
        assert v[1] == 2
        v[1] = 9
        assert v[1] == 9

    def test_equality(self):
        assert SchemeVector([1]) == SchemeVector([1])
        assert SchemeVector([1]) != SchemeVector([2])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(SchemeVector([]))


class TestWrite:
    @pytest.mark.parametrize(
        "datum,expected",
        [
            (NIL, "()"),
            (True, "#t"),
            (False, "#f"),
            (42, "42"),
            (-7, "-7"),
            (Fraction(1, 2), "1/2"),
            (1.5, "1.5"),
            (Symbol("abc"), "abc"),
            ("hi", '"hi"'),
            ('say "hi"', '"say \\"hi\\""'),
            ("a\nb", '"a\\nb"'),
            (Char("x"), "#\\x"),
            (Char(" "), "#\\space"),
            (UNSPECIFIED, "#<void>"),
        ],
    )
    def test_atoms(self, datum, expected):
        assert write_datum(datum) == expected

    def test_lists(self):
        assert write_datum(scheme_list(1, 2, 3)) == "(1 2 3)"
        assert write_datum(scheme_list(1, tail=2)) == "(1 . 2)"
        assert write_datum(scheme_list(scheme_list(1), 2)) == "((1) 2)"

    def test_vector(self):
        assert write_datum(SchemeVector([1, Symbol("a")])) == "#(1 a)"

    def test_quote_abbreviations(self):
        assert write_datum(scheme_list(Symbol("quote"), Symbol("x"))) == "'x"
        assert write_datum(scheme_list(Symbol("quasiquote"), Symbol("x"))) == "`x"
        assert write_datum(scheme_list(Symbol("unquote"), Symbol("x"))) == ",x"
        assert write_datum(scheme_list(Symbol("syntax"), Symbol("x"))) == "#'x"

    def test_display_strings_raw(self):
        assert display_datum("hi") == "hi"
        assert display_datum(Char("x")) == "x"
        assert display_datum(scheme_list("a", Char("b"))) == "(a b)"

    def test_procedure(self):
        def f():
            pass

        assert "procedure" in write_datum(f)
