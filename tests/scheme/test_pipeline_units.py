"""Unit tests for SchemeSystem plumbing not covered elsewhere."""

import pytest

from repro.core.database import ProfileDatabase
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import RunResult, SchemeSystem


class TestRunResult:
    def test_expanded_requires_program(self):
        result = RunResult(value=1, output="")
        with pytest.raises(AssertionError):
            result.expanded

    def test_expanded_pretty_prints(self):
        system = SchemeSystem()
        result = system.run_source("(define (id x) x) (id 1)")
        assert "(define id (lambda (x) x))" in result.expanded

    def test_output_captured_not_leaked(self, capsys):
        system = SchemeSystem()
        result = system.run_source('(display "captured")')
        assert result.output == "captured"
        assert capsys.readouterr().out == ""

    def test_echo_mode_prints_through(self, capsys):
        system = SchemeSystem()
        result = system.run_source('(display "both")', echo=True)
        assert result.output == "both"
        assert capsys.readouterr().out == "both"


class TestSystemState:
    def test_runtime_env_persists_across_runs(self):
        system = SchemeSystem()
        system.run_source("(define persistent 99)")
        assert system.run_source("persistent").value == 99

    def test_two_systems_are_isolated(self):
        a, b = SchemeSystem(), SchemeSystem()
        a.run_source("(define only-a 1)")
        with pytest.raises(Exception, match="unbound"):
            b.run_source("only-a")

    def test_injected_profile_db_is_used(self):
        db = ProfileDatabase(name="mine")
        system = SchemeSystem(profile_db=db)
        system.profile_run("(+ 1 2)")
        assert db.dataset_count == 1

    def test_default_mode_used_by_profile_run(self):
        system = SchemeSystem(mode=ProfileMode.CALL)
        result = system.profile_run("(define (f) 1) (f)")
        # CALL mode counts only applications; the quote-free body adds none.
        assert all(not p.generated for p in result.counters.points())

    def test_compile_output_resets_each_compile(self):
        from repro.casestudies.datastructs import make_datastructs_system

        system = make_datastructs_system()
        program = """
        (define pl (profiled-list 1 2))
        (define (go n acc)
          (if (= n 0) acc (go (- n 1) (+ acc (p-list-ref pl (modulo n 2))))))
        (go 40 0)
        """
        system.profile_run(program, "w.ss")
        system.compile(program, "w.ss")
        assert "WARNING" in system.last_compile_output
        system.compile("(+ 1 2)", "clean.ss")
        assert system.last_compile_output == ""

    def test_load_library_exposes_helpers_at_expand_time(self):
        system = SchemeSystem()
        system.load_library("(define (helper x) (* 10 x))", "lib.ss")
        source = """
        (define-syntax (use-helper stx)
          (syntax-case stx ()
            [(_ n) (datum->syntax stx (helper (syntax->datum #'n)))]))
        (use-helper 4)
        """
        assert system.run_source(source).value == 40

    def test_read_helper(self):
        system = SchemeSystem()
        forms = system.read("(+ 1 2) (- 3)")
        assert len(forms) == 2
