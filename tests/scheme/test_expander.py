"""Tests for macro expansion: define-syntax, syntax-case, templates."""

import pytest

from repro.core.errors import ExpandError
from repro.scheme.core_forms import unparse_string
from tests.conftest import run_output, run_value


class TestDefineSyntax:
    def test_lambda_form(self, scheme):
        source = """
        (define-syntax twice
          (lambda (stx)
            (syntax-case stx ()
              [(_ e) #'(begin e e)])))
        (define n 0)
        (twice (set! n (+ n 1)))
        n
        """
        assert run_value(scheme, source) == "2"

    def test_definition_sugar_form(self, scheme):
        """The (define-syntax (name stx) ...) shape of paper Figure 1."""
        source = """
        (define-syntax (twice stx)
          (syntax-case stx ()
            [(_ e) #'(begin e e)]))
        (define n 0)
        (twice (set! n (+ n 1)))
        n
        """
        assert run_value(scheme, source) == "2"

    def test_macro_visible_to_later_forms_only(self, scheme):
        source = """
        (define-syntax k (lambda (stx) #'42))
        (k)
        """
        assert run_value(scheme, source) == "42"

    def test_identifier_macro(self, scheme):
        source = """
        (define-syntax answer (lambda (stx) #'42))
        (+ answer 0)
        """
        assert run_value(scheme, source) == "42"

    def test_recursive_macro(self, scheme):
        source = """
        (define-syntax my-list
          (lambda (stx)
            (syntax-case stx ()
              [(_) #''()]
              [(_ a b ...) #'(cons a (my-list b ...))])))
        (my-list 1 2 3)
        """
        assert run_value(scheme, source) == "(1 2 3)"

    def test_non_procedure_transformer_rejected(self, scheme):
        with pytest.raises(ExpandError, match="not a procedure"):
            scheme.run_source("(define-syntax bad 42)")

    def test_macro_with_internal_defines(self, scheme):
        """Transformers with internal helper definitions (Figure 6 style)."""
        source = """
        (define-syntax swap-args
          (lambda (stx)
            (define (flip pair) (reverse pair))
            (syntax-case stx ()
              [(_ f a b) #`(f #,@(flip #'(a b)))])))
        (swap-args - 1 10)
        """
        assert run_value(scheme, source) == "9"


class TestSyntaxCaseFeatures:
    def test_literals(self, scheme):
        source = """
        (define-syntax arrowy
          (lambda (stx)
            (syntax-case stx (=>)
              [(_ a => b) #''arrow]
              [(_ a b c) #''plain])))
        (list (arrowy 1 => 2) (arrowy 1 2 3))
        """
        assert run_value(scheme, source) == "(arrow plain)"

    def test_fender(self, scheme):
        source = """
        (define-syntax classify
          (lambda (stx)
            (syntax-case stx ()
              [(_ x) (number? (syntax->datum #'x)) #''number]
              [(_ x) #''other])))
        (list (classify 42) (classify foo))
        """
        assert run_value(scheme, source) == "(number other)"

    def test_no_matching_clause(self, scheme):
        source = """
        (define-syntax one-arg
          (lambda (stx)
            (syntax-case stx ()
              [(_ a) #'a])))
        (one-arg 1 2)
        """
        with pytest.raises(ExpandError):
            scheme.run_source(source)

    def test_ellipsis_template_through_macro(self, scheme):
        source = """
        (define-syntax my-begin
          (lambda (stx)
            (syntax-case stx ()
              [(_ e ...) #'((lambda () e ...))])))
        (my-begin 1 2 3)
        """
        assert run_value(scheme, source) == "3"

    def test_quasisyntax_hole(self, scheme):
        source = """
        (define-syntax add-42
          (lambda (stx)
            (syntax-case stx ()
              [(_ e) #`(+ e #,(+ 40 2))])))
        (add-42 1)
        """
        assert run_value(scheme, source) == "43"

    def test_quasisyntax_splicing_hole(self, scheme):
        source = """
        (define-syntax reversed-call
          (lambda (stx)
            (syntax-case stx ()
              [(_ f arg ...)
               #`(f #,@(reverse #'(arg ...)))])))
        (reversed-call list 1 2 3)
        """
        assert run_value(scheme, source) == "(3 2 1)"

    def test_with_syntax(self, scheme):
        source = """
        (define-syntax double-both
          (lambda (stx)
            (syntax-case stx ()
              [(_ a b)
               (with-syntax ([x #'(* 2 a)] [y #'(* 2 b)])
                 #'(+ x y))])))
        (double-both 3 4)
        """
        assert run_value(scheme, source) == "14"

    def test_syntax_to_datum_and_back(self, scheme):
        source = """
        (define-syntax stringify
          (lambda (stx)
            (syntax-case stx ()
              [(_ x) (datum->syntax #'x (symbol->string (syntax->datum #'x)))])))
        (stringify hello)
        """
        assert run_value(scheme, source) == '"hello"'


class TestHygiene:
    def test_introduced_binding_does_not_capture(self, scheme):
        source = """
        (define-syntax (my-or2 stx)
          (syntax-case stx ()
            [(_ a b) #'(let ([t a]) (if t t b))]))
        (define t 'user-t)
        (my-or2 #f t)
        """
        assert run_value(scheme, source) == "user-t"

    def test_user_binding_does_not_capture_macro_reference(self, scheme):
        source = """
        (define (helper) 'from-global)
        (define-syntax (call-helper stx)
          (syntax-case stx ()
            [(_) #'(helper)]))
        (define (use)
          (call-helper))
        (use)
        """
        assert run_value(scheme, source) == "from-global"

    def test_nested_macro_expansion_temporaries_distinct(self, scheme):
        source = """
        (define-syntax (swap! stx)
          (syntax-case stx ()
            [(_ a b) #'(let ([tmp a]) (set! a b) (set! b tmp))]))
        (define x 1)
        (define y 2)
        (define tmp 3)
        (swap! x tmp)
        (swap! tmp y)
        (list x y tmp)
        """
        assert run_value(scheme, source) == "(3 1 2)"

    def test_let_bound_macro(self, scheme):
        source = """
        (let-syntax ([five (lambda (stx) #'5)])
          (+ (five) 1))
        """
        assert run_value(scheme, source) == "6"

    def test_local_macro_in_body(self, scheme):
        source = """
        (define (f)
          (define-syntax ten (lambda (stx) #'10))
          (ten))
        (f)
        """
        assert run_value(scheme, source) == "10"


class TestMeta:
    def test_meta_define_usable_at_expand_time(self, scheme):
        source = """
        (meta (define expansion-count 41))
        (define-syntax (bump stx)
          (syntax-case stx ()
            [(_) (begin
                   (set! expansion-count (+ expansion-count 1))
                   (datum->syntax stx expansion-count))]))
        (bump)
        """
        assert run_value(scheme, source) == "42"

    def test_meta_not_in_runtime(self, scheme):
        with pytest.raises(Exception):
            scheme.run_source("(meta (define x 1)) x (display x)")


class TestTopLevelShapes:
    def test_begin_splices_at_top(self, scheme):
        assert run_value(scheme, "(begin (define a 1) (define b 2)) (+ a b)") == "3"

    def test_redefinition(self, scheme):
        assert run_value(scheme, "(define x 1) (define x 2) x") == "2"

    def test_empty_application_rejected(self, scheme):
        with pytest.raises(ExpandError, match="empty application"):
            scheme.run_source("()")

    def test_core_form_as_expression_rejected(self, scheme):
        with pytest.raises(ExpandError):
            scheme.run_source("(+ if 1)")

    def test_define_in_expression_position_rejected(self, scheme):
        with pytest.raises(ExpandError):
            scheme.run_source("(+ 1 (define x 2))")

    def test_expansion_output_shape(self, scheme):
        program = scheme.compile("(define (inc x) (+ x 1))")
        assert unparse_string(program) == "(define inc (lambda (x) (+ x 1)))"


class TestPatternVarMisuse:
    def test_pattern_var_outside_template(self, scheme):
        source = """
        (define-syntax bad
          (lambda (stx)
            (syntax-case stx ()
              [(_ e) e])))
        (bad 42)
        """
        # Referencing a pattern var as a value is an error in our dialect.
        with pytest.raises(ExpandError, match="pattern variable"):
            scheme.run_source(source)
