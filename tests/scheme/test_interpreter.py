"""Semantics tests for the Scheme interpreter (via the full pipeline)."""

import pytest

from repro.core.errors import EvalError, SchemeUserError
from tests.conftest import run_output, run_value


class TestSelfEvaluating:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("42", "42"),
            ("#t", "#t"),
            ("#f", "#f"),
            ('"hi"', '"hi"'),
            ("#\\a", "#\\a"),
            ("1/2", "1/2"),
            ("1.5", "1.5"),
            ("#(1 2)", "#(1 2)"),
        ],
    )
    def test_atoms(self, scheme, source, expected):
        assert run_value(scheme, source) == expected


class TestSpecialForms:
    def test_quote(self, scheme):
        assert run_value(scheme, "'(1 2 (3))") == "(1 2 (3))"
        assert run_value(scheme, "'sym") == "sym"

    def test_if(self, scheme):
        assert run_value(scheme, "(if #t 1 2)") == "1"
        assert run_value(scheme, "(if #f 1 2)") == "2"
        assert run_value(scheme, "(if 0 1 2)") == "1"  # only #f is false
        assert run_value(scheme, "(if '() 1 2)") == "1"

    def test_one_armed_if(self, scheme):
        assert run_value(scheme, "(if #f 1)") == "#<void>"

    def test_define_and_reference(self, scheme):
        assert run_value(scheme, "(define x 10) (+ x 5)") == "15"

    def test_define_function_sugar(self, scheme):
        assert run_value(scheme, "(define (double x) (* 2 x)) (double 21)") == "42"

    def test_define_rest_args(self, scheme):
        assert run_value(scheme, "(define (f a . rest) (cons a rest)) (f 1 2 3)") == "(1 2 3)"

    def test_variadic_lambda(self, scheme):
        assert run_value(scheme, "((lambda args args) 1 2 3)") == "(1 2 3)"

    def test_set_bang(self, scheme):
        assert run_value(scheme, "(define x 1) (set! x 99) x") == "99"

    def test_begin(self, scheme):
        assert run_value(scheme, "(begin 1 2 3)") == "3"

    def test_lambda_closure(self, scheme):
        assert run_value(
            scheme,
            "(define (adder n) (lambda (x) (+ x n))) ((adder 10) 5)",
        ) == "15"

    def test_closure_captures_mutable_state(self, scheme):
        source = """
        (define (counter)
          (let ([n 0])
            (lambda () (set! n (+ n 1)) n)))
        (define c (counter))
        (c) (c) (c)
        """
        assert run_value(scheme, source) == "3"

    def test_forward_reference_at_top_level(self, scheme):
        source = """
        (define (even2? n) (if (= n 0) #t (odd2? (- n 1))))
        (define (odd2? n) (if (= n 0) #f (even2? (- n 1))))
        (even2? 10)
        """
        assert run_value(scheme, source) == "#t"


class TestLetForms:
    def test_let(self, scheme):
        assert run_value(scheme, "(let ([x 1] [y 2]) (+ x y))") == "3"

    def test_let_shadowing(self, scheme):
        assert run_value(scheme, "(define x 1) (let ([x 10]) x)") == "10"

    def test_let_inits_see_outer(self, scheme):
        assert run_value(scheme, "(define x 1) (let ([x (+ x 1)]) x)") == "2"

    def test_let_star(self, scheme):
        assert run_value(scheme, "(let* ([x 1] [y (+ x 1)] [z (+ y 1)]) z)") == "3"

    def test_letrec(self, scheme):
        source = """
        (letrec ([even2? (lambda (n) (if (= n 0) #t (odd2? (- n 1))))]
                 [odd2? (lambda (n) (if (= n 0) #f (even2? (- n 1))))])
          (even2? 8))
        """
        assert run_value(scheme, source) == "#t"

    def test_named_let(self, scheme):
        source = "(let loop ([i 0] [acc '()]) (if (= i 3) acc (loop (+ i 1) (cons i acc))))"
        assert run_value(scheme, source) == "(2 1 0)"

    def test_internal_defines(self, scheme):
        source = """
        (define (f x)
          (define y (* x 2))
          (define (g z) (+ y z))
          (g 1))
        (f 10)
        """
        assert run_value(scheme, source) == "21"

    def test_internal_defines_mutual_recursion(self, scheme):
        source = """
        (define (f n)
          (define (even2? n) (if (= n 0) #t (odd2? (- n 1))))
          (define (odd2? n) (if (= n 0) #f (even2? (- n 1))))
          (even2? n))
        (f 4)
        """
        assert run_value(scheme, source) == "#t"


class TestConditionals:
    def test_cond(self, scheme):
        source = "(define (f x) (cond [(= x 1) 'one] [(= x 2) 'two] [else 'many])) (list (f 1) (f 2) (f 3))"
        assert run_value(scheme, source) == "(one two many)"

    def test_cond_no_match(self, scheme):
        assert run_value(scheme, "(cond [#f 1])") == "#<void>"

    def test_cond_test_only_clause(self, scheme):
        assert run_value(scheme, "(cond [#f 1] [42] [else 2])") == "42"

    def test_cond_arrow(self, scheme):
        assert run_value(scheme, "(cond [(memv 2 '(1 2 3)) => car] [else 'no])") == "2"

    def test_and(self, scheme):
        assert run_value(scheme, "(and)") == "#t"
        assert run_value(scheme, "(and 1 2 3)") == "3"
        assert run_value(scheme, "(and 1 #f 3)") == "#f"

    def test_and_short_circuits(self, scheme):
        assert run_output(scheme, '(and #f (display "no"))') == ""

    def test_or(self, scheme):
        assert run_value(scheme, "(or)") == "#f"
        assert run_value(scheme, "(or #f 2)") == "2"
        assert run_value(scheme, "(or #f #f)") == "#f"

    def test_or_short_circuits(self, scheme):
        assert run_output(scheme, '(or 1 (display "no"))') == ""

    def test_when_unless(self, scheme):
        assert run_value(scheme, "(when #t 1 2)") == "2"
        assert run_value(scheme, "(when #f 1 2)") == "#<void>"
        assert run_value(scheme, "(unless #f 'yes)") == "yes"
        assert run_value(scheme, "(unless #t 'yes)") == "#<void>"


class TestQuasiquote:
    def test_plain(self, scheme):
        assert run_value(scheme, "`(1 2 3)") == "(1 2 3)"

    def test_unquote(self, scheme):
        assert run_value(scheme, "(define x 5) `(a ,x b)") == "(a 5 b)"

    def test_unquote_splicing(self, scheme):
        assert run_value(scheme, "`(a ,@(list 1 2) b)") == "(a 1 2 b)"

    def test_nested_quasiquote(self, scheme):
        # The printer abbreviates quasiquote/unquote back to `/,
        assert run_value(scheme, "`(a `(b ,(c)))") == "(a `(b ,(c)))"

    def test_dotted(self, scheme):
        assert run_value(scheme, "(define x 2) `(1 . ,x)") == "(1 . 2)"

    def test_vector(self, scheme):
        assert run_value(scheme, "(define x 9) `#(1 ,x)") == "#(1 9)"


class TestTailCalls:
    def test_deep_tail_recursion(self, scheme):
        source = "(define (loop n) (if (= n 0) 'done (loop (- n 1)))) (loop 100000)"
        assert run_value(scheme, source) == "done"

    def test_mutual_tail_recursion(self, scheme):
        source = """
        (define (ping n) (if (= n 0) 'ping (pong (- n 1))))
        (define (pong n) (if (= n 0) 'pong (ping (- n 1))))
        (ping 50001)
        """
        assert run_value(scheme, source) == "pong"

    def test_named_let_loop(self, scheme):
        source = "(let loop ([i 0] [acc 0]) (if (= i 100000) acc (loop (+ i 1) (+ acc 1))))"
        assert run_value(scheme, source) == "100000"

    def test_tail_call_through_cond(self, scheme):
        source = """
        (define (f n) (cond [(= n 0) 'done] [else (f (- n 1))]))
        (f 60000)
        """
        assert run_value(scheme, source) == "done"


class TestErrors:
    def test_unbound_variable(self, scheme):
        with pytest.raises(EvalError, match="unbound"):
            scheme.run_source("nonexistent-variable")

    def test_apply_non_procedure(self, scheme):
        with pytest.raises(EvalError, match="non-procedure"):
            scheme.run_source("(42 1)")

    def test_arity_error(self, scheme):
        with pytest.raises(EvalError, match="expected 1"):
            scheme.run_source("((lambda (x) x) 1 2)")

    def test_user_error(self, scheme):
        with pytest.raises(SchemeUserError, match="boom"):
            scheme.run_source("(error 'me \"boom\" 1 2)")

    def test_set_of_unbound(self, scheme):
        with pytest.raises(EvalError):
            scheme.run_source("(set! never-defined 1)")


class TestOutput:
    def test_display_and_newline(self, scheme):
        assert run_output(scheme, '(display "a") (newline) (display 42)') == "a\n42"

    def test_write_quotes_strings(self, scheme):
        assert run_output(scheme, '(write "a")') == '"a"'

    def test_printf(self, scheme):
        out = run_output(scheme, '(printf "x=~a y=~s~n" 1 "two")')
        assert out == 'x=1 y="two"\n'

    def test_printf_tilde(self, scheme):
        assert run_output(scheme, '(printf "~~")') == "~"
