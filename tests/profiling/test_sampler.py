"""The sampling engines: run subsetting, the portable gate collector, and
the ``sys.monitoring`` sampler (skipped where PEP 669 is unavailable)."""

import pytest

from repro.core.counters import CounterSet
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.profiling import (
    MonitoringSampler,
    RunSampler,
    SamplingCollector,
    monitoring_available,
    sampling_collector,
)

POINTS = [
    ProfilePoint.for_location(SourceLocation("s.ss", n, n + 1)) for n in range(3)
]


# -- RunSampler: whole-run subsetting for pgmp ship ---------------------------


def test_run_sampler_gates_first_and_every_stride_th_run():
    sampler = RunSampler(3)
    pattern = [sampler.gate() for _ in range(9)]
    assert pattern == [True, False, False] * 3


def test_run_sampler_stride_one_instruments_every_run():
    sampler = RunSampler(1)
    assert all(sampler.gate() for _ in range(5))


def test_run_sampler_rejects_bad_stride():
    with pytest.raises(ValueError):
        RunSampler(0)


def test_fold_scales_counts_and_accumulates_samples():
    sampler = RunSampler(4)
    shipping = CounterSet(name="ds")

    run = CounterSet(name="ds")
    run.increment(POINTS[0], by=7)
    run.increment(POINTS[1], by=3)
    assert sampler.fold(run, shipping) == 10

    run2 = CounterSet(name="ds")
    run2.increment(POINTS[0], by=5)
    assert sampler.fold(run2, shipping) == 5

    assert sampler.samples == 15
    assert shipping.count(POINTS[0]) == 48  # (7 + 5) * 4
    assert shipping.count(POINTS[1]) == 12  # 3 * 4


def test_fold_of_empty_run_is_a_noop():
    sampler = RunSampler(4)
    shipping = CounterSet(name="ds")
    assert sampler.fold(CounterSet(name="ds"), shipping) == 0
    assert sampler.samples == 0
    assert shipping.total() == 0


# -- SamplingCollector: the portable per-point stride gate --------------------


def test_gate_collector_reconstruction_is_unbiased_on_multiples():
    inner = CounterSet(name="ds")
    gate = SamplingCollector(inner, 5)
    for _ in range(100):
        gate.increment(POINTS[0])
    # 100 events at stride 5: 20 passes, each bumping by 5.
    assert inner.count(POINTS[0]) == 100
    assert gate.samples == 100


def test_gate_collector_residue_bounds_the_error():
    inner = CounterSet(name="ds")
    gate = SamplingCollector(inner, 10)
    for _ in range(37):
        gate.increment(POINTS[0])
    # Only whole strides land; at most stride-1 events sit in the residue.
    assert inner.count(POINTS[0]) == 30
    assert gate.samples == 37


def test_gate_collector_handles_bulk_increments():
    inner = CounterSet(name="ds")
    gate = SamplingCollector(inner, 10)
    gate.increment(POINTS[0], by=25)
    assert inner.count(POINTS[0]) == 20
    gate.increment(POINTS[0], by=5)
    assert inner.count(POINTS[0]) == 30
    assert gate.samples == 30


def test_gate_collector_tracks_points_independently():
    inner = CounterSet(name="ds")
    gate = SamplingCollector(inner, 4)
    for _ in range(8):
        gate.increment(POINTS[0])
    for _ in range(3):
        gate.increment(POINTS[1])
    assert inner.count(POINTS[0]) == 8
    assert inner.count(POINTS[1]) == 0  # still in the residue table
    assert gate.samples == 11


def test_gate_collector_clear_resets_everything():
    inner = CounterSet(name="ds")
    gate = SamplingCollector(inner, 3)
    for _ in range(7):
        gate.increment(POINTS[0])
    gate.clear()
    assert gate.samples == 0
    assert inner.total() == 0
    # The residue table was dropped too: a fresh stride starts over.
    gate.increment(POINTS[0])
    assert inner.count(POINTS[0]) == 0


def test_gate_collector_rejects_bad_stride():
    with pytest.raises(ValueError):
        SamplingCollector(CounterSet(name="ds"), 0)


# -- the pyast engines through the public entry point -------------------------


def _hook_loop(times: int, key: str) -> None:
    from repro.pyast.profiler import profile_hook

    for _ in range(times):
        profile_hook(key, lambda: None)


def test_sampling_collector_gate_engine_collects_scaled_counts():
    counters = CounterSet(name="ds")
    with sampling_collector(counters, 5, engine="gate") as sampler:
        _hook_loop(100, POINTS[0].key())
    assert sampler.stride == 5
    assert sampler.samples == 100
    assert counters.count(POINTS[0]) == 100


def test_sampling_collector_stops_collecting_on_exit():
    counters = CounterSet(name="ds")
    with sampling_collector(counters, 5, engine="gate"):
        _hook_loop(10, POINTS[0].key())
    _hook_loop(50, POINTS[0].key())
    assert counters.count(POINTS[0]) == 10


def test_sampling_collector_rejects_unknown_engine():
    with pytest.raises(ValueError):
        with sampling_collector(CounterSet(name="ds"), 5, engine="psychic"):
            pass  # pragma: no cover


def test_sampling_collector_auto_selects_an_engine():
    counters = CounterSet(name="ds")
    with sampling_collector(counters, 2, engine="auto") as sampler:
        _hook_loop(10, POINTS[0].key())
    assert sampler.samples == 10
    assert counters.count(POINTS[0]) == 10


@pytest.mark.skipif(
    not monitoring_available(), reason="sys.monitoring needs Python >= 3.12"
)
class TestMonitoringEngine:
    def test_collects_scaled_counts(self):
        counters = CounterSet(name="ds")
        with sampling_collector(counters, 5, engine="monitoring") as sampler:
            _hook_loop(100, POINTS[0].key())
        assert isinstance(sampler, MonitoringSampler)
        assert sampler.samples == 100
        assert counters.count(POINTS[0]) == 100

    def test_stops_collecting_on_exit(self):
        counters = CounterSet(name="ds")
        with sampling_collector(counters, 5, engine="monitoring"):
            _hook_loop(10, POINTS[0].key())
        _hook_loop(50, POINTS[0].key())
        assert counters.count(POINTS[0]) == 10

    def test_matches_gate_engine_semantics(self):
        """The PEP 669 engine must reconstruct exactly like the reference
        gate collector for a deterministic event stream."""
        via_monitoring = CounterSet(name="ds")
        with sampling_collector(via_monitoring, 7, engine="monitoring"):
            _hook_loop(100, POINTS[0].key())
            _hook_loop(13, POINTS[1].key())
        via_gate = CounterSet(name="ds")
        with sampling_collector(via_gate, 7, engine="gate"):
            _hook_loop(100, POINTS[0].key())
            _hook_loop(13, POINTS[1].key())
        assert via_monitoring.snapshot() == via_gate.snapshot()

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            MonitoringSampler(CounterSet(name="ds"), 0)
