"""Confidence on the service wire: delta serialization, shipper tagging,
and the aggregator's per-dataset merge, checkpoint, and stats surface."""

import json

import pytest

from repro.core.counters import CounterSet
from repro.core.errors import DeltaFormatError, ServiceError
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.profiling import DatasetConfidence, relative_error_bar
from repro.service import ProfileAggregator, ProfileShipper
from repro.service.delta import ProfileDelta

POINTS = [
    ProfilePoint.for_location(SourceLocation("w.ss", n, n + 1)) for n in range(3)
]


def _delta(seq=1, shipper="w1", confidence=None, counts=None):
    return ProfileDelta(
        shipper=shipper,
        seq=seq,
        dataset="requests",
        counts=counts if counts is not None else {POINTS[0].key(): 40},
        confidence=confidence,
    )


# -- the wire format ----------------------------------------------------------


def test_exact_delta_omits_the_confidence_field():
    # v1 byte-compatibility: exact deltas serialize exactly as before.
    assert "confidence" not in _delta().to_json_object()
    assert (
        "confidence"
        not in _delta(confidence=DatasetConfidence.exact()).to_json_object()
    )


def test_sampled_delta_round_trips_confidence():
    conf = DatasetConfidence.sampled(40, 10)
    obj = _delta(confidence=conf).to_json_object()
    assert obj["confidence"]["mode"] == "sampled"
    rebuilt = ProfileDelta.from_json_object(json.loads(json.dumps(obj)))
    assert rebuilt.confidence is not None
    assert rebuilt.confidence.samples == 40
    assert rebuilt.confidence.scale == 10.0
    assert rebuilt.confidence.error_bar == pytest.approx(
        conf.error_bar, abs=1e-6
    )


def test_malformed_confidence_is_a_delta_format_error():
    obj = _delta().to_json_object()
    obj["confidence"] = {"mode": "sampled", "samples": "many", "scale": 10.0}
    with pytest.raises(DeltaFormatError, match="confidence"):
        ProfileDelta.from_json_object(obj)


def test_v1_delta_without_confidence_reads_as_exact():
    obj = _delta().to_json_object()
    assert ProfileDelta.from_json_object(obj).confidence is None


# -- the shipper --------------------------------------------------------------


def test_shipper_tags_flushed_deltas_with_confidence():
    counters = CounterSet(name="requests")
    with ProfileAggregator("127.0.0.1:0") as agg:
        with ProfileShipper(
            counters, agg.address, sample_scale=10.0
        ) as shipper:
            counters.increment(POINTS[0], by=400)  # reconstructed counts
            delta = shipper.flush()
    assert delta is not None and delta.confidence is not None
    assert delta.confidence.is_sampled
    assert delta.confidence.samples == 40
    assert delta.confidence.scale == 10.0


def test_shipper_without_sample_scale_ships_exact_deltas():
    counters = CounterSet(name="requests")
    with ProfileAggregator("127.0.0.1:0") as agg:
        with ProfileShipper(counters, agg.address) as shipper:
            counters.increment(POINTS[0], by=400)
            delta = shipper.flush()
    assert delta is not None and delta.confidence is None


def test_shipper_rejects_bad_sample_scale():
    with pytest.raises(ServiceError):
        ProfileShipper(CounterSet(name="ds"), "127.0.0.1:1", sample_scale=0.5)


# -- the aggregator -----------------------------------------------------------


def test_aggregator_merges_confidence_across_shippers():
    agg = ProfileAggregator("127.0.0.1:0")
    for name, samples in (("w1", 30), ("w2", 70)):
        frame = _delta(
            shipper=name,
            confidence=DatasetConfidence.sampled(samples, 10),
        ).to_json_object()
        assert agg.handle_frame(frame)["status"] == "applied"
    db = agg.merged_database()
    summary = db.confidence_summary()
    assert summary is not None
    assert summary.samples == 100
    assert summary.scale == 10.0
    assert summary.error_bar == pytest.approx(
        relative_error_bar(100, 10.0), abs=1e-6
    )
    assert agg.metrics.counter("sampled_deltas_total") == 2


def test_untagged_deltas_stay_exact_by_default():
    agg = ProfileAggregator("127.0.0.1:0")
    assert agg.handle_frame(_delta().to_json_object())["status"] == "applied"
    assert agg.merged_database().confidence_summary() is None
    assert agg.metrics.counter("sampled_deltas_total") == 0


def test_assume_sample_scale_tags_untagged_v1_deltas():
    agg = ProfileAggregator("127.0.0.1:0", assume_sample_scale=10.0)
    frame = _delta(counts={POINTS[0].key(): 500}).to_json_object()
    assert "confidence" not in frame  # a v1 shipper's frame
    assert agg.handle_frame(frame)["status"] == "applied"
    summary = agg.merged_database().confidence_summary()
    assert summary is not None
    assert summary.samples == 50
    assert summary.scale == 10.0


def test_tagged_delta_wins_over_assume_sample_scale():
    agg = ProfileAggregator("127.0.0.1:0", assume_sample_scale=100.0)
    frame = _delta(
        confidence=DatasetConfidence.sampled(40, 10),
        counts={POINTS[0].key(): 400},
    ).to_json_object()
    assert agg.handle_frame(frame)["status"] == "applied"
    summary = agg.merged_database().confidence_summary()
    assert summary.samples == 40
    assert summary.scale == 10.0


def test_aggregator_rejects_bad_assume_sample_scale():
    with pytest.raises(ServiceError):
        ProfileAggregator("127.0.0.1:0", assume_sample_scale=0.1)


def test_stats_frame_surfaces_dataset_confidence():
    agg = ProfileAggregator("127.0.0.1:0")
    agg.handle_frame(
        _delta(confidence=DatasetConfidence.sampled(40, 10)).to_json_object()
    )
    stats = agg.handle_frame({"type": "stats"})
    (entry,) = [
        ds for ds in stats["datasets"].values() if ds["name"] == "requests"
    ]
    assert entry["confidence"]["mode"] == "sampled"
    assert entry["confidence"]["samples"] == 40


def test_checkpoint_restores_confidence(tmp_path):
    state = str(tmp_path / "state.json")
    agg = ProfileAggregator("127.0.0.1:0", state_path=state)
    agg.handle_frame(
        _delta(confidence=DatasetConfidence.sampled(40, 10)).to_json_object()
    )
    assert agg.checkpoint()

    resumed = ProfileAggregator("127.0.0.1:0", state_path=state)
    summary = resumed.merged_database().confidence_summary()
    assert summary is not None
    assert summary.samples == 40
    assert summary.scale == 10.0
    # A duplicate of the already-applied delta is dropped by the ledger
    # and must not double-count confidence either.
    assert (
        resumed.handle_frame(
            _delta(
                confidence=DatasetConfidence.sampled(40, 10)
            ).to_json_object()
        )["status"]
        == "duplicate"
    )
    assert resumed.merged_database().confidence_summary().samples == 40


def test_end_to_end_sampled_ship_merges_confidence():
    """Two sampled workers; the aggregator's merged database pools their
    observed events into one tighter record."""
    with ProfileAggregator("127.0.0.1:0") as agg:
        for name in ("w1", "w2"):
            counters = CounterSet(name="requests")
            counters.increment(POINTS[0], by=300)
            counters.increment(POINTS[1], by=100)
            with ProfileShipper(
                counters, agg.address, shipper_id=name, sample_scale=4.0
            ) as shipper:
                shipper.flush()
        summary = agg.merged_database().confidence_summary()
    assert summary is not None
    assert summary.samples == 200  # (300 + 100) / 4 per worker, pooled
    assert summary.scale == 4.0
    assert agg.total_counts() == 800
