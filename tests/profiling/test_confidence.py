"""DatasetConfidence: validation, serialization, merging, and the
reconstruction math it is built on."""

import math

import pytest

from repro.core.counters import CounterSet
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.profiling import (
    DEFAULT_ERROR_BAR_THRESHOLD,
    DatasetConfidence,
    confidence_for_counts,
    merge_confidences,
    reconstruct_counts,
    relative_error_bar,
)
from repro.profiling.confidence import annotate_profile_load_span

POINT = ProfilePoint.for_location(SourceLocation("f.ss", 0, 5))


# -- the error-bar math -------------------------------------------------------


def test_exact_scale_has_zero_error_bar():
    assert relative_error_bar(1000, 1.0) == 0.0
    assert relative_error_bar(0, 1.0) == 0.0


def test_empty_sample_is_maximally_uncertain():
    assert relative_error_bar(0, 10.0) == 1.0
    assert relative_error_bar(-3, 10.0) == 1.0


def test_error_bar_matches_normal_approximation():
    # n=100 observed events at scale 10: 1.96 * sqrt(9 / 1000).
    expected = 1.96 * math.sqrt(9.0 / 1000.0)
    assert relative_error_bar(100, 10.0) == pytest.approx(expected)


def test_error_bar_clamped_to_one():
    assert relative_error_bar(1, 1000.0) == 1.0


def test_error_bar_shrinks_with_more_samples():
    bars = [relative_error_bar(n, 10.0) for n in (10, 100, 1000, 10000)]
    assert bars == sorted(bars, reverse=True)
    assert bars[-1] < DEFAULT_ERROR_BAR_THRESHOLD


def test_default_threshold_cleared_by_realistic_datasets():
    # The documented property: at the default rate (10) a few hundred
    # observed events clear the degradation threshold.
    assert relative_error_bar(250, 10.0) < DEFAULT_ERROR_BAR_THRESHOLD
    assert relative_error_bar(20, 10.0) > DEFAULT_ERROR_BAR_THRESHOLD


# -- reconstruction -----------------------------------------------------------


def test_reconstruct_counts_scales_observations():
    assert reconstruct_counts({"a": 3, "b": 0}, 10.0) == {"a": 30, "b": 0}


def test_reconstruct_counts_rejects_bad_scale():
    with pytest.raises(ValueError):
        reconstruct_counts({"a": 1}, 0.5)


def test_confidence_for_counts_recovers_observed_events():
    counters = CounterSet(name="ds")
    counters.increment(POINT, by=500)  # already stride-scaled counts
    conf = confidence_for_counts(counters, 10.0)
    assert conf.is_sampled
    assert conf.samples == 50
    assert conf.scale == 10.0
    assert conf.error_bar == pytest.approx(relative_error_bar(50, 10.0))


def test_confidence_for_counts_accepts_plain_mapping():
    conf = confidence_for_counts({"a": 40, "b": 20}, 4.0)
    assert conf.samples == 15


def test_confidence_for_counts_rejects_bad_scale():
    with pytest.raises(ValueError):
        confidence_for_counts({"a": 1}, 0.0)


# -- the record itself --------------------------------------------------------


def test_exact_constructor():
    conf = DatasetConfidence.exact()
    assert not conf.is_sampled
    assert not conf.is_low()
    assert conf.error_bar == 0.0
    assert conf.describe() == "exact"


def test_sampled_constructor_computes_error_bar():
    conf = DatasetConfidence.sampled(100, 10)
    assert conf.is_sampled
    assert conf.samples == 100
    assert conf.scale == 10.0
    assert conf.error_bar == pytest.approx(relative_error_bar(100, 10.0))


def test_is_low_respects_threshold():
    starved = DatasetConfidence.sampled(5, 50)
    healthy = DatasetConfidence.sampled(5000, 10)
    assert starved.is_low()
    assert not healthy.is_low()
    # Exact records are never low, whatever the threshold.
    assert not DatasetConfidence.exact().is_low(threshold=0.0)


def test_describe_sampled():
    text = DatasetConfidence.sampled(64, 10).describe()
    assert text.startswith("sampled ±")
    assert "n=64" in text
    assert "scale 10x" in text


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(mode="guessed", samples=1, scale=1.0, error_bar=0.0),
        dict(mode="sampled", samples=-1, scale=2.0, error_bar=0.5),
        dict(mode="sampled", samples=1, scale=0.5, error_bar=0.5),
        dict(mode="sampled", samples=1, scale=2.0, error_bar=1.5),
        dict(mode="sampled", samples=1, scale=2.0, error_bar=-0.1),
    ],
)
def test_validation_rejects_malformed_records(kwargs):
    with pytest.raises(ValueError):
        DatasetConfidence(**kwargs)


def test_json_round_trip_preserves_fields():
    conf = DatasetConfidence.sampled(123, 7)
    back = DatasetConfidence.from_json_object(conf.to_json_object())
    assert back.mode == conf.mode
    assert back.samples == conf.samples
    assert back.scale == conf.scale
    # error_bar is rounded to 6 decimals on the wire.
    assert back.error_bar == pytest.approx(conf.error_bar, abs=1e-6)


@pytest.mark.parametrize(
    "obj",
    [
        "not-an-object",
        {"mode": 3, "samples": 1, "scale": 2.0, "error_bar": 0.5},
        {"mode": "sampled", "samples": "many", "scale": 2.0, "error_bar": 0.5},
        {"mode": "sampled", "samples": True, "scale": 2.0, "error_bar": 0.5},
        {"mode": "sampled", "samples": 1, "scale": "big", "error_bar": 0.5},
        {"mode": "sampled", "samples": 1, "scale": 2.0, "error_bar": None},
        {"mode": "sampled", "samples": 1, "scale": 2.0, "error_bar": True},
    ],
)
def test_from_json_object_rejects_malformed_shapes(obj):
    with pytest.raises(ValueError):
        DatasetConfidence.from_json_object(obj)


# -- merging ------------------------------------------------------------------


def test_merge_of_exact_inputs_is_none():
    assert merge_confidences([]) is None
    assert merge_confidences([None, None]) is None
    assert merge_confidences([DatasetConfidence.exact(), None]) is None


def test_merge_pools_samples_and_takes_max_scale():
    merged = merge_confidences(
        [
            DatasetConfidence.sampled(30, 10),
            None,  # an exact data set alongside
            DatasetConfidence.sampled(70, 4),
        ]
    )
    assert merged is not None
    assert merged.samples == 100
    assert merged.scale == 10.0
    assert merged.error_bar == pytest.approx(relative_error_bar(100, 10.0))


def test_merge_tightens_the_error_bar():
    a = DatasetConfidence.sampled(40, 10)
    b = DatasetConfidence.sampled(40, 10)
    merged = merge_confidences([a, b])
    assert merged is not None
    assert merged.error_bar < a.error_bar
    assert merged.error_bar < b.error_bar


# -- span annotation ----------------------------------------------------------


class _FakeSpan:
    def __init__(self):
        self.attrs = {}


def test_annotate_profile_load_span_tolerates_no_span():
    annotate_profile_load_span(None, object())  # must not raise


def test_annotate_profile_load_span_exact():
    from repro.core.database import ProfileDatabase

    db = ProfileDatabase()
    counters = CounterSet(name="ds")
    counters.increment(POINT, by=3)
    db.record_counters(counters)
    span = _FakeSpan()
    annotate_profile_load_span(span, db)
    assert span.attrs == {"mode": "exact"}


def test_annotate_profile_load_span_sampled():
    from repro.core.database import ProfileDatabase

    db = ProfileDatabase()
    counters = CounterSet(name="ds")
    counters.increment(POINT, by=500)
    db.record_counters(
        counters, confidence=DatasetConfidence.sampled(50, 10)
    )
    span = _FakeSpan()
    annotate_profile_load_span(span, db)
    assert span.attrs["mode"] == "sampled"
    assert span.attrs["sampled_datasets"] == 1
    assert span.attrs["error_bar"] == pytest.approx(
        relative_error_bar(50, 10.0), abs=1e-6
    )
