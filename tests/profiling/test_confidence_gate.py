"""Confidence-gated degradation: ``profile_query`` under every policy ×
error-bar width, plus the clause-reordering flip regression — a starved
sampled profile must not flip an optimization decision."""

import pytest

from repro.casestudies.exclusive_cond import make_case_system
from repro.core.api import profile_query, using_profile_information
from repro.core.counters import CounterSet
from repro.core.database import ProfileDatabase
from repro.core.errors import ExpandError, ProfileError
from repro.core.policy import DegradationLog, ProfilePolicy, using_profile_policy
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.obs.metrics import get_global_metrics
from repro.profiling import DatasetConfidence
from repro.scheme.core_forms import unparse_string
from repro.scheme.instrument import ProfileMode

POINTS = [
    ProfilePoint.for_location(SourceLocation("g.ss", n, n + 1)) for n in range(2)
]


def _db(confidence: DatasetConfidence | None) -> ProfileDatabase:
    db = ProfileDatabase()
    counters = CounterSet(name="ds")
    counters.increment(POINTS[0], by=90)
    counters.increment(POINTS[1], by=10)
    db.record_counters(counters, confidence=confidence)
    return db

# Wide: too few observed events to trust. Tight: comfortably inside the
# default ±25% threshold.
WIDE = DatasetConfidence.sampled(5, 50)
TIGHT = DatasetConfidence.sampled(5000, 10)


# -- the query gate, policy by policy -----------------------------------------


def test_exact_profile_applies_weights_silently():
    log = DegradationLog()
    with using_profile_information(_db(None)):
        with using_profile_policy(ProfilePolicy.STRICT, log):
            # Weights are normalized to the hottest point in the data set.
            assert profile_query(POINTS[0]) == pytest.approx(1.0)
            assert profile_query(POINTS[1]) == pytest.approx(10 / 90)
    assert len(log) == 0


def test_tight_sampled_profile_applies_weights():
    log = DegradationLog()
    with using_profile_information(_db(TIGHT)):
        with using_profile_policy(ProfilePolicy.STRICT, log):
            assert profile_query(POINTS[0]) == pytest.approx(1.0)
    assert len(log) == 0


def test_strict_refuses_low_confidence_weights():
    with using_profile_information(_db(WIDE)):
        with using_profile_policy(ProfilePolicy.STRICT, DegradationLog()):
            with pytest.raises(ProfileError, match="low-confidence"):
                profile_query(POINTS[0])


def test_warn_degrades_to_zero_with_recorded_reason(capsys):
    log = DegradationLog()
    before = get_global_metrics().counter("confidence_degradations_total")
    with using_profile_information(_db(WIDE)):
        with using_profile_policy(ProfilePolicy.WARN, log):
            assert profile_query(POINTS[0]) == 0.0
    entries = list(log)
    assert len(entries) == 1
    assert "low-confidence" in entries[0].reason
    assert "weight 0.0" in entries[0].fallback
    assert "pgmp: warning" in capsys.readouterr().err
    after = get_global_metrics().counter("confidence_degradations_total")
    assert after == before + 1


def test_ignore_degrades_silently(capsys):
    log = DegradationLog()
    with using_profile_information(_db(WIDE)):
        with using_profile_policy(ProfilePolicy.IGNORE, log):
            assert profile_query(POINTS[0]) == 0.0
    assert len(list(log)) == 1
    assert capsys.readouterr().err == ""


def test_merged_confidence_gates_across_datasets():
    """A starved sampled data set recorded next to exact data drags the
    merged summary wide: the gate looks at the database the query
    actually answers from, not at one data set."""
    db = _db(None)  # exact baseline data set
    starved = CounterSet(name="starved")
    starved.increment(POINTS[1], by=100)
    db.record_counters(starved, confidence=WIDE)
    assert db.confidence_summary().is_low()
    log = DegradationLog()
    with using_profile_information(db):
        with using_profile_policy(ProfilePolicy.WARN, log):
            assert profile_query(POINTS[0]) == 0.0
    assert len(list(log)) == 1


# -- the reorder-decision flip regression -------------------------------------

PARSER = r"""
(define (parse-char c)
  (case c
    [(#\space #\tab) 'white-space]
    [(#\0 #\1 #\2 #\3 #\4 #\5 #\6 #\7 #\8 #\9) 'digit]
    [(#\() 'start-paren]
    [(#\)) 'end-paren]
    [else 'other]))
"""

SOURCE_ORDER = ["white-space", "digit", "start-paren", "end-paren"]

# Digit-heavy: an applied profile must hoist the digit clause first.
DIGIT_STREAM = "123456789" * 40 + " ()"


def _clause_order(text: str) -> list[str]:
    define = text[text.index("(define parse-char") :]
    order = []
    for marker, name in [
        ("'(#\\space #\\tab)", "white-space"),
        ("'(#\\0", "digit"),
        ("'(#\\()", "start-paren"),
        ("'(#\\))", "end-paren"),
    ]:
        index = define.find(marker)
        assert index >= 0, f"{marker} not in expansion"
        order.append((index, name))
    return [name for _, name in sorted(order)]


def _profile_and_compile(
    policy=ProfilePolicy.WARN,
    mode: ProfileMode | None = None,
    sample_stride: int | None = None,
    stream: str = DIGIT_STREAM,
):
    system = make_case_system(policy=policy)
    program = PARSER + f'(map parse-char (string->list "{stream}"))'
    system.profile_run(
        program, "parse.ss", mode=mode, sample_stride=sample_stride
    )
    text = unparse_string(system.compile(program, "parse.ss"))
    return system, _clause_order(text)


def test_exact_profile_reorders_digit_first():
    _, order = _profile_and_compile()
    assert order[0] == "digit"


def test_tight_sampled_profile_reproduces_the_exact_decision():
    """The acceptance criterion: at the default sample rate, a healthy
    sampled profile makes the same reordering decision as the exact one."""
    system, order = _profile_and_compile(
        mode=ProfileMode.SAMPLE, sample_stride=10
    )
    summary = system.profile_db.confidence_summary()
    assert summary is not None and not summary.is_low()
    assert order[0] == "digit"
    _, exact_order = _profile_and_compile()
    assert order == exact_order


def test_starved_sampled_profile_does_not_flip_the_decision():
    """Regression: a starved sampled profile (few observed events, huge
    scale) must degrade to the source order, not apply noisy weights that
    could flip the clause reordering run to run."""
    system, order = _profile_and_compile(
        mode=ProfileMode.SAMPLE, sample_stride=5000
    )
    summary = system.profile_db.confidence_summary()
    assert summary is not None and summary.is_low()
    assert order == SOURCE_ORDER
    reasons = [entry.reason for entry in system.degradations]
    assert any("low-confidence" in reason for reason in reasons)


def test_starved_sampled_profile_under_strict_refuses_to_compile():
    system = make_case_system(policy=ProfilePolicy.STRICT)
    program = PARSER + f'(map parse-char (string->list "{DIGIT_STREAM}"))'
    system.profile_run(
        program, "parse.ss", mode=ProfileMode.SAMPLE, sample_stride=5000
    )
    # The ProfileError surfaces wrapped in the expander's error chain.
    with pytest.raises(ExpandError, match="low-confidence"):
        system.compile(program, "parse.ss")


def test_sampled_run_counts_samples_in_metrics():
    metrics = get_global_metrics()
    before_samples = metrics.counter("samples_total")
    before_datasets = metrics.counter("sampled_datasets_total")
    system, _ = _profile_and_compile(mode=ProfileMode.SAMPLE, sample_stride=10)
    summary = system.profile_db.confidence_summary()
    assert metrics.counter("samples_total") == before_samples + summary.samples
    assert metrics.counter("sampled_datasets_total") == before_datasets + 1
