"""Confidence in the profile format: store/load round trip, old-file
back-compatibility, merge semantics, and the summary cache."""

import json

import pytest

from repro.core.counters import CounterSet
from repro.core.database import ProfileDatabase, merge_databases
from repro.core.errors import ProfileError, ProfileFormatError
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.profiling import DatasetConfidence

POINTS = [
    ProfilePoint.for_location(SourceLocation("d.ss", n, n + 1)) for n in range(3)
]


def _counters(name="ds", **by_index):
    counters = CounterSet(name=name)
    for index, count in by_index.items():
        counters.increment(POINTS[int(index.lstrip("p"))], by=count)
    return counters


def _sampled_db() -> ProfileDatabase:
    db = ProfileDatabase()
    db.record_counters(_counters(p0=90, p1=10))
    db.record_counters(
        _counters(name="live", p1=400, p2=100),
        confidence=DatasetConfidence.sampled(50, 10),
    )
    return db


def test_record_counters_rejects_non_confidence_objects():
    db = ProfileDatabase()
    with pytest.raises(ProfileError, match="DatasetConfidence"):
        db.record_counters(_counters(p0=1), confidence="sampled")


def test_dataset_confidences_align_with_datasets():
    db = _sampled_db()
    confidences = db.dataset_confidences()
    assert len(confidences) == db.dataset_count == 2
    assert confidences[0] is None
    assert confidences[1] is not None and confidences[1].samples == 50


def test_exact_store_has_no_confidence_keys(tmp_path):
    # Back-compat: a fully exact database serializes without any mention
    # of confidence, byte-identical to the pre-sampling format.
    db = ProfileDatabase()
    db.record_counters(_counters(p0=90, p1=10))
    path = tmp_path / "exact.json"
    db.store(path)
    assert "confidence" not in path.read_text()


def test_store_load_round_trips_confidence(tmp_path):
    db = _sampled_db()
    path = tmp_path / "sampled.json"
    db.store(path)
    loaded = ProfileDatabase.load(path)
    confidences = loaded.dataset_confidences()
    assert confidences[0] is None
    assert confidences[1].samples == 50
    assert confidences[1].scale == 10.0
    summary = loaded.confidence_summary()
    assert summary is not None and summary.samples == 50


def test_old_profile_file_loads_as_exact(tmp_path):
    db = ProfileDatabase()
    db.record_counters(_counters(p0=5))
    path = tmp_path / "old.json"
    db.store(path)  # no confidence keys, as the previous format wrote
    loaded = ProfileDatabase.load(path)
    assert loaded.confidence_summary() is None
    assert loaded.dataset_confidences() == [None]


def test_invalid_stored_confidence_is_a_format_error(tmp_path):
    db = _sampled_db()
    path = tmp_path / "bad.json"
    db.store(path)
    doc = json.loads(path.read_text())
    for entry in doc["datasets"]:
        if "confidence" in entry:
            entry["confidence"]["samples"] = "many"
    path.write_text(json.dumps(doc))
    with pytest.raises(ProfileFormatError, match="confidence"):
        ProfileDatabase.load(path)


def test_confidence_summary_is_none_for_exact_data():
    db = ProfileDatabase()
    db.record_counters(_counters(p0=1))
    assert db.confidence_summary() is None


def test_confidence_summary_tracks_new_datasets():
    # The summary is cached per generation: recording a new sampled data
    # set must invalidate it.
    db = ProfileDatabase()
    db.record_counters(_counters(p0=90))
    assert db.confidence_summary() is None
    db.record_counters(
        _counters(name="live", p1=10),
        confidence=DatasetConfidence.sampled(5, 50),
    )
    summary = db.confidence_summary()
    assert summary is not None and summary.is_low()


def test_merge_databases_carries_confidence():
    merged = merge_databases([_sampled_db(), _sampled_db()])
    confidences = [
        conf for conf in merged.dataset_confidences() if conf is not None
    ]
    assert len(confidences) == 2
    summary = merged.confidence_summary()
    assert summary is not None and summary.samples == 100


def test_from_counter_sets_validates_confidence_length():
    with pytest.raises(ProfileError, match="confidence"):
        ProfileDatabase.from_counter_sets(
            [_counters(p0=1)],
            confidences=[None, DatasetConfidence.sampled(1, 2)],
        )


def test_from_counter_sets_attaches_confidence():
    db = ProfileDatabase.from_counter_sets(
        [_counters(p0=1), _counters(name="live", p1=2)],
        confidences=[None, DatasetConfidence.sampled(10, 10)],
    )
    assert db.dataset_confidences()[1].samples == 10
